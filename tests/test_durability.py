"""Durability layer: WAL framing, snapshots, recovery, drain, readiness.

The torn-tail *generator* lives in ``test_durability_properties.py``
(hypothesis drives random truncation/corruption offsets); this suite
pins the deterministic contracts:

* WAL records are length-prefixed + checksummed, and :func:`scan`
  recovers exactly the longest valid prefix of any byte soup;
* snapshots round-trip the attribute codec (domains in code order), so
  recovery is bit-identical — same elements, ranks, versions, and the
  same summary bytes on all three kernels;
* the ack contract: a WAL failure (injected ``short-write`` / ``ENOSPC``)
  aborts the append before anything is published, and the log stays
  replayable;
* the drain contract: seal = final flush + fsync, then typed
  :class:`ShuttingDown` refusals (``rejected.draining`` in stats,
  HTTP 503 with ``Retry-After``);
* the readiness state machine behind ``/healthz``.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.common import faults
from repro.common.errors import (
    InvalidParameterError,
    ReproError,
    SchemaError,
    ShuttingDown,
)
from repro.durability import DurabilityManager, WriteAheadLog, scan
from repro.durability.snapshot import (
    load_snapshot,
    snapshot_document,
    write_snapshot,
)
from repro.durability.wal import encode_record
from repro.server.lifecycle import (
    DRAINING,
    READY,
    RECOVERING,
    STARTING,
    ServerLifecycle,
)
from repro.service import Engine
from repro.service.serve import Dispatcher
from repro.web import BackgroundWebServer, WebServer
from tests.conftest import paper_like_answers, zero_timings


@pytest.fixture(autouse=True)
def disarm_faults():
    faults.clear()
    yield
    faults.clear()


def durable_engine(tmp_path, **kwargs) -> tuple[Engine, DurabilityManager]:
    manager = DurabilityManager(str(tmp_path / "data"), **kwargs)
    engine = Engine(durability=manager)
    engine.register_dataset("paper", paper_like_answers())
    return engine, manager


BATCHES = [
    ([("2000s", "student")], [1.5]),
    ([("2000s", "educator"), ("1970s", "artist")], [1.25, 3.75]),
    ([("2010s", "writer")], [0.5]),
]


def append_all(engine: Engine, name: str = "paper") -> None:
    for rows, values in BATCHES:
        engine.append_rows(name, rows, values)


# -- WAL framing --------------------------------------------------------------


class TestWalFraming:
    def test_scan_round_trips_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, fsync="always")
        payloads = [{"seq": i, "rows": [["a", str(i)]]} for i in range(5)]
        for payload in payloads:
            wal.append(payload)
        wal.close()
        recovered, valid_bytes, torn = scan(path)
        assert recovered == payloads
        assert valid_bytes == os.path.getsize(path)
        assert torn is False

    def test_missing_file_is_an_empty_log(self, tmp_path):
        assert scan(str(tmp_path / "nope.log")) == ([], 0, False)

    def test_scan_stops_at_torn_tail(self, tmp_path):
        path = str(tmp_path / "wal.log")
        good = encode_record({"seq": 1}) + encode_record({"seq": 2})
        torn_tail = encode_record({"seq": 3})[:-4]  # cut mid-record
        (tmp_path / "wal.log").write_bytes(good + torn_tail)
        payloads, valid_bytes, torn = scan(path)
        assert [p["seq"] for p in payloads] == [1, 2]
        assert valid_bytes == len(good)
        assert torn is True

    @pytest.mark.parametrize("mangle", [
        lambda r: r[:-1],                      # newline lost
        lambda r: r[:-2] + b"x\n",             # payload byte flipped
        lambda r: b"9999" + r,                 # length lies
        lambda r: r.replace(b":", b";", 1),    # frame separator gone
        lambda r: b"\x00\xff" + r[2:],         # binary garbage up front
    ], ids=["no-newline", "bitflip", "bad-length", "bad-frame", "garbage"])
    def test_any_mangled_tail_is_detected(self, tmp_path, mangle):
        path = tmp_path / "wal.log"
        good = encode_record({"seq": 1})
        path.write_bytes(good + mangle(encode_record({"seq": 2})))
        payloads, valid_bytes, torn = scan(str(path))
        assert [p["seq"] for p in payloads] == [1]
        assert valid_bytes == len(good)
        assert torn is True

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = str(tmp_path / "wal.log")
        first = WriteAheadLog(path)
        first.append({"seq": 1})
        first.close()
        second = WriteAheadLog(path)
        assert second.records == 1
        second.append({"seq": 2})
        second.close()
        payloads, _, torn = scan(path)
        assert [p["seq"] for p in payloads] == [1, 2] and torn is False

    def test_truncate_to_zero_resets(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.append({"seq": 1})
        wal.truncate_to(0)
        assert wal.records == 0 and wal.bytes == 0
        wal.append({"seq": 1})
        assert [p["seq"] for p in wal.replay()] == [1]
        wal.close()

    def test_closed_log_refuses_appends(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.close()
        with pytest.raises(OSError):
            wal.append({"seq": 1})
        wal.close()  # idempotent

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            WriteAheadLog(str(tmp_path / "wal.log"), fsync="sometimes")
        with pytest.raises(InvalidParameterError):
            DurabilityManager(str(tmp_path / "data"), fsync="sometimes")

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_every_policy_round_trips(self, tmp_path, policy):
        path = str(tmp_path / ("%s.log" % policy))
        wal = WriteAheadLog(path, fsync=policy)
        for seq in range(3):
            wal.append({"seq": seq})
        wal.flush()  # policy-independent: flush always fsyncs
        wal.close()
        assert [p["seq"] for p in scan(path)[0]] == [0, 1, 2]


# -- snapshots ----------------------------------------------------------------


class TestSnapshots:
    def test_round_trip_is_bit_identical(self, tmp_path):
        answers = paper_like_answers()
        path = str(tmp_path / "snapshot.json")
        write_snapshot(path, "paper", answers, seq=7)
        name, loaded, seq = load_snapshot(path)
        assert (name, seq) == ("paper", 7)
        # The document is the canonical byte view: elements in rank
        # order, domains in code order — equality here is bit-identity.
        assert snapshot_document("paper", loaded, 7) == snapshot_document(
            "paper", answers, 7
        )

    def test_write_leaves_no_temp_files(self, tmp_path):
        write_snapshot(
            str(tmp_path / "snapshot.json"), "paper",
            paper_like_answers(), seq=0,
        )
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "snapshot.json"
        ]

    def test_missing_snapshot_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_snapshot(str(tmp_path / "nope.json"))

    @pytest.mark.parametrize("content", [
        b"{not json",
        b"[1, 2, 3]",
        b'{"schema": 99, "dataset": "x"}',
        b'{"schema": 1, "dataset": "x"}',
        b'{"schema": 1, "dataset": 5, "seq": 0, "attributes": null,'
        b' "domains": null, "elements": [], "values": []}',
    ], ids=["not-json", "not-object", "wrong-schema", "missing-keys",
            "bad-name"])
    def test_malformed_snapshots_are_schema_errors(self, tmp_path, content):
        path = tmp_path / "snapshot.json"
        path.write_bytes(content)
        with pytest.raises(SchemaError):
            load_snapshot(str(path))


# -- manager: recovery --------------------------------------------------------


class TestRecovery:
    def test_recovery_is_bit_identical_across_kernels(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        append_all(engine)
        expected_version = engine.dataset_version("paper")
        expected_doc = snapshot_document(
            "paper", engine.dataset("paper"), 0
        )
        manager.seal()

        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered_engine = Engine(durability=fresh)
        summary = fresh.recover(recovered_engine)
        assert [d["dataset"] for d in summary["datasets"]] == ["paper"]
        assert summary["datasets"][0]["records"] == len(BATCHES)
        assert recovered_engine.dataset_version("paper") == expected_version
        assert snapshot_document(
            "paper", recovered_engine.dataset("paper"), 0
        ) == expected_doc

        # Same wire bytes on every kernel, timings zeroed.
        reference = Dispatcher(engine)
        replayed = Dispatcher(recovered_engine)
        for kernel in ("python", "bitset", "dense"):
            request = {
                "schema_version": 2, "kind": "summary", "dataset": "paper",
                "k": 3, "L": 5, "D": 1, "include_elements": True,
                "options": {"kernel": kernel},
            }
            left = zero_timings(
                reference.dispatch_payload(dict(request)).response
            )
            right = zero_timings(
                replayed.dispatch_payload(dict(request)).response
            )
            assert left == right, "kernel %s diverged" % kernel

    def test_recovered_server_accepts_new_appends(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        append_all(engine)
        manager.seal()
        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered = Engine(durability=fresh)
        fresh.recover(recovered)
        recovered.append_rows("paper", [("2020s", "student")], [2.0])
        assert fresh.stats()["wal_records"] == len(BATCHES) + 1

    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        append_all(engine)
        manager.seal()
        wal_path = manager.wal_path("paper")
        with open(wal_path, "ab") as handle:
            handle.write(b"43:deadbeef:{\"seq\": 4, torn mid-")
        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered = Engine(durability=fresh)
        summary = fresh.recover(recovered)
        assert fresh.wal_truncated == 1
        assert summary["wal_truncated"] == 1
        assert summary["datasets"][0]["records"] == len(BATCHES)
        # Repaired on disk: a second scan sees a clean log.
        assert scan(wal_path)[2] is False

    def test_seq_guard_skips_records_folded_into_snapshot(self, tmp_path):
        """A crash between snapshot-write and WAL-truncate must not
        double-apply: records at or below the snapshot seq are skipped."""
        engine, manager = durable_engine(tmp_path)
        rows1, values1 = BATCHES[0]
        rows2, values2 = BATCHES[1]
        rows3, values3 = BATCHES[2]
        engine.append_rows("paper", rows1, values1)
        engine.append_rows("paper", rows2, values2)
        # Simulate a compaction that crashed after the snapshot write
        # but before the WAL truncate: snapshot at seq=2 (its state is
        # exactly the first two batches), WAL untouched.
        write_snapshot(
            manager.snapshot_path("paper"), "paper",
            engine.dataset("paper"), seq=2,
        )
        engine.append_rows("paper", rows3, values3)
        expected_doc = snapshot_document(
            "paper", engine.dataset("paper"), 0
        )
        manager.seal()
        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered = Engine(durability=fresh)
        summary = fresh.recover(recovered)
        # Seq 1 and 2 are folded into the snapshot and must be skipped
        # (replaying them would be a duplicate-element SchemaError);
        # only seq=3 replays, and the result is the uncrashed state.
        assert summary["datasets"][0]["records"] == 1
        assert summary["datasets"][0]["snapshot_seq"] == 2
        assert snapshot_document(
            "paper", recovered.dataset("paper"), 0
        ) == expected_doc

    def test_compaction_trips_threshold_and_recovers(self, tmp_path):
        manager = DurabilityManager(
            str(tmp_path / "data"), compact_records=2
        )
        engine = Engine(durability=manager)
        engine.register_dataset("paper", paper_like_answers())
        append_all(engine)  # 3 appends -> compaction after the 2nd
        assert manager.compactions >= 1
        stats = manager.stats()
        assert stats["wal_records"] < len(BATCHES)
        expected_doc = snapshot_document(
            "paper", engine.dataset("paper"), 0
        )
        manager.seal()
        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered = Engine(durability=fresh)
        fresh.recover(recovered)
        assert snapshot_document(
            "paper", recovered.dataset("paper"), 0
        ) == expected_doc

    def test_unreadable_snapshot_skips_dataset_not_boot(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        engine.register_dataset("other", paper_like_answers())
        manager.seal()
        with open(manager.snapshot_path("other"), "wb") as handle:
            handle.write(b"{corrupt")
        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered = Engine(durability=fresh)
        summary = fresh.recover(recovered)
        assert [d["dataset"] for d in summary["datasets"]] == ["paper"]
        assert fresh.snapshots_unreadable == 1
        assert recovered.dataset_names() == ["paper"]

    def test_stray_directories_are_ignored(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        os.makedirs(str(tmp_path / "data" / "not-a-dataset"))
        (tmp_path / "data" / "stray.txt").write_text("hi")
        manager.seal()
        fresh = DurabilityManager(str(tmp_path / "data"))
        summary = fresh.recover(Engine(durability=fresh))
        assert [d["dataset"] for d in summary["datasets"]] == ["paper"]

    def test_dataset_names_are_percent_encoded_on_disk(self, tmp_path):
        manager = DurabilityManager(str(tmp_path / "data"))
        engine = Engine(durability=manager)
        name = "weird/name with spaces"
        engine.register_dataset(name, paper_like_answers())
        engine.append_rows(name, [("2000s", "student")], [1.5])
        manager.seal()
        fresh = DurabilityManager(str(tmp_path / "data"))
        recovered = Engine(durability=fresh)
        fresh.recover(recovered)
        assert recovered.dataset_names() == [name]
        assert recovered.dataset(name).n == 9


# -- the ack contract under injected write failures ---------------------------


@pytest.mark.chaos
class TestWalFaults:
    def test_enospc_aborts_append_before_publish(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        n_before = engine.dataset("paper").n
        version_before = engine.dataset_version("paper")
        faults.arm("wal.write", "enospc", times=1)
        with pytest.raises(OSError):
            engine.append_rows("paper", [("2000s", "student")], [1.5])
        assert engine.dataset("paper").n == n_before
        assert engine.dataset_version("paper") == version_before
        assert manager.write_failures == 1
        # The fault budget is spent: the retry lands and publishes.
        engine.append_rows("paper", [("2000s", "student")], [1.5])
        assert engine.dataset("paper").n == n_before + 1
        assert manager.stats()["wal_records"] == 1

    def test_short_write_leaves_log_replayable(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        engine.append_rows("paper", [("2000s", "student")], [1.5])
        faults.arm("wal.write", "short-write", param=7, times=1)
        with pytest.raises(OSError):
            engine.append_rows("paper", [("2010s", "writer")], [0.5])
        # The failed write's partial bytes were rolled back: the log is
        # clean (not torn) and holds exactly the acked record.
        payloads, _, torn = scan(manager.wal_path("paper"))
        assert torn is False
        assert [p["seq"] for p in payloads] == [1]
        engine.append_rows("paper", [("2010s", "writer")], [0.5])
        assert [p["seq"] for p in scan(manager.wal_path("paper"))[0]] == [
            1, 2
        ]

    def test_fsync_fault_aborts_append_under_always(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        faults.arm("wal.fsync", "enospc", times=1)
        with pytest.raises(OSError):
            engine.append_rows("paper", [("2000s", "student")], [1.5])
        assert engine.dataset("paper").n == 8
        payloads, _, torn = scan(manager.wal_path("paper"))
        assert payloads == [] and torn is False


# -- seal / draining rejection ------------------------------------------------


class TestSealAndDraining:
    def test_seal_is_idempotent_and_refuses_mutations(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        manager.seal()
        manager.seal()
        assert manager.sealed is True
        with pytest.raises(ShuttingDown):
            engine.append_rows("paper", [("2000s", "student")], [1.5])
        with pytest.raises(ShuttingDown):
            engine.register_dataset("other", paper_like_answers())
        assert engine.dataset("paper").n == 8  # nothing published

    def test_server_scope_shutdown_rejects_later_appends(self, tmp_path):
        engine, _ = durable_engine(tmp_path)
        dispatcher = Dispatcher(engine)
        ack = dispatcher.dispatch_payload(
            {"kind": "shutdown", "scope": "server"}
        ).response
        assert ack["kind"] == "shutdown_ack"
        rejected = dispatcher.dispatch_payload({
            "schema_version": 2, "kind": "append_rows", "dataset": "paper",
            "rows": [["2000s", "student"]], "values": [1.5],
        }).response
        assert rejected["error_type"] == "ShuttingDown"
        stats = dispatcher.dispatch_payload({"kind": "stats"}).response
        assert stats["rejected"]["draining"] == 1
        # Reads still drain normally while the server winds down.
        summary = dispatcher.dispatch_payload({
            "schema_version": 2, "kind": "summary", "dataset": "paper",
            "k": 2, "L": 4, "D": 1,
        }).response
        assert summary["kind"] == "summary_response"

    def test_lifecycle_draining_rejects_appends_too(self):
        lifecycle = ServerLifecycle(initial=READY)
        engine = Engine()
        engine.register_dataset("paper", paper_like_answers())
        dispatcher = Dispatcher(engine, lifecycle=lifecycle)
        lifecycle.to_draining()
        rejected = dispatcher.dispatch_payload({
            "schema_version": 2, "kind": "append_rows", "dataset": "paper",
            "rows": [["2000s", "student"]], "values": [1.5],
        }).response
        assert rejected["error_type"] == "ShuttingDown"


# -- lifecycle state machine --------------------------------------------------


class TestServerLifecycle:
    def test_forward_transitions_and_idempotence(self):
        lifecycle = ServerLifecycle()
        assert lifecycle.state == STARTING
        lifecycle.to_recovering()
        lifecycle.to_recovering()  # idempotent
        assert lifecycle.state == RECOVERING
        lifecycle.to_ready()
        assert lifecycle.is_ready
        lifecycle.to_draining()
        assert lifecycle.is_draining

    def test_starting_straight_to_ready(self):
        lifecycle = ServerLifecycle()
        lifecycle.to_ready()
        assert lifecycle.state == READY

    def test_backward_transitions_raise(self):
        lifecycle = ServerLifecycle(initial=READY)
        with pytest.raises(ReproError):
            lifecycle.to_recovering()
        lifecycle.to_draining()
        with pytest.raises(ReproError):
            lifecycle.to_ready()

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(ReproError):
            ServerLifecycle(initial="warming-up")

    def test_describe_reports_state_and_age(self):
        description = ServerLifecycle(initial=DRAINING).describe()
        assert description["state"] == DRAINING
        assert description["state_seconds"] >= 0.0


# -- HTTP: healthz states + Retry-After on 503 --------------------------------


def http_get_with_headers(handle, path):
    request = urllib.request.Request(
        "http://%s:%d%s" % (handle.host, handle.port, path), method="GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


def http_post_with_headers(handle, path, body):
    request = urllib.request.Request(
        "http://%s:%d%s" % (handle.host, handle.port, path),
        data=json.dumps(body).encode("utf-8"), method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), json.loads(error.read())


class TestHttpReadinessAndRetryAfter:
    def test_healthz_tracks_lifecycle_states(self, tmp_path):
        lifecycle = ServerLifecycle()
        engine, manager = durable_engine(tmp_path)
        handle = BackgroundWebServer(WebServer(
            engine, port=0, shards=1, workers_per_shard=1,
            durability=manager, lifecycle=lifecycle,
        )).start()
        try:
            status, _, payload = http_get_with_headers(handle, "/healthz")
            assert (status, payload["state"]) == (503, STARTING)
            assert payload["status"] == "unavailable"
            lifecycle.to_recovering()
            status, _, payload = http_get_with_headers(handle, "/healthz")
            assert (status, payload["state"]) == (503, RECOVERING)
            lifecycle.to_ready()
            status, _, payload = http_get_with_headers(handle, "/healthz")
            assert (status, payload["state"]) == (200, READY)
            assert payload["status"] == "ok"
        finally:
            assert handle.stop(timeout=30)
        # Drain flipped the state machine on the way out.
        assert lifecycle.is_draining
        assert manager.sealed is True

    def test_healthz_defaults_to_ready_without_lifecycle(self):
        engine = Engine()
        engine.register_dataset("paper", paper_like_answers())
        handle = BackgroundWebServer(WebServer(
            engine, port=0, shards=1, workers_per_shard=1,
        )).start()
        try:
            status, _, payload = http_get_with_headers(handle, "/healthz")
            assert (status, payload["status"]) == (200, "ok")
            assert payload["state"] == READY
        finally:
            assert handle.stop(timeout=30)

    def test_shutting_down_is_503_with_retry_after(self, tmp_path):
        engine, manager = durable_engine(tmp_path)
        handle = BackgroundWebServer(WebServer(
            engine, port=0, shards=1, workers_per_shard=1,
            durability=manager,
        )).start()
        try:
            manager.seal()  # drain has taken the final fsync
            status, headers, payload = http_post_with_headers(
                handle, "/v2/admin/append_rows", {
                    "schema_version": 2, "dataset": "paper",
                    "rows": [["2000s", "student"]], "values": [1.5],
                },
            )
            assert status == 503
            assert payload["error_type"] == "ShuttingDown"
            assert headers.get("Retry-After", "").isdigit()
            # Stats over HTTP surface the durability + lifecycle view.
            status, _, stats = http_post_with_headers(
                handle, "/v2/admin/stats", {"schema_version": 2}
            )
            assert status == 200
            assert stats["durability"]["sealed"] is True
            assert stats["lifecycle"]["state"] == READY
        finally:
            assert handle.stop(timeout=30)
