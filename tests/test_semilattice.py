"""Tests for ClusterPool: generation, the three mapping strategies."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError
from repro.common.interning import STAR
from repro.core.cluster import covers, generalizations, lca
from repro.core.semilattice import ClusterPool
from tests.conftest import random_answer_set


class TestGeneration:
    def test_pool_contains_exactly_topl_generalizations(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        expected = set()
        for i in range(5):
            expected.update(generalizations(small_answers.elements[i]))
        assert set(pool.patterns()) == expected

    def test_pool_contains_root_and_singletons(self, small_answers):
        pool = ClusterPool(small_answers, L=3)
        assert tuple([STAR] * small_answers.m) in pool
        for i in range(3):
            assert small_answers.elements[i] in pool

    def test_lca_closure(self, small_answers):
        # The LCA of any two pool patterns is a pool pattern.
        pool = ClusterPool(small_answers, L=4)
        patterns = list(pool.patterns())
        for p in patterns[:20]:
            for q in patterns[:20]:
                assert lca(p, q) in pool

    def test_invalid_L_rejected(self, small_answers):
        with pytest.raises(InvalidParameterError):
            ClusterPool(small_answers, L=0)
        with pytest.raises(InvalidParameterError):
            ClusterPool(small_answers, L=small_answers.n + 1)

    def test_unknown_strategy_rejected(self, small_answers):
        with pytest.raises(InvalidParameterError):
            ClusterPool(small_answers, L=3, strategy="bogus")


class TestCoverageMapping:
    @pytest.mark.parametrize("strategy", ["eager", "naive", "lazy"])
    def test_coverage_matches_definition(self, small_answers, strategy):
        pool = ClusterPool(small_answers, L=5, strategy=strategy)
        for pattern in pool.patterns():
            expected = frozenset(
                i
                for i, element in enumerate(small_answers.elements)
                if covers(pattern, element)
            )
            assert pool.coverage(pattern) == expected

    def test_strategies_agree(self):
        answers = random_answer_set(n=40, m=4, domain=3, seed=11)
        eager = ClusterPool(answers, L=6, strategy="eager")
        naive = ClusterPool(answers, L=6, strategy="naive")
        lazy = ClusterPool(answers, L=6, strategy="lazy")
        for pattern in eager.patterns():
            assert eager.coverage(pattern) == naive.coverage(pattern)
            assert eager.coverage(pattern) == lazy.coverage(pattern)

    def test_root_covers_all(self, small_answers):
        pool = ClusterPool(small_answers, L=3)
        assert pool.root().covered == frozenset(range(small_answers.n))

    def test_singleton_covers_itself_only(self, small_answers):
        pool = ClusterPool(small_answers, L=3)
        assert pool.singleton(0).covered == frozenset({0})

    def test_out_of_pool_pattern_falls_back_to_scan(self, small_answers):
        pool = ClusterPool(small_answers, L=2)
        # Build a pattern unlikely to be in the pool: last element's tuple.
        pattern = small_answers.elements[-1]
        expected = frozenset(
            i
            for i, element in enumerate(small_answers.elements)
            if covers(pattern, element)
        )
        assert pool.coverage(pattern) == expected


class TestClusterMaterialization:
    def test_cluster_value_sum(self, small_answers):
        pool = ClusterPool(small_answers, L=4)
        root = pool.root()
        assert root.value_sum == pytest.approx(sum(small_answers.values))
        assert root.avg == pytest.approx(small_answers.avg_all())

    def test_cluster_cache_returns_same_object(self, small_answers):
        pool = ClusterPool(small_answers, L=4)
        p = next(iter(pool.patterns()))
        assert pool.cluster(p) is pool.cluster(p)

    def test_pool_len_and_repr(self, small_answers):
        pool = ClusterPool(small_answers, L=2)
        assert len(pool) == len(list(pool.patterns()))
        assert "ClusterPool" in repr(pool)
