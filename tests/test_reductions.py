"""Empirical verification of the Theorem A.2 NP-hardness reduction."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.reductions import (
    TripartiteInstance,
    has_nontrivial_feasible_solution,
    minimum_vertex_cover,
    random_tripartite,
    reduction_answer_set,
    verify_reduction,
)


@pytest.fixture
def triangle_instance() -> TripartiteInstance:
    """One edge between each pair of parts: min vertex cover = 2."""
    return TripartiteInstance(
        x_part=("x1",), y_part=("y1",), z_part=("z1",),
        edges=(("x1", "y1"), ("y1", "z1"), ("x1", "z1")),
    )


class TestConstruction:
    def test_one_tuple_per_edge(self, triangle_instance):
        answers = reduction_answer_set(triangle_instance)
        assert answers.n == 3
        assert answers.m == 3

    def test_uniform_weights(self, triangle_instance):
        answers = reduction_answer_set(triangle_instance)
        assert set(answers.values) == {1.0}

    def test_fresh_fillers_are_unique(self):
        instance = TripartiteInstance(
            x_part=("x1", "x2"), y_part=("y1",), z_part=(),
            edges=(("x1", "y1"), ("x2", "y1")),
        )
        answers = reduction_answer_set(instance)
        fillers = [answers.decode(e)[2] for e in answers.elements]
        assert len(set(fillers)) == 2

    def test_parts_must_be_disjoint(self):
        with pytest.raises(InvalidParameterError):
            TripartiteInstance(("a",), ("a",), (), (("a", "a"),))

    def test_edges_within_a_part_rejected(self):
        with pytest.raises(InvalidParameterError):
            TripartiteInstance(
                ("x1", "x2"), ("y1",), (), (("x1", "x2"),)
            )

    def test_graph_export(self, triangle_instance):
        graph = triangle_instance.graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3


class TestVertexCover:
    def test_triangle_cover_is_two(self, triangle_instance):
        assert len(minimum_vertex_cover(triangle_instance)) == 2

    def test_star_cover_is_one(self):
        instance = TripartiteInstance(
            x_part=("x1",), y_part=("y1", "y2"), z_part=("z1",),
            edges=(("x1", "y1"), ("x1", "y2"), ("x1", "z1")),
        )
        cover = minimum_vertex_cover(instance)
        assert cover == {"x1"}

    def test_size_guard(self):
        instance = random_tripartite(part_size=6, edge_probability=0.5, seed=1)
        with pytest.raises(InvalidParameterError):
            minimum_vertex_cover(instance)


class TestEquivalence:
    def test_triangle_equivalence(self, triangle_instance):
        result = verify_reduction(triangle_instance)
        assert result["cover_size"] == 2
        assert result["feasible_at_cover_size"] is True
        assert result["feasible_below_cover_size"] is False

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_equivalence(self, seed):
        """The reduction's iff, checked by exhaustive search both sides."""
        instance = random_tripartite(
            part_size=2, edge_probability=0.5, seed=seed
        )
        result = verify_reduction(instance)
        assert result["feasible_at_cover_size"] is True
        if result["cover_size"] > 0:
            assert result["feasible_below_cover_size"] is False

    @pytest.mark.parametrize("seed", range(3))
    def test_feasibility_monotone_in_k(self, seed):
        instance = random_tripartite(
            part_size=2, edge_probability=0.6, seed=seed + 50
        )
        answers = reduction_answer_set(instance)
        feasible = [
            has_nontrivial_feasible_solution(answers, k)
            for k in range(1, 7)
        ]
        # Once feasible, staying feasible for larger k.
        first_true = feasible.index(True) if True in feasible else len(feasible)
        assert all(feasible[first_true:])
