"""Tests for Solution and the Definition 4.1 feasibility checker."""

from __future__ import annotations

import pytest

from repro.core.semilattice import ClusterPool
from repro.core.solution import (
    Solution,
    check_feasibility,
    is_feasible,
    redundant_elements,
)


def _solution_from_patterns(pool, patterns):
    return Solution.from_clusters(
        [pool.cluster(p) for p in patterns], pool.answers
    )


class TestSolutionObject:
    def test_avg_counts_each_element_once(self, small_answers):
        pool = ClusterPool(small_answers, L=6)
        # Two overlapping clusters: covered union must dedupe.
        c1 = pool.singleton(0)
        c2 = pool.cluster(
            tuple(
                v if i == 0 else -1
                for i, v in enumerate(small_answers.elements[0])
            )
        )
        solution = Solution.from_clusters([c1, c2], small_answers)
        assert solution.covered == c1.covered | c2.covered
        assert solution.avg == pytest.approx(
            small_answers.avg_of(solution.covered)
        )

    def test_clusters_sorted_by_avg_descending(self, small_answers):
        pool = ClusterPool(small_answers, L=6)
        solution = _solution_from_patterns(
            pool, [small_answers.elements[i] for i in range(4)]
        )
        averages = [c.avg for c in solution.clusters]
        assert averages == sorted(averages, reverse=True)

    def test_describe_renders_one_line_per_cluster(self, small_answers):
        pool = ClusterPool(small_answers, L=3)
        solution = _solution_from_patterns(
            pool, [small_answers.elements[0]]
        )
        text = solution.describe(small_answers)
        assert "avg=" in text and text.count("\n") == 0

    def test_redundant_elements(self, small_answers):
        pool = ClusterPool(small_answers, L=2)
        solution = Solution.from_clusters([pool.root()], small_answers)
        redundant = redundant_elements(solution, small_answers, L=2)
        assert redundant == set(range(2, small_answers.n))


class TestFeasibility:
    def test_trivial_solution_always_feasible(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        solution = Solution.from_clusters([pool.root()], small_answers)
        assert is_feasible(solution, small_answers, k=1, L=5, D=4)

    def test_size_violation(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        solution = _solution_from_patterns(
            pool, [small_answers.elements[i] for i in range(5)]
        )
        violations = check_feasibility(solution, small_answers, k=2, L=5, D=0)
        assert any(v.startswith("size") for v in violations)

    def test_coverage_violation_reports_missing_ranks(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        solution = _solution_from_patterns(pool, [small_answers.elements[0]])
        violations = check_feasibility(solution, small_answers, k=5, L=3, D=0)
        coverage = [v for v in violations if v.startswith("coverage")]
        assert len(coverage) == 1
        assert "1" in coverage[0] and "2" in coverage[0]

    def test_distance_violation(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        solution = _solution_from_patterns(
            pool, [small_answers.elements[0], small_answers.elements[1]]
        )
        high_d = small_answers.m + 1
        violations = check_feasibility(
            solution, small_answers, k=5, L=1, D=high_d
        )
        assert any(v.startswith("distance") for v in violations)

    def test_incomparability_violation(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        element = small_answers.elements[0]
        parent = tuple(-1 if i == 0 else v for i, v in enumerate(element))
        solution = _solution_from_patterns(pool, [element, parent])
        violations = check_feasibility(solution, small_answers, k=5, L=1, D=0)
        assert any(v.startswith("incomparability") for v in violations)

    def test_L_zero_means_no_coverage_requirement(self, small_answers):
        pool = ClusterPool(small_answers, L=5)
        solution = _solution_from_patterns(pool, [small_answers.elements[4]])
        assert is_feasible(solution, small_answers, k=1, L=0, D=0)
