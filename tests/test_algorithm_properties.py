"""Hypothesis property tests over whole algorithm runs.

Random instances are drawn with hypothesis; every greedy algorithm must
return a feasible solution (Definition 4.1), every solution must dominate
the trivial lower bound, and the structural invariants of Section 5.1 must
hold along any merge trajectory.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.bottom_up import (
    bottom_up,
    bottom_up_level_start,
    bottom_up_pairwise_avg,
)
from repro.core.brute_force import brute_force, lower_bound
from repro.core.cluster import distance, lca
from repro.core.fixed_order import fixed_order
from repro.core.hybrid import hybrid
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility


@st.composite
def instances(draw):
    """(answers, k, L, D) with 8-24 elements over 3-4 attributes."""
    m = draw(st.integers(min_value=3, max_value=4))
    domain = draw(st.integers(min_value=2, max_value=3))
    n = draw(st.integers(min_value=8, max_value=24))
    n = min(n, domain ** m)
    element_strategy = st.tuples(
        *[st.integers(min_value=0, max_value=domain - 1)] * m
    )
    elements = draw(
        st.lists(
            element_strategy, min_size=n, max_size=n, unique=True
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    answers = AnswerSet(elements, values)
    k = draw(st.integers(min_value=1, max_value=n))
    L = draw(st.integers(min_value=1, max_value=min(n, 8)))
    D = draw(st.integers(min_value=0, max_value=m))
    return answers, k, L, D


@st.composite
def dyadic_instances(draw):
    """Like :func:`instances` but with dyadic-rational values (k/4).

    Dyadic values make every partial sum exactly representable in binary
    floating point, so value sums are independent of summation order and
    the two kernels (which accumulate in different orders) are guaranteed
    to compute *identical* floats — the cross-kernel equivalence tests can
    then demand exact solution equality rather than approximate.
    """
    m = draw(st.integers(min_value=3, max_value=4))
    domain = draw(st.integers(min_value=2, max_value=3))
    n = draw(st.integers(min_value=8, max_value=24))
    n = min(n, domain ** m)
    element_strategy = st.tuples(
        *[st.integers(min_value=0, max_value=domain - 1)] * m
    )
    elements = draw(
        st.lists(element_strategy, min_size=n, max_size=n, unique=True)
    )
    values = [
        q / 4.0
        for q in draw(
            st.lists(
                st.integers(min_value=0, max_value=40),
                min_size=n,
                max_size=n,
            )
        )
    ]
    answers = AnswerSet(elements, values)
    k = draw(st.integers(min_value=1, max_value=n))
    L = draw(st.integers(min_value=1, max_value=min(n, 8)))
    D = draw(st.integers(min_value=0, max_value=m))
    return answers, k, L, D


@settings(max_examples=40, deadline=None)
@given(instances())
def test_bottom_up_always_feasible(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    solution = bottom_up(pool, k, D)
    assert not check_feasibility(solution, answers, k, L, D)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_fixed_order_always_feasible(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    solution = fixed_order(pool, k, D)
    assert not check_feasibility(solution, answers, k, L, D)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_hybrid_always_feasible(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    solution = hybrid(pool, k, D)
    assert not check_feasibility(solution, answers, k, L, D)


@settings(max_examples=30, deadline=None)
@given(instances())
def test_everything_dominates_lower_bound(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    floor = lower_bound(pool).avg
    for algorithm in (bottom_up, fixed_order, hybrid):
        assert algorithm(pool, k, D).avg >= floor - 1e-9


@settings(max_examples=25, deadline=None)
@given(instances())
def test_merge_trajectory_invariants(instance):
    """Along any merge order: coverage of the top-L never breaks, the
    antichain property holds, and the minimum pairwise distance never
    decreases (the three invariants of Section 5.1)."""
    from repro.core.cluster import strictly_covers

    answers, _, L, _ = instance
    pool = ClusterPool(answers, L=L)
    engine = MergeEngine(pool, (pool.singleton(i) for i in range(L)))
    previous_distance = engine.min_pairwise_distance()
    top = set(range(L))
    while engine.size > 1:
        clusters = engine.clusters()
        engine.merge(clusters[0], clusters[-1])
        assert all(engine.is_covered(i) for i in top)
        current = engine.clusters()
        for i, a in enumerate(current):
            for b in current[i + 1:]:
                assert not strictly_covers(a.pattern, b.pattern)
                assert not strictly_covers(b.pattern, a.pattern)
        distance_now = engine.min_pairwise_distance()
        assert distance_now >= previous_distance
        previous_distance = distance_now


@settings(max_examples=25, deadline=None)
@given(instances())
def test_snapshot_avg_equals_recomputed_avg(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    for algorithm in (bottom_up, fixed_order, hybrid):
        solution = algorithm(pool, k, D)
        recomputed = answers.avg_of(solution.covered)
        assert abs(solution.avg - recomputed) < 1e-9


@settings(max_examples=20, deadline=None)
@given(instances())
def test_solution_clusters_come_from_pool(instance):
    """Every output pattern is a generalization of some top-L element."""
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    for algorithm in (bottom_up, fixed_order, hybrid):
        for cluster in algorithm(pool, k, D).clusters:
            assert cluster.pattern in pool


# -- kernel equivalence (bitset vs python vs dense, pairwise) ----------------

#: Every concrete kernel, each run on a pool in its own representation.
ALL_KERNELS = ("bitset", "python", "dense")


def _pools_per_kernel(answers, L, mask_only=False):
    """One pool per mask representation (python shares the int pool)."""
    int_pool = ClusterPool(answers, L=L, mask_only=mask_only)
    dense_pool = ClusterPool(
        answers, L=L, mask_only=mask_only, kernel="dense"
    )
    return {"bitset": int_pool, "python": int_pool, "dense": dense_pool}


@settings(max_examples=40, deadline=None)
@given(dyadic_instances())
def test_kernels_produce_identical_solutions(instance):
    """The tentpole contract: ``kernel="bitset"``, ``kernel="python"``,
    and ``kernel="dense"`` return bit-identical solutions for every
    algorithm, on both the delta-judgment and the naive evaluation
    paths — so the three kernels are pairwise interchangeable."""
    answers, k, L, D = instance
    pools = _pools_per_kernel(answers, L)
    runs = [
        lambda kr: bottom_up(pools[kr], k, D, kernel=kr),
        lambda kr: bottom_up(pools[kr], k, D, use_delta=False, kernel=kr),
        lambda kr: bottom_up_level_start(pools[kr], k, D, kernel=kr),
        lambda kr: bottom_up_pairwise_avg(pools[kr], k, D, kernel=kr),
        lambda kr: fixed_order(pools[kr], k, D, kernel=kr),
        lambda kr: hybrid(pools[kr], k, D, kernel=kr),
    ]
    for run in runs:
        reference = run(ALL_KERNELS[0])
        for kernel in ALL_KERNELS[1:]:
            other = run(kernel)
            assert other.patterns() == reference.patterns(), kernel
            assert other.covered == reference.covered, kernel
            assert other.value_sum == reference.value_sum, kernel


@settings(max_examples=25, deadline=None)
@given(dyadic_instances())
def test_kernels_agree_on_mask_only_pools(instance):
    """Mask-only pools (no frozenset materialization) keep all three
    kernels bit-identical to the default-pool reference."""
    answers, k, L, D = instance
    reference = bottom_up(ClusterPool(answers, L=L), k, D)
    pools = _pools_per_kernel(answers, L, mask_only=True)
    for kernel in ALL_KERNELS:
        solution = bottom_up(pools[kernel], k, D, kernel=kernel)
        assert solution.patterns() == reference.patterns(), kernel
        assert solution.value_sum == reference.value_sum, kernel


@settings(max_examples=15, deadline=None)
@given(dyadic_instances())
def test_kernels_identical_on_array_fallback(instance):
    """The dense kernel's stdlib array fallback (numpy disabled) is
    bit-identical to the numpy backend and to the bitset kernel."""
    from repro.core import dense

    answers, k, L, D = instance
    reference = bottom_up(ClusterPool(answers, L=L), k, D)
    with dense.numpy_disabled():
        pool = ClusterPool(answers, L=L, kernel="dense")
        solution = bottom_up(pool, k, D, kernel="dense")
    assert solution.patterns() == reference.patterns()
    assert solution.value_sum == reference.value_sum


@settings(max_examples=15, deadline=None)
@given(dyadic_instances())
def test_brute_force_kernels_agree(instance):
    """The exact search finds the same optimum on all three kernels."""
    answers, _, L, D = instance
    L = min(L, 4)  # keep the exponential search tiny
    pools = _pools_per_kernel(answers, L)
    reference = brute_force(pools["bitset"], 2, D, kernel="bitset")
    for kernel in ("python", "dense"):
        other = brute_force(pools[kernel], 2, D, kernel=kernel)
        assert other.patterns() == reference.patterns(), kernel


# -- incremental pair cache vs full rescan -----------------------------------


def _rescan_pairs(engine):
    """Recompute the pair structure from scratch: the ground truth the
    incremental table must match after any merge sequence."""
    ordered = engine.clusters()
    rescan = {}
    for i, c1 in enumerate(ordered):
        for c2 in ordered[i + 1:]:
            rescan[(c1.pattern, c2.pattern)] = (
                distance(c1.pattern, c2.pattern),
                lca(c1.pattern, c2.pattern),
            )
    return rescan


@settings(max_examples=25, deadline=None)
@given(instances(), st.randoms(use_true_random=False))
def test_pair_cache_matches_full_rescan(instance, rng):
    """After arbitrary merge sequences, the incremental pair table holds
    exactly the pairs a full rescan derives, with the same distances and
    LCA patterns, and the same best pair as the naive argmax."""
    answers, _, L, _ = instance
    pool = ClusterPool(answers, L=L)
    engine = MergeEngine(pool, (pool.singleton(i) for i in range(L)))
    while engine.size > 1:
        rescan = _rescan_pairs(engine)
        table = {
            key: (row[2], row[3].pattern)
            for key, row in engine._pairs.items()
        }
        assert table == rescan
        assert engine.min_pairwise_distance() == min(
            (d for d, _ in rescan.values()), default=answers.m + 1
        )
        # The table-driven argmax must equal the naive scan's argmax.
        fast = engine.best_any_pair()
        naive = engine.best_pair(engine.all_pairs())
        assert (fast[0].pattern, fast[1].pattern) == (
            naive[0].pattern, naive[1].pattern,
        )
        clusters = engine.clusters()
        c1 = rng.choice(clusters)
        c2 = rng.choice([c for c in clusters if c.pattern != c1.pattern])
        engine.merge(c1, c2)
    assert engine._pairs == {}


@settings(max_examples=25, deadline=None)
@given(dyadic_instances(), st.randoms(use_true_random=False))
def test_delta_cache_matches_rescan_after_merges(instance, rng):
    """Delta-judgment marginals (bitset kernel) equal a from-scratch
    recomputation for every pool candidate after arbitrary merges."""
    answers, _, L, _ = instance
    pool = ClusterPool(answers, L=L)
    engine = MergeEngine(pool, (pool.singleton(i) for i in range(L)))
    candidates = [pool.cluster(p) for p in pool.patterns()]
    while engine.size > 1:
        clusters = engine.clusters()
        c1 = rng.choice(clusters)
        c2 = rng.choice([c for c in clusters if c.pattern != c1.pattern])
        engine.merge(c1, c2)
        for candidate in candidates:
            cached_sum, cached_cnt = engine._marginal(candidate)
            fresh = [
                i for i in candidate.covered if not engine.is_covered(i)
            ]
            assert cached_cnt == len(fresh)
            assert cached_sum == sum(answers.values[i] for i in fresh)
