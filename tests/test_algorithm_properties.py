"""Hypothesis property tests over whole algorithm runs.

Random instances are drawn with hypothesis; every greedy algorithm must
return a feasible solution (Definition 4.1), every solution must dominate
the trivial lower bound, and the structural invariants of Section 5.1 must
hold along any merge trajectory.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.bottom_up import bottom_up
from repro.core.brute_force import lower_bound
from repro.core.fixed_order import fixed_order
from repro.core.hybrid import hybrid
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility


@st.composite
def instances(draw):
    """(answers, k, L, D) with 8-24 elements over 3-4 attributes."""
    m = draw(st.integers(min_value=3, max_value=4))
    domain = draw(st.integers(min_value=2, max_value=3))
    n = draw(st.integers(min_value=8, max_value=24))
    n = min(n, domain ** m)
    element_strategy = st.tuples(
        *[st.integers(min_value=0, max_value=domain - 1)] * m
    )
    elements = draw(
        st.lists(
            element_strategy, min_size=n, max_size=n, unique=True
        )
    )
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    answers = AnswerSet(elements, values)
    k = draw(st.integers(min_value=1, max_value=n))
    L = draw(st.integers(min_value=1, max_value=min(n, 8)))
    D = draw(st.integers(min_value=0, max_value=m))
    return answers, k, L, D


@settings(max_examples=40, deadline=None)
@given(instances())
def test_bottom_up_always_feasible(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    solution = bottom_up(pool, k, D)
    assert not check_feasibility(solution, answers, k, L, D)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_fixed_order_always_feasible(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    solution = fixed_order(pool, k, D)
    assert not check_feasibility(solution, answers, k, L, D)


@settings(max_examples=40, deadline=None)
@given(instances())
def test_hybrid_always_feasible(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    solution = hybrid(pool, k, D)
    assert not check_feasibility(solution, answers, k, L, D)


@settings(max_examples=30, deadline=None)
@given(instances())
def test_everything_dominates_lower_bound(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    floor = lower_bound(pool).avg
    for algorithm in (bottom_up, fixed_order, hybrid):
        assert algorithm(pool, k, D).avg >= floor - 1e-9


@settings(max_examples=25, deadline=None)
@given(instances())
def test_merge_trajectory_invariants(instance):
    """Along any merge order: coverage of the top-L never breaks, the
    antichain property holds, and the minimum pairwise distance never
    decreases (the three invariants of Section 5.1)."""
    from repro.core.cluster import strictly_covers

    answers, _, L, _ = instance
    pool = ClusterPool(answers, L=L)
    engine = MergeEngine(pool, (pool.singleton(i) for i in range(L)))
    previous_distance = engine.min_pairwise_distance()
    top = set(range(L))
    while engine.size > 1:
        clusters = engine.clusters()
        engine.merge(clusters[0], clusters[-1])
        assert all(engine.is_covered(i) for i in top)
        current = engine.clusters()
        for i, a in enumerate(current):
            for b in current[i + 1:]:
                assert not strictly_covers(a.pattern, b.pattern)
                assert not strictly_covers(b.pattern, a.pattern)
        distance_now = engine.min_pairwise_distance()
        assert distance_now >= previous_distance
        previous_distance = distance_now


@settings(max_examples=25, deadline=None)
@given(instances())
def test_snapshot_avg_equals_recomputed_avg(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    for algorithm in (bottom_up, fixed_order, hybrid):
        solution = algorithm(pool, k, D)
        recomputed = answers.avg_of(solution.covered)
        assert abs(solution.avg - recomputed) < 1e-9


@settings(max_examples=20, deadline=None)
@given(instances())
def test_solution_clusters_come_from_pool(instance):
    """Every output pattern is a generalization of some top-L element."""
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    for algorithm in (bottom_up, fixed_order, hybrid):
        for cluster in algorithm(pool, k, D).clusters:
            assert cluster.pattern in pool
