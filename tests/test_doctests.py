"""Run the docstring examples shipped in the public modules."""

from __future__ import annotations

import doctest

import pytest

import repro.common.timing
import repro.core.bitset
import repro.core.dense
import repro.core.merge
import repro.core.problem
import repro.server.singleflight
import repro.service.engine


@pytest.mark.parametrize(
    "module",
    [
        repro.core.problem,
        repro.common.timing,
        repro.core.bitset,
        repro.core.dense,
        repro.core.merge,
        repro.server.singleflight,
        repro.service.engine,
    ],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, "%d doctest failures in %s" % (
        results.failed, module.__name__
    )
    assert results.attempted > 0, "expected at least one doctest"
