"""Tests for AnswerSet (repro.core.answers) and value interning."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError, SchemaError
from repro.common.interning import STAR, AttributeCodec, ValueInterner
from repro.core.answers import AnswerSet


class TestValueInterner:
    def test_intern_assigns_dense_codes(self):
        interner = ValueInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0

    def test_value_roundtrip(self):
        interner = ValueInterner(["x", "y"])
        assert interner.value(interner.code("y")) == "y"

    def test_star_decodes_to_star_glyph(self):
        interner = ValueInterner(["x"])
        assert interner.value(STAR) == "*"

    def test_unknown_value_raises(self):
        with pytest.raises(KeyError):
            ValueInterner().code("missing")

    def test_domain_in_code_order(self):
        interner = ValueInterner(["c", "a", "b", "a"])
        assert interner.domain() == ("c", "a", "b")


class TestAttributeCodec:
    def test_encode_decode_roundtrip(self):
        codec = AttributeCodec(["x", "y"])
        codes = codec.encode(("hello", 42))
        assert codec.decode(codes) == ("hello", 42)

    def test_encode_arity_mismatch(self):
        codec = AttributeCodec(["x", "y"])
        with pytest.raises(ValueError):
            codec.encode(("only-one",))

    def test_decode_with_star(self):
        codec = AttributeCodec(["x", "y"])
        codec.encode(("a", "b"))
        assert codec.decode((0, STAR)) == ("a", "*")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ValueError):
            AttributeCodec(["x", "x"])

    def test_domain_sizes(self):
        codec = AttributeCodec(["x"])
        for value in ("a", "b", "a", "c"):
            codec.encode((value,))
        assert codec.domain_size(0) == 3


class TestAnswerSet:
    def test_sorted_by_descending_value(self):
        answers = AnswerSet.from_rows(
            [("a",), ("b",), ("c",)], [1.0, 3.0, 2.0]
        )
        assert answers.values == [3.0, 2.0, 1.0]

    def test_deterministic_tie_break(self):
        answers = AnswerSet.from_rows([("b",), ("a",)], [2.0, 2.0])
        # Ties broken by encoded element tuple: "b" was seen first -> code 0.
        assert answers.decode(answers.elements[0]) == ("b",)

    def test_top_returns_prefix(self, small_answers):
        assert small_answers.top(5) == [0, 1, 2, 3, 4]

    def test_top_out_of_range(self, small_answers):
        with pytest.raises(InvalidParameterError):
            small_answers.top(small_answers.n + 1)

    def test_avg_all(self):
        answers = AnswerSet.from_rows([("a",), ("b",)], [1.0, 3.0])
        assert answers.avg_all() == pytest.approx(2.0)

    def test_avg_of_subset(self):
        answers = AnswerSet.from_rows([("a",), ("b",), ("c",)], [1.0, 2.0, 6.0])
        assert answers.avg_of([0, 2]) == pytest.approx(3.5)

    def test_avg_of_empty_raises(self, small_answers):
        with pytest.raises(InvalidParameterError):
            small_answers.avg_of([])

    def test_duplicate_elements_rejected(self):
        with pytest.raises(SchemaError):
            AnswerSet.from_rows([("a",), ("a",)], [1.0, 2.0])

    def test_ragged_rows_rejected(self):
        codec = AttributeCodec(["x", "y"])
        with pytest.raises(SchemaError):
            AnswerSet([(0, 1), (0,)], [1.0, 2.0], codec)

    def test_length_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            AnswerSet.from_rows([("a",)], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            AnswerSet([], [], None)

    def test_decode_without_codec_raises(self):
        answers = AnswerSet([(0,), (1,)], [1.0, 2.0], None)
        with pytest.raises(SchemaError):
            answers.decode((0,))

    def test_generated_attribute_names(self):
        answers = AnswerSet.from_rows([("a", "b")], [1.0])
        assert answers.codec.attributes == ("A1", "A2")
