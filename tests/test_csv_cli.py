"""Tests for CSV IO and the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import EXIT_IO_ERROR, build_parser, main, serve_main
from repro.common.errors import SchemaError
from repro.query.csv_io import infer_column_type, read_csv, write_csv
from repro.query.relation import Relation
from repro.service.api import SummaryResponse, parse_response


class TestTypeInference:
    def test_int_column(self):
        assert infer_column_type(["1", "2", "30"]) == "int"

    def test_float_column(self):
        assert infer_column_type(["1.5", "2", "3.25"]) == "float"

    def test_string_column(self):
        assert infer_column_type(["a", "2", "3"]) == "str"

    def test_empty_values_ignored(self):
        assert infer_column_type(["", "7", ""]) == "int"

    def test_all_empty_is_str(self):
        assert infer_column_type(["", ""]) == "str"


class TestCsvRoundtrip:
    def test_read_types(self):
        source = io.StringIO("name,age,score\nann,31,4.5\nbob,45,3.25\n")
        relation = read_csv(source, name="people")
        assert relation.rows == [("ann", 31, 4.5), ("bob", 45, 3.25)]

    def test_missing_header_rejected(self):
        with pytest.raises(SchemaError):
            read_csv(io.StringIO(""))

    def test_ragged_row_rejected(self):
        with pytest.raises(SchemaError):
            read_csv(io.StringIO("a,b\n1\n"))

    def test_roundtrip_through_file(self, tmp_path):
        relation = Relation("r", ("x", "y"), [(1, "a"), (2, "b")])
        path = tmp_path / "r.csv"
        write_csv(relation, path)
        loaded = read_csv(path)
        assert loaded.rows == relation.rows
        assert loaded.columns == relation.columns
        assert loaded.name == "r"

    def test_none_written_as_empty(self):
        relation = Relation("r", ("x",), [(None,), (3,)])
        buffer = io.StringIO()
        write_csv(relation, buffer)
        # The csv module quotes a lone empty field ('""') to keep the
        # row distinguishable from a blank line.
        assert buffer.getvalue().splitlines()[1] in ('', '""')


@pytest.fixture
def answers_csv(tmp_path):
    path = tmp_path / "answers.csv"
    rows = ["era,group,val"]
    values = [("1970s", "student", 4.5), ("1970s", "educator", 4.2),
              ("1980s", "student", 4.0), ("1980s", "engineer", 3.9),
              ("1990s", "student", 2.5), ("1990s", "writer", 2.2),
              ("1990s", "artist", 2.0), ("1980s", "artist", 3.0)]
    rows += ["%s,%s,%s" % r for r in values]
    path.write_text("\n".join(rows) + "\n")
    return path


@pytest.fixture
def raw_csv(tmp_path):
    path = tmp_path / "ratings.csv"
    # "group" is a reserved word in the SQL template (as in real SQL),
    # so the column is named grp.
    lines = ["era,grp,rating"]
    for era, group, rating in [
        ("1970s", "student", 5), ("1970s", "student", 4),
        ("1980s", "student", 4), ("1980s", "student", 4),
        ("1990s", "writer", 2), ("1990s", "writer", 3),
        ("1990s", "artist", 2), ("1990s", "artist", 3),
    ]:
        lines.append("%s,%s,%d" % (era, group, rating))
    path.write_text("\n".join(lines) + "\n")
    return path


class TestCli:
    def test_answers_mode(self, answers_csv, capsys):
        code = main([str(answers_csv), "-k", "3", "-L", "4", "-D", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "avg(O)=" in captured.out

    def test_sql_mode(self, raw_csv, capsys):
        code = main([
            str(raw_csv),
            "--sql",
            "SELECT era, grp, avg(rating) AS val FROM ratings "
            "GROUP BY era, grp",
            "-k", "2", "-L", "3", "-D", "1",
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "clusters" in captured.out

    def test_expand_flag(self, answers_csv, capsys):
        main([str(answers_csv), "-k", "3", "-L", "4", "-D", "1", "--expand"])
        assert "rank" in capsys.readouterr().out

    def test_guidance_flag(self, answers_csv, capsys):
        code = main([
            str(answers_csv), "-k", "3", "-L", "4", "-D", "1", "--guidance"
        ])
        captured = capsys.readouterr()
        assert code == 0
        assert "legend:" in captured.out

    def test_bad_sql_reports_error(self, raw_csv, capsys):
        code = main([
            str(raw_csv), "--sql", "SELECT nonsense", "-k", "2", "-L", "2",
            "-D", "0",
        ])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_single_column_csv_rejected(self, tmp_path, capsys):
        path = tmp_path / "one.csv"
        path.write_text("x\n1\n2\n")
        code = main([str(path), "-k", "1", "-L", "1", "-D", "0"])
        assert code == 2

    def test_non_numeric_value_column_is_param_error(self, tmp_path, capsys):
        path = tmp_path / "text.csv"
        path.write_text("era,val\n1970s,high\n1980s,low\n")
        code = main([str(path), "-k", "1", "-L", "1", "-D", "0"])
        captured = capsys.readouterr()
        assert code == 2
        assert "numeric" in captured.err

    def test_missing_file_is_io_error(self, tmp_path, capsys):
        code = main([
            str(tmp_path / "nope.csv"), "-k", "1", "-L", "1", "-D", "0"
        ])
        captured = capsys.readouterr()
        assert code == EXIT_IO_ERROR
        assert "error:" in captured.err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        from repro import __version__

        assert __version__ in capsys.readouterr().out

    def test_algorithm_choices_come_from_registry(self):
        from repro.core.registry import algorithm_names

        parser = build_parser()
        (action,) = [
            a for a in parser._actions if a.dest == "algorithm"
        ]
        assert list(action.choices) == algorithm_names()

    def test_json_output_is_wire_schema(self, answers_csv, capsys):
        code = main([
            str(answers_csv), "-k", "3", "-L", "4", "-D", "1", "--json"
        ])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        response = parse_response(payload)
        assert isinstance(response, SummaryResponse)
        assert payload["schema_version"] == 2
        assert payload["solution_size"] == len(payload["clusters"])

    def test_json_matches_engine_wire_schema(self, answers_csv, capsys):
        """repro-summarize --json emits the same schema Engine.submit does."""
        main([str(answers_csv), "-k", "3", "-L", "4", "-D", "1", "--json"])
        cli_payload = json.loads(capsys.readouterr().out)

        from repro.query.csv_io import answer_set_from_relation
        from repro.service import Engine, SummaryRequest

        answers = answer_set_from_relation(read_csv(answers_csv))
        engine = Engine()
        engine.register_dataset("answers", answers)
        engine_payload = engine.submit(
            SummaryRequest(dataset="answers", k=3, L=4, D=1,
                           include_elements=True)
        ).to_dict()
        assert set(cli_payload) == set(engine_payload)
        for key in ("clusters", "objective", "solution_size", "k", "L", "D"):
            assert json.loads(json.dumps(cli_payload[key])) == json.loads(
                json.dumps(engine_payload[key])
            )

    def test_json_guidance_emits_second_object(self, answers_csv, capsys):
        code = main([
            str(answers_csv), "-k", "3", "-L", "4", "-D", "1", "--json",
            "--guidance",
        ])
        captured = capsys.readouterr()
        assert code == 0
        first, second = captured.out.splitlines()
        assert json.loads(first)["kind"] == "summary_response"
        assert json.loads(second)["kind"] == "guidance_response"


class TestServeCli:
    def test_serve_main_preloads_and_answers(self, answers_csv, capsys,
                                             monkeypatch):
        request = {
            "schema_version": 2, "kind": "summary",
            "dataset": answers_csv.stem, "k": 3, "L": 4, "D": 1,
        }
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps(request) + "\n")
        )
        code = serve_main([str(answers_csv)])
        captured = capsys.readouterr()
        assert code == 0
        banner, response = [
            json.loads(line) for line in captured.out.splitlines()
        ]
        assert banner["kind"] == "ready"
        assert banner["datasets"] == [answers_csv.stem]
        assert response["kind"] == "summary_response"

    def test_serve_main_missing_preload_is_io_error(self, tmp_path, capsys):
        code = serve_main([str(tmp_path / "nope.csv")])
        assert code == EXIT_IO_ERROR
