"""Tests for the greedy algorithms (Section 5) and brute force.

The central contracts: every algorithm returns a feasible solution for any
(k, L, D); brute force is optimal; Bottom-Up/Hybrid dominate Fixed-Order on
value in aggregate; the k >= L, D = 0 special case is the plain top-k.
"""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.bottom_up import (
    bottom_up,
    bottom_up_level_start,
    bottom_up_pairwise_avg,
)
from repro.core.brute_force import brute_force, lower_bound
from repro.core.fixed_order import (
    fixed_order,
    kmeans_fixed_order,
    minimal_covering_pattern,
    random_fixed_order,
)
from repro.core.hybrid import hybrid
from repro.core.problem import ALGORITHMS, ProblemInstance, summarize
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility
from tests.conftest import random_answer_set

GREEDY = [bottom_up, fixed_order, hybrid]


@pytest.mark.parametrize("algorithm", GREEDY)
@pytest.mark.parametrize("k,L,D", [
    (4, 8, 2), (2, 8, 2), (8, 4, 0), (3, 10, 3), (1, 6, 4), (5, 5, 1),
])
def test_greedy_algorithms_always_feasible(small_answers, algorithm, k, L, D):
    pool = ClusterPool(small_answers, L=L)
    solution = algorithm(pool, k, D)
    violations = check_feasibility(solution, small_answers, k, L, D)
    assert not violations, violations


@pytest.mark.parametrize("seed", range(5))
def test_feasible_across_random_instances(seed):
    answers = random_answer_set(n=30, m=4, domain=3, seed=seed + 100)
    pool = ClusterPool(answers, L=8)
    for algorithm in GREEDY:
        for D in (0, 2, 4):
            solution = algorithm(pool, 3, D)
            assert not check_feasibility(solution, answers, 3, 8, D)


def test_top_singletons_optimal_when_k_ge_L_and_D_zero(small_answers):
    # Appendix A.2 case (1): with k >= L and D = 0 the optimum consists of
    # top original elements as singletons.  Since |O| <= k and values are
    # sorted descending, avg(top-j) is maximized at j = L, so the optimum
    # is exactly the top-L singletons.
    pool = ClusterPool(small_answers, L=3)
    solution = brute_force(pool, k=5, D=0)
    expected = small_answers.avg_of(range(3))
    assert solution.avg == pytest.approx(expected)
    assert all(c.size == 1 for c in solution.clusters)


def test_brute_force_dominates_greedy(tiny_answers):
    pool = ClusterPool(tiny_answers, L=4)
    optimal = brute_force(pool, k=2, D=2)
    for algorithm in GREEDY:
        greedy_solution = algorithm(pool, 2, 2)
        assert optimal.avg >= greedy_solution.avg - 1e-9


@pytest.mark.parametrize("seed", range(4))
def test_brute_force_dominates_on_random_instances(seed):
    answers = random_answer_set(n=15, m=3, domain=3, seed=seed)
    pool = ClusterPool(answers, L=4)
    optimal = brute_force(pool, k=3, D=1)
    for algorithm in GREEDY:
        assert optimal.avg >= algorithm(pool, 3, 1).avg - 1e-9


def test_brute_force_feasible(tiny_answers):
    pool = ClusterPool(tiny_answers, L=4)
    solution = brute_force(pool, k=2, D=2)
    assert not check_feasibility(solution, tiny_answers, 2, 4, 2)


def test_lower_bound_is_global_average(small_answers):
    pool = ClusterPool(small_answers, L=5)
    trivial = lower_bound(pool)
    assert trivial.size == 1
    assert trivial.avg == pytest.approx(small_answers.avg_all())


def test_everything_beats_lower_bound(small_answers):
    pool = ClusterPool(small_answers, L=8)
    floor = lower_bound(pool).avg
    for algorithm in GREEDY:
        assert algorithm(pool, 4, 2).avg >= floor - 1e-9


class TestBottomUpVariants:
    def test_level_start_feasible(self, small_answers):
        pool = ClusterPool(small_answers, L=8)
        for D in (1, 2, 3):
            solution = bottom_up_level_start(pool, 4, D)
            assert not check_feasibility(solution, small_answers, 4, 8, D)

    def test_pairwise_avg_feasible(self, small_answers):
        pool = ClusterPool(small_answers, L=8)
        solution = bottom_up_pairwise_avg(pool, 4, 2)
        assert not check_feasibility(solution, small_answers, 4, 8, 2)

    def test_level_start_seeds_at_level_d_minus_one(self, small_answers):
        pool = ClusterPool(small_answers, L=4)
        solution = bottom_up_level_start(pool, k=10, D=3)
        # With k large enough no size merging happens: all clusters remain
        # at level D-1 = 2.
        assert all(c.level >= 2 for c in solution.clusters)


class TestFixedOrderVariants:
    def test_random_variant_feasible_any_seed(self, small_answers):
        pool = ClusterPool(small_answers, L=8)
        for seed in range(5):
            solution = random_fixed_order(pool, 4, 2, seed=seed)
            assert not check_feasibility(solution, small_answers, 4, 8, 2)

    def test_kmeans_variant_feasible(self, small_answers):
        pool = ClusterPool(small_answers, L=8)
        solution = kmeans_fixed_order(pool, 4, 2, seed=1)
        assert not check_feasibility(solution, small_answers, 4, 8, 2)

    def test_minimal_covering_pattern(self):
        pattern = minimal_covering_pattern([(1, 2, 3), (1, 5, 3)])
        assert pattern == (1, -1, 3)

    def test_fixed_order_with_budget(self, small_answers):
        pool = ClusterPool(small_answers, L=8)
        wide = fixed_order(pool, k=2, D=1, size_budget=6)
        assert wide.size <= 6


class TestSummarizeApi:
    def test_all_registered_algorithms_run(self, small_answers):
        for name in ALGORITHMS:
            if name == "brute-force":
                continue  # covered separately on smaller instances
            solution = summarize(small_answers, k=3, L=6, D=2, algorithm=name)
            if name == "lower-bound":
                assert solution.size == 1
            else:
                assert not check_feasibility(solution, small_answers, 3, 6, 2)

    def test_unknown_algorithm_rejected(self, small_answers):
        with pytest.raises(InvalidParameterError):
            summarize(small_answers, k=3, L=6, D=2, algorithm="nope")

    def test_parameter_validation(self, small_answers):
        with pytest.raises(InvalidParameterError):
            ProblemInstance(small_answers, k=0, L=5, D=1)
        with pytest.raises(InvalidParameterError):
            ProblemInstance(small_answers, k=3, L=5, D=small_answers.m + 1)
        with pytest.raises(InvalidParameterError):
            ProblemInstance(small_answers, k=3, L=-1, D=1)

    def test_L_zero_normalized_to_one(self, small_answers):
        instance = ProblemInstance(small_answers, k=3, L=0, D=1)
        assert instance.L == 1

    def test_pool_rebuilt_on_L_change(self, small_answers):
        instance = ProblemInstance(small_answers, k=3, L=4, D=1)
        first = instance.pool
        instance.L = 6
        assert instance.pool is not first
        assert instance.pool.L == 6


def test_example_figure1_solution_shape(paper_example_answers):
    """On the Figure 1a-like data, k=4/L=8/D=2 yields 4 diverse clusters
    covering the top 8, with avg above the top-4-singletons trap."""
    solution = summarize(
        paper_example_answers, k=4, L=8, D=2, algorithm="bottom-up"
    )
    assert not check_feasibility(solution, paper_example_answers, 4, 8, 2)
    assert solution.size <= 4
    # The misleading (20s, M) pattern covering both high and low values
    # must not be a cluster on its own.
    decoded = [
        paper_example_answers.decode(c.pattern) for c in solution.clusters
    ]
    assert ("*", "20s", "M", "*") not in decoded
