"""Incremental append maintenance: extended sets/pools ≡ from-scratch.

The append scenario's core guarantee: after any sequence of row appends,
the incrementally maintained state — :meth:`AnswerSet.extended`'s grown
set plus :meth:`ClusterPool.extended`'s spliced pool — is *bit-identical*
to rebuilding from scratch over the concatenated rows, across all three
kernels (python/bitset share int masks; dense on both the numpy and the
stdlib-array backend), all three mapping strategies, and both coverage
modes.  On top sit the service-layer contracts: dataset versions key
caches so stale pools/stores are unreachable, cached pools are carried
over (not dropped) by an append, and the ``append_rows`` wire kind
round-trips with typed errors for hostile input.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answers import AnswerSet
from repro.core.bitset import bitset_of, splice_mask
from repro.core.bottom_up import bottom_up
from repro.core.dense import MaskExtension, blocks_of, numpy_disabled
from repro.core.semilattice import ClusterPool
from repro.service import Engine
from repro.service.serve import Dispatcher

pytestmark = pytest.mark.tier1


# -- mask splicing primitives -------------------------------------------------


class TestSpliceMask:
    def test_insert_into_middle_relocates_higher_bits(self):
        # universe [a, b, c] -> [a, NEW, b, NEW, c]
        assert splice_mask(0b111, [1, 3]) == 0b10101

    def test_positions_are_final_coordinates(self):
        # one element at old rank 0; two new rows land at ranks 0 and 1.
        assert splice_mask(0b1, [0, 1]) == 0b100

    def test_empty_positions_is_identity(self):
        assert splice_mask(0b1011, []) == 0b1011

    def test_matches_recomputation_exhaustively(self):
        # Every 6-bit mask, every insertion pair: splice == recompute.
        for positions in ([2], [0, 4], [3, 4], [0, 7]):
            for old_mask in range(64):
                old_ids = [i for i in range(6) if (old_mask >> i) & 1]
                new_of_old = _relocation(6, positions)
                expected = bitset_of([new_of_old[i] for i in old_ids])
                assert splice_mask(old_mask, positions) == expected


def _relocation(old_n: int, positions: list[int]) -> list[int]:
    """new index of each old element after inserting at *positions*."""
    new_n = old_n + len(positions)
    reserved = set(positions)
    return [i for i in range(new_n) if i not in reserved]


class TestMaskExtension:
    @pytest.mark.parametrize("use_numpy", [True, False])
    def test_extends_like_int_splice(self, use_numpy):
        positions, old_n = [1, 5, 8], 7
        new_n = old_n + len(positions)
        for old_mask in (0, 0b1, 0b1010110, 0b1111111):
            old_ids = [i for i in range(old_n) if (old_mask >> i) & 1]
            if use_numpy:
                blocks = blocks_of(old_ids, old_n)
            else:
                with numpy_disabled():
                    blocks = blocks_of(old_ids, old_n)
            extension = MaskExtension(positions, old_n, new_n)
            extended = extension.extend(blocks, added=[5])
            expected = splice_mask(old_mask, positions) | (1 << 5)
            assert extended._as_int() == expected
            assert extended.nbits == new_n

    def test_rejects_inconsistent_geometry(self):
        with pytest.raises(ValueError):
            MaskExtension([1], 5, 8)
        with pytest.raises(ValueError):
            MaskExtension([1], 5, 6).extend(blocks_of([0], 4))


# -- AnswerSet.extended -------------------------------------------------------


class TestAnswerSetExtended:
    def test_delta_is_final_rank_positions(self):
        answers = AnswerSet.from_rows(
            [("a",), ("b",), ("c",)], [9.0, 5.0, 1.0]
        )
        bigger, delta = answers.extended([("d",), ("e",)], [7.0, 0.5])
        assert [bigger.values[i] for i in delta] == [7.0, 0.5]
        assert bigger.values == [9.0, 7.0, 5.0, 1.0, 0.5]
        assert bigger.n == 5

    def test_original_set_is_untouched_and_codec_shared(self):
        answers = AnswerSet.from_rows([("a",), ("b",)], [2.0, 1.0])
        bigger, _ = answers.extended([("z",)], [3.0])
        assert answers.n == 2
        assert bigger.codec is answers.codec
        assert bigger.decode(bigger.elements[0]) == ("z",)

    def test_duplicate_append_is_rejected(self):
        answers = AnswerSet.from_rows([("a",), ("b",)], [2.0, 1.0])
        from repro.common.errors import SchemaError

        with pytest.raises(SchemaError):
            answers.extended([("a",)], [5.0])
        with pytest.raises(SchemaError):
            answers.extended([("c",), ("c",)], [5.0, 4.0])
        with pytest.raises(SchemaError):
            answers.extended([], [])
        with pytest.raises(SchemaError):
            answers.extended([("c",)], [1.0, 2.0])

    def test_codecless_sets_extend_with_encoded_tuples(self):
        answers = AnswerSet([(0, 1), (1, 0)], [2.0, 1.0])
        bigger, delta = answers.extended([(2, 2)], [9.0])
        assert bigger.elements[delta[0]] == (2, 2)


# -- pool after k appends ≡ pool rebuilt from scratch -------------------------


@st.composite
def append_runs(draw):
    """A base instance plus 1-3 append batches of distinct rows.

    Values are dyadic rationals (q/4) so every partial sum is exact and
    the cross-kernel comparison can demand identical floats.
    """
    m = draw(st.integers(min_value=2, max_value=3))
    domain = draw(st.integers(min_value=2, max_value=4))
    element_strategy = st.tuples(
        *[st.integers(min_value=0, max_value=domain - 1)] * m
    )
    universe = draw(
        st.lists(element_strategy, min_size=6, max_size=20, unique=True)
    )
    values = [
        q / 4.0
        for q in draw(
            st.lists(
                st.integers(min_value=0, max_value=40),
                min_size=len(universe),
                max_size=len(universe),
            )
        )
    ]
    base_n = draw(st.integers(min_value=4, max_value=max(4, len(universe) - 2)))
    base_n = min(base_n, len(universe) - 1)
    batches = []
    cursor = base_n
    while cursor < len(universe):
        size = draw(st.integers(min_value=1, max_value=len(universe) - cursor))
        batches.append(
            (universe[cursor:cursor + size], values[cursor:cursor + size])
        )
        cursor += size
    L = draw(st.integers(min_value=1, max_value=min(base_n, 6)))
    strategy = draw(st.sampled_from(["eager", "naive", "lazy"]))
    mask_only = draw(st.booleans())
    return (universe[:base_n], values[:base_n], batches, L, strategy,
            mask_only)


def _assert_pools_identical(maintained, rebuilt, dense):
    assert list(maintained.patterns()) == list(rebuilt.patterns())
    for pattern in rebuilt.patterns():
        left, right = maintained.mask(pattern), rebuilt.mask(pattern)
        if dense:
            assert left._as_int() == right._as_int(), pattern
            assert left.nbits == right.nbits
        else:
            assert left == right, pattern
        assert maintained.coverage(pattern) == rebuilt.coverage(pattern)
        assert (
            maintained.cluster(pattern).value_sum
            == rebuilt.cluster(pattern).value_sum
        ), pattern


@settings(max_examples=60, deadline=None)
@given(append_runs())
def test_pool_after_appends_equals_rebuild_int_masks(run):
    """python/bitset kernels (shared int-mask pools): maintenance ≡ rebuild."""
    elements, values, batches, L, strategy, mask_only = run
    answers = AnswerSet(elements, values)
    pool = ClusterPool(answers, L, strategy=strategy, mask_only=mask_only)
    for rows, row_values in batches:
        answers, delta = answers.extended(rows, row_values)
        pool = pool.extended(answers, delta)
        rebuilt = ClusterPool(
            answers, L, strategy=strategy, mask_only=mask_only
        )
        _assert_pools_identical(pool, rebuilt, dense=False)


@settings(max_examples=40, deadline=None)
@given(append_runs())
def test_pool_after_appends_equals_rebuild_dense_numpy(run):
    elements, values, batches, L, strategy, mask_only = run
    answers = AnswerSet(elements, values)
    pool = ClusterPool(
        answers, L, strategy=strategy, mask_only=mask_only, kernel="dense"
    )
    for rows, row_values in batches:
        answers, delta = answers.extended(rows, row_values)
        pool = pool.extended(answers, delta)
        rebuilt = ClusterPool(
            answers, L, strategy=strategy, mask_only=mask_only,
            kernel="dense",
        )
        _assert_pools_identical(pool, rebuilt, dense=True)


@settings(max_examples=25, deadline=None)
@given(append_runs())
def test_pool_after_appends_equals_rebuild_dense_fallback(run):
    elements, values, batches, L, strategy, mask_only = run
    with numpy_disabled():
        answers = AnswerSet(elements, values)
        pool = ClusterPool(
            answers, L, strategy=strategy, mask_only=mask_only,
            kernel="dense",
        )
        for rows, row_values in batches:
            answers, delta = answers.extended(rows, row_values)
            pool = pool.extended(answers, delta)
            rebuilt = ClusterPool(
                answers, L, strategy=strategy, mask_only=mask_only,
                kernel="dense",
            )
            _assert_pools_identical(pool, rebuilt, dense=True)


@settings(max_examples=30, deadline=None)
@given(append_runs(), st.integers(min_value=1, max_value=4),
       st.integers(min_value=0, max_value=2))
def test_solutions_identical_on_maintained_pools(run, k, D):
    """Solve-level equivalence: bottom-up on the maintained pool returns
    the same clusters/objective as on a rebuilt pool, int and dense."""
    elements, values, batches, L, strategy, mask_only = run
    answers = AnswerSet(elements, values)
    int_pool = ClusterPool(answers, L, strategy=strategy, mask_only=mask_only)
    dense_pool = ClusterPool(
        answers, L, strategy=strategy, mask_only=mask_only, kernel="dense"
    )
    for rows, row_values in batches:
        answers, delta = answers.extended(rows, row_values)
        int_pool = int_pool.extended(answers, delta)
        dense_pool = dense_pool.extended(answers, delta)
    rebuilt = ClusterPool(answers, L, strategy=strategy, mask_only=mask_only)
    expected = bottom_up(rebuilt, k, D)
    for pool, kernel in ((int_pool, "bitset"), (int_pool, "python"),
                         (dense_pool, "dense")):
        solution = bottom_up(pool, k, D, kernel=kernel)
        assert solution.avg == expected.avg
        assert {c.pattern for c in solution.clusters} == {
            c.pattern for c in expected.clusters
        }


def test_full_rebuild_fallback_when_top_l_churns():
    """An append dominated by new top-L rows trips the rebuild heuristic;
    the result must still equal a from-scratch pool."""
    answers = AnswerSet.from_rows(
        [("a", "x"), ("b", "y"), ("c", "z")], [3.0, 2.0, 1.0]
    )
    pool = ClusterPool(answers, L=2)
    rows = [("p", "q"), ("r", "s"), ("t", "u"), ("v", "w")]
    answers2, delta = answers.extended(rows, [99.0, 98.0, 97.0, 96.0])
    maintained = pool.extended(answers2, delta)
    rebuilt = ClusterPool(answers2, L=2)
    _assert_pools_identical(maintained, rebuilt, dense=False)


def test_extended_rejects_inconsistent_delta():
    from repro.common.errors import InvalidParameterError

    answers = AnswerSet.from_rows([("a",), ("b",)], [2.0, 1.0])
    pool = ClusterPool(answers, L=1)
    bigger, _delta = answers.extended([("c",)], [3.0])
    with pytest.raises(InvalidParameterError):
        pool.extended(bigger, [0, 1])


# -- service layer: versioned caches + the append_rows wire kind --------------


def _paper_engine() -> tuple[Engine, AnswerSet]:
    answers = AnswerSet.from_rows(
        [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"), ("c", "x")],
        [9.0, 7.0, 5.0, 3.0, 1.0],
    )
    engine = Engine()
    engine.register_dataset("toy", answers)
    return engine, answers


SUMMARY = {
    "schema_version": 2, "kind": "summary", "dataset": "toy",
    "k": 2, "L": 3, "D": 1,
}


class TestEngineAppend:
    def test_append_bumps_version_and_carries_pools(self):
        engine, _ = _paper_engine()
        dispatcher = Dispatcher(engine)
        assert engine.dataset_version("toy") == 0
        cold = dispatcher.dispatch_payload(dict(SUMMARY)).response
        assert cold["cache_hit"] is False
        result = engine.append_rows("toy", [("c", "y")], [8.0])
        assert result["version"] == 1
        assert result["appended"] == 1
        assert result["pools_maintained"] == 1
        assert engine.dataset_version("toy") == 1
        # The carried-over pool serves the new version's requests warm.
        warm = dispatcher.dispatch_payload(dict(SUMMARY)).response
        assert warm["cache_hit"] is True

    def test_post_append_answers_match_fresh_engine(self):
        engine, _ = _paper_engine()
        dispatcher = Dispatcher(engine)
        dispatcher.dispatch_payload(dict(SUMMARY))
        engine.append_rows("toy", [("c", "y"), ("d", "x")], [8.0, 2.0])
        maintained = dispatcher.dispatch_payload(dict(SUMMARY)).response
        fresh = Engine()
        fresh.register_dataset(
            "toy",
            AnswerSet.from_rows(
                [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y"),
                 ("c", "x"), ("c", "y"), ("d", "x")],
                [9.0, 7.0, 5.0, 3.0, 1.0, 8.0, 2.0],
            ),
        )
        reference = Dispatcher(fresh).dispatch_payload(
            dict(SUMMARY)
        ).response
        for key in ("objective", "clusters", "covered_count",
                    "solution_size"):
            assert maintained[key] == reference[key], key

    def test_stores_of_old_version_are_unreachable(self):
        engine, _ = _paper_engine()
        explore = {
            "schema_version": 2, "kind": "explore", "dataset": "toy",
            "k": 2, "L": 3, "D": 1, "k_range": [1, 3], "d_values": [0, 1],
        }
        dispatcher = Dispatcher(engine)
        first = dispatcher.dispatch_payload(dict(explore)).response
        assert first["cache_hit"] is False
        engine.append_rows("toy", [("z", "z")], [0.25])
        # Same request, new version: the store must rebuild, not hit.
        second = dispatcher.dispatch_payload(dict(explore)).response
        assert second["cache_hit"] is False

    def test_replace_registration_bumps_version(self):
        engine, answers = _paper_engine()
        assert engine.dataset_version("toy") == 0
        engine.register_dataset("toy", answers, replace=True)
        assert engine.dataset_version("toy") == 1

    def test_wire_kind_round_trip_and_errors(self):
        engine, _ = _paper_engine()
        dispatcher = Dispatcher(engine)
        ok = dispatcher.dispatch_payload({
            "kind": "append_rows", "dataset": "toy",
            "rows": [["c", "y"]], "values": [8.0],
        }).response
        assert ok["kind"] == "rows_appended"
        assert ok["n"] == 6 and ok["version"] == 1
        for bad, error_type in (
            ({"kind": "append_rows", "dataset": 7}, "SchemaError"),
            ({"kind": "append_rows", "dataset": "toy"}, "SchemaError"),
            ({"kind": "append_rows", "dataset": "toy", "rows": [],
              "values": []}, "SchemaError"),
            ({"kind": "append_rows", "dataset": "toy",
              "rows": [["q", "q"]], "values": ["x"]}, "SchemaError"),
            ({"kind": "append_rows", "dataset": "toy",
              "rows": [["a", "x"]], "values": [1.0]}, "SchemaError"),
            ({"kind": "append_rows", "dataset": "missing",
              "rows": [["a", "x"]], "values": [1.0]},
             "InvalidParameterError"),
        ):
            response = dispatcher.dispatch_payload(dict(bad)).response
            assert response["error_type"] == error_type, bad

    def test_append_requires_auth_on_secured_server(self):
        from repro.web import AuthService

        engine, _ = _paper_engine()
        dispatcher = Dispatcher(engine, auth=AuthService({"tok": "op"}))
        denied = dispatcher.dispatch_payload({
            "kind": "append_rows", "dataset": "toy",
            "rows": [["c", "y"]], "values": [8.0],
        }).response
        assert denied["error_type"] == "AuthError"
        allowed = dispatcher.dispatch_payload({
            "kind": "append_rows", "dataset": "toy",
            "rows": [["c", "y"]], "values": [8.0], "auth": "tok",
        }).response
        assert allowed["kind"] == "rows_appended"
