"""Tests for the (k, D)-sweep precomputation and the solution store.

The key contracts: retrieved solutions are feasible; they match the
objective recorded during the sweep; cluster lifetimes are contiguous in k
(Continuity, Proposition 6.1); and the interval-tree storage is smaller
than materializing every (k, D) solution.
"""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility
from repro.interactive.precompute import SolutionStore
from tests.conftest import random_answer_set


@pytest.fixture(scope="module")
def store_setup():
    answers = random_answer_set(n=80, m=5, domain=4, seed=21)
    pool = ClusterPool(answers, L=12)
    store = SolutionStore(pool, k_range=(2, 12), d_values=[0, 1, 2, 3])
    return answers, pool, store


class TestRetrieval:
    def test_all_retrievals_feasible(self, store_setup):
        answers, pool, store = store_setup
        for D in store.d_values:
            for k in range(store.k_min, store.k_max + 1):
                solution = store.retrieve(k, D)
                violations = check_feasibility(solution, answers, k, 12, D)
                assert not violations, (k, D, violations)

    def test_objective_matches_retrieved_solution(self, store_setup):
        answers, pool, store = store_setup
        for D in store.d_values:
            for k in range(store.k_min, store.k_max + 1):
                solution = store.retrieve(k, D)
                assert solution.avg == pytest.approx(store.objective(k, D))

    def test_solution_size_matches(self, store_setup):
        _, _, store = store_setup
        for D in store.d_values:
            for k in range(store.k_min, store.k_max + 1):
                assert store.retrieve(k, D).size == store.solution_size(k, D)
                assert store.solution_size(k, D) <= k

    def test_out_of_range_k_rejected(self, store_setup):
        _, _, store = store_setup
        with pytest.raises(InvalidParameterError):
            store.retrieve(1, 1)
        with pytest.raises(InvalidParameterError):
            store.retrieve(13, 1)

    def test_unprecomputed_d_rejected(self, store_setup):
        _, _, store = store_setup
        with pytest.raises(InvalidParameterError):
            store.retrieve(5, 4)


class TestContinuity:
    def test_cluster_lifetimes_are_contiguous(self, store_setup):
        """Proposition 6.1: for fixed (L, D), the k values where a cluster
        appears form one contiguous interval."""
        _, _, store = store_setup
        for D in store.d_values:
            appearances: dict[tuple[int, ...], list[int]] = {}
            for k in range(store.k_min, store.k_max + 1):
                for cluster in store.retrieve(k, D).clusters:
                    appearances.setdefault(cluster.pattern, []).append(k)
            for pattern, ks in appearances.items():
                ks = sorted(ks)
                assert ks == list(range(ks[0], ks[-1] + 1)), (D, pattern, ks)
                assert store.cluster_lifetime(pattern, D) == (ks[0], ks[-1])

    def test_interval_storage_compresses(self, store_setup):
        _, _, store = store_setup
        assert store.stored_interval_count() < store.naive_storage_count()


class TestObjectiveShape:
    def test_objective_nonincreasing_as_k_shrinks(self, store_setup):
        # Merging can only lower (or keep) the achievable average, so the
        # guidance curves are monotone along each sweep.
        _, _, store = store_setup
        for D in store.d_values:
            curve = [
                store.objective(k, D)
                for k in range(store.k_min, store.k_max + 1)
            ]
            assert all(a <= b + 1e-9 for a, b in zip(curve, curve[1:]))

    def test_distance_zero_dominates_larger_d(self, store_setup):
        # A looser distance constraint never hurts the greedy's start state,
        # and at k_max (no forced merging) D=0 keeps the most detail.
        _, _, store = store_setup
        k = store.k_max
        assert store.objective(k, 0) >= store.objective(k, 3) - 1e-9


class TestParameterValidation:
    def test_bad_k_range(self, store_setup):
        _, pool, _ = store_setup
        with pytest.raises(InvalidParameterError):
            SolutionStore(pool, k_range=(5, 2), d_values=[1])

    def test_empty_d_values(self, store_setup):
        _, pool, _ = store_setup
        with pytest.raises(InvalidParameterError):
            SolutionStore(pool, k_range=(2, 5), d_values=[])


def test_precompute_quality_close_to_dedicated_hybrid():
    """The sweep's per-(k, D) solutions track dedicated Hybrid runs.

    The shared Fixed-Order phase runs once with D=0 and the largest budget,
    so individual (k, D) cells can be somewhat worse than a dedicated run —
    the speed/quality trade Section 6.2 accepts.  We bound the loss and
    check the sweep always beats the trivial solution."""
    from repro.core.brute_force import lower_bound
    from repro.core.hybrid import hybrid

    answers = random_answer_set(n=60, m=4, domain=4, seed=9)
    pool = ClusterPool(answers, L=10)
    store = SolutionStore(pool, k_range=(3, 8), d_values=[1, 2])
    floor = lower_bound(pool).avg
    for D in (1, 2):
        for k in (3, 5, 8):
            dedicated = hybrid(pool, k, D)
            swept = store.retrieve(k, D)
            assert swept.avg >= 0.85 * dedicated.avg
            assert swept.avg >= floor - 1e-9


def test_store_retrieval_is_floored_at_root():
    """Explore must never serve a below-root solution that a direct
    summary request (which floors at the root) would refuse to return."""
    from repro.core.answers import AnswerSet
    from repro.core.hybrid import hybrid

    answers = AnswerSet.from_rows(
        [("c", "a", "a"), ("a", "c", "b"), ("b", "c", "c"),
         ("b", "a", "c"), ("b", "b", "c")],
        [7.83, 7.01, 0.66, 8.29, 7.99],
    )
    pool = ClusterPool(answers, L=2)
    store = SolutionStore(pool, k_range=(1, 3), d_values=(3,))
    direct = hybrid(pool, k=1, D=3)
    served = store.retrieve(1, 3)
    root_avg = pool.root().avg
    assert served.avg >= root_avg - 1e-12
    assert store.objective(1, 3) >= root_avg - 1e-12
    assert store.objective(1, 3) == served.avg
    assert store.solution_size(1, 3) == served.size
    assert served.avg == direct.avg
