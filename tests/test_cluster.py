"""Unit tests for the pattern algebra (repro.core.cluster)."""

from __future__ import annotations

import pytest

from repro.common.interning import STAR
from repro.core.cluster import (
    Cluster,
    ancestors_at_level,
    comparable,
    covers,
    distance,
    format_pattern,
    generalizations,
    is_element,
    lca,
    lca_many,
    level,
    parents,
    strictly_covers,
)

S = STAR


class TestCoverage:
    def test_identical_patterns_cover_each_other(self):
        assert covers((1, 2, 3), (1, 2, 3))

    def test_star_covers_any_value(self):
        assert covers((S, 2, 3), (9, 2, 3))

    def test_value_mismatch_blocks_coverage(self):
        assert not covers((1, 2, 3), (1, 2, 4))

    def test_concrete_does_not_cover_star(self):
        # A star in the descendant needs a star in the ancestor.
        assert not covers((1, 2, 3), (1, 2, S))

    def test_root_covers_everything(self):
        assert covers((S, S, S), (4, 5, 6))
        assert covers((S, S, S), (S, 1, S))

    def test_strictly_covers_excludes_self(self):
        assert not strictly_covers((1, S), (1, S))
        assert strictly_covers((1, S), (1, 2))

    def test_comparable_both_directions(self):
        assert comparable((1, S), (1, 2))
        assert comparable((1, 2), (1, S))
        assert not comparable((1, S), (S, 2))

    def test_paper_figure3a_c1_covers_its_elements(self):
        # C1 = (*, *, c1, d1) covers (a1, b2, c1, d1) etc. (Figure 3a).
        c1 = (S, S, 0, 0)
        for element in [(0, 1, 0, 0), (0, 2, 0, 0), (1, 0, 0, 0)]:
            assert covers(c1, element)
        assert not covers(c1, (1, 0, 3, 0))  # c4 != c1


class TestDistance:
    def test_identical_elements_distance_zero(self):
        assert distance((1, 2, 3), (1, 2, 3)) == 0

    def test_hamming_on_elements(self):
        assert distance((1, 2, 3), (1, 9, 9)) == 2

    def test_star_always_contributes(self):
        # Definition 3.1: a position where either side is * counts.
        assert distance((S, 2), (1, 2)) == 1
        assert distance((S, 2), (S, 2)) == 1

    def test_paper_example_distance_three(self):
        # d((*, *, c1, d1), (a2, b1, *, d1)) = 3 (Section 3).
        assert distance((S, S, 0, 0), (1, 1, S, 0)) == 3

    def test_symmetry(self):
        p, q = (S, 1, 2), (0, S, 2)
        assert distance(p, q) == distance(q, p)

    def test_max_distance_is_m(self):
        assert distance((S, S, S), (S, S, S)) == 3

    def test_distance_counts_disagreements_and_stars(self):
        assert distance((1, 2, S, 4), (1, 3, S, S)) == 3


class TestLca:
    def test_lca_stars_out_differences(self):
        assert lca((0, 1, 2, S), (0, 3, 2, S)) == (0, S, 2, S)

    def test_paper_lca_example(self):
        # LCA((a1, *, c1, *), (a1, b2, c2, *)) = (a1, *, *, *) (Section 5.1).
        a1, b2, c1, c2 = 1, 2, 3, 4
        assert lca((a1, S, c1, S), (a1, b2, c2, S)) == (a1, S, S, S)

    def test_lca_covers_both_inputs(self):
        p, q = (1, 2, 3), (1, 5, 3)
        joined = lca(p, q)
        assert covers(joined, p) and covers(joined, q)

    def test_lca_is_least(self):
        # Any pattern covering both inputs covers their LCA.
        p, q = (1, 2, 3), (1, 5, 3)
        joined = lca(p, q)
        for candidate in generalizations((1, 2, 3)):
            if covers(candidate, p) and covers(candidate, q):
                assert covers(candidate, joined)

    def test_lca_many_matches_pairwise_fold(self):
        patterns = [(1, 2, 3), (1, 2, 4), (1, 9, 3)]
        assert lca_many(patterns) == lca(lca(patterns[0], patterns[1]), patterns[2])

    def test_lca_many_empty_raises(self):
        with pytest.raises(ValueError):
            lca_many([])

    def test_lca_idempotent(self):
        assert lca((1, S, 2), (1, S, 2)) == (1, S, 2)


class TestLevelsAndEnumeration:
    def test_level_counts_stars(self):
        assert level((1, 2, 3)) == 0
        assert level((S, 2, S)) == 2

    def test_is_element(self):
        assert is_element((1, 2, 3))
        assert not is_element((1, S, 3))

    def test_generalizations_count_is_power_of_two(self):
        assert len(generalizations((1, 2, 3))) == 8

    def test_generalizations_are_distinct_and_cover_base(self):
        base = (1, 2, 3, 4)
        gens = generalizations(base)
        assert len(set(gens)) == 16
        assert all(covers(g, base) for g in gens)

    def test_generalizations_of_starred_pattern(self):
        gens = generalizations((1, S, 3))
        assert len(gens) == 4
        assert (S, S, S) in gens

    def test_parents_star_one_position(self):
        assert sorted(parents((1, 2))) == sorted([(1, S), (S, 2)])

    def test_parents_of_root_is_empty(self):
        assert parents((S, S)) == []

    def test_ancestors_at_level(self):
        found = ancestors_at_level((1, 2, 3), 2)
        assert sorted(found) == sorted([(1, S, S), (S, 2, S), (S, S, 3)])

    def test_ancestors_at_level_below_own_level(self):
        assert ancestors_at_level((1, S, 3), 0) == []

    def test_ancestors_at_own_level_is_self(self):
        assert ancestors_at_level((1, S, 3), 1) == [(1, S, 3)]

    def test_distinct_same_level_patterns_satisfy_distance(self):
        # The level-(D-1) feasibility argument of Appendix A.2.
        for target_level in (1, 2):
            pool = ancestors_at_level((1, 2, 3, 4), target_level)
            pool += ancestors_at_level((1, 2, 9, 8), target_level)
            for i, p in enumerate(pool):
                for q in pool[i + 1:]:
                    if p != q:
                        assert distance(p, q) >= target_level + 1


class TestClusterObject:
    def test_avg_and_size(self):
        cluster = Cluster(
            pattern=(1, S), covered=frozenset({0, 1, 2}), value_sum=9.0
        )
        assert cluster.size == 3
        assert cluster.avg == pytest.approx(3.0)
        assert cluster.level == 1

    def test_avg_of_empty_cluster_raises(self):
        cluster = Cluster(pattern=(1, S), covered=frozenset(), value_sum=0.0)
        with pytest.raises(ValueError):
            _ = cluster.avg

    def test_ordering_is_by_pattern(self):
        a = Cluster(pattern=(1, 2), covered=frozenset({0}), value_sum=1.0)
        b = Cluster(pattern=(1, 3), covered=frozenset({1}), value_sum=9.0)
        assert a < b

    def test_format_pattern(self):
        assert format_pattern((1, S, 2)) == "(1, *, 2)"
        assert format_pattern((S,), values=("x",)) == "(x)"
