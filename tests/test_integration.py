"""Integration tests: full pipelines across subsystem boundaries."""

from __future__ import annotations

import pytest

from repro.core.problem import summarize
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility
from repro.datasets.movielens import EXAMPLE_QUERY, MovieLensConfig, build_database
from repro.datasets.tpcds import TpcdsConfig, generate_store_sales
from repro.interactive import ExplorationSession
from repro.query.aggregate import AggregateQuery, run_aggregate
from repro.query.sql import execute_sql
from repro.userstudy import run_study
from repro.viz.comparison import build_comparison


@pytest.fixture(scope="module")
def movielens_db():
    return build_database(
        MovieLensConfig(n_users=250, n_movies=300, n_ratings=15_000, seed=9)
    )


class TestMovieLensPipeline:
    def test_sql_to_clusters_end_to_end(self, movielens_db):
        result = execute_sql(
            "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
            "FROM RatingTable WHERE genres_adventure = 1 "
            "GROUP BY hdec, agegrp, gender, occupation "
            "HAVING count(*) > 10 ORDER BY val DESC",
            movielens_db,
        )
        answers = result.to_answer_set()
        assert answers.n >= 10
        L = min(8, answers.n)
        solution = summarize(answers, k=4, L=L, D=2)
        assert not check_feasibility(solution, answers, 4, L, 2)
        # Decoded clusters speak the raw vocabulary.
        decoded = answers.decode(solution.clusters[0].pattern)
        assert len(decoded) == 4

    def test_query_then_explore_then_compare(self, movielens_db):
        result = execute_sql(
            "SELECT hdec, agegrp, gender, avg(rating) AS val "
            "FROM RatingTable GROUP BY hdec, agegrp, gender "
            "HAVING count(*) > 30 ORDER BY val DESC",
            movielens_db,
        )
        answers = result.to_answer_set()
        session = ExplorationSession(answers)
        L = min(10, answers.n)
        old = session.solve(k=5, L=L, D=1).solution
        new = session.solve(k=3, L=L, D=1).solution
        view = build_comparison(old, new, answers, L=L)
        assert view.matched_distance <= view.default_distance
        covered_old = {i for b in view.bands for i in (b.old_index,)}
        assert covered_old <= set(range(old.size))

    def test_precompute_consistency_with_store(self, movielens_db):
        result = execute_sql(
            "SELECT hdec, gender, occupation, avg(rating) AS val "
            "FROM RatingTable GROUP BY hdec, gender, occupation "
            "HAVING count(*) > 20 ORDER BY val DESC",
            movielens_db,
        )
        answers = result.to_answer_set()
        session = ExplorationSession(answers)
        L = min(12, answers.n)
        store = session.precompute(L, (2, 8), [1, 2])
        for k in (2, 5, 8):
            for D in (1, 2):
                solution = store.retrieve(k, D)
                assert not check_feasibility(solution, answers, k, L, D)


class TestTpcdsPipeline:
    def test_store_sales_to_summary(self):
        relation = generate_store_sales(TpcdsConfig(n_rows=20_000, seed=4))
        query = AggregateQuery(
            group_by=("ss_store_sk", "ss_promo_sk", "ss_quantity"),
            aggregate="avg",
            target="ss_net_profit",
            having_count_gt=3,
        )
        answers = run_aggregate(relation, query).to_answer_set()
        assert answers.n > 100
        solution = summarize(answers, k=10, L=50, D=1)
        assert not check_feasibility(solution, answers, 10, 50, 1)
        assert solution.avg >= answers.avg_all()


class TestStudyPipeline:
    def test_study_on_real_query_output(self, movielens_db):
        result = execute_sql(
            "SELECT hdec, agegrp, gender, occupation, avg(rating) AS val "
            "FROM RatingTable GROUP BY hdec, agegrp, gender, occupation "
            "HAVING count(*) > 5 ORDER BY val DESC",
            movielens_db,
        )
        answers = result.to_answer_set()
        assert answers.n > 100
        study = run_study(answers, n_subjects=4, seed=7)
        for group in study.groups():
            for arm in (group.left, group.right):
                assert set(arm.sections) == {
                    "patterns-only", "memory-only", "patterns+members"
                }

    def test_example_query_constant_parses(self, movielens_db):
        result = execute_sql(EXAMPLE_QUERY, movielens_db)
        assert result.attributes == ("hdec", "agegrp", "gender", "occupation")


class TestLazyStrategyEndToEnd:
    def test_lazy_pool_supports_full_pipeline(self, movielens_db):
        result = execute_sql(
            "SELECT hdec, agegrp, gender, avg(rating) AS val "
            "FROM RatingTable GROUP BY hdec, agegrp, gender "
            "HAVING count(*) > 30 ORDER BY val DESC",
            movielens_db,
        )
        answers = result.to_answer_set()
        L = min(10, answers.n)
        eager = ClusterPool(answers, L=L, strategy="eager")
        lazy = ClusterPool(answers, L=L, strategy="lazy")
        from repro.core.hybrid import hybrid

        assert hybrid(eager, 4, 2).patterns() == hybrid(lazy, 4, 2).patterns()
