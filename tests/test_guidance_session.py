"""Tests for the guidance view (Figure 2) and the exploration session."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility
from repro.interactive.guidance import GuidanceView, build_guidance_view
from repro.interactive.precompute import SolutionStore
from repro.interactive.session import ExplorationSession
from tests.conftest import random_answer_set


@pytest.fixture(scope="module")
def guidance_setup():
    answers = random_answer_set(n=80, m=5, domain=4, seed=33)
    pool = ClusterPool(answers, L=10)
    store = SolutionStore(pool, k_range=(2, 10), d_values=[1, 2, 3])
    return answers, store, build_guidance_view(store)


class TestGuidanceView:
    def test_one_series_per_d(self, guidance_setup):
        _, store, view = guidance_setup
        assert tuple(s.D for s in view.series) == store.d_values

    def test_series_values_match_store(self, guidance_setup):
        _, store, view = guidance_setup
        for series in view.series:
            for k, avg in series.as_pairs():
                assert avg == pytest.approx(store.objective(k, series.D))

    def test_unknown_d_raises(self, guidance_setup):
        _, _, view = guidance_setup
        with pytest.raises(KeyError):
            view.for_distance(9)

    def test_knee_points_are_real_drops(self, guidance_setup):
        _, store, view = guidance_setup
        for D in (1, 2, 3):
            curve = dict(view.for_distance(D).as_pairs())
            for knee in view.knee_points(D, threshold=0.05):
                assert curve[knee] > curve[knee - 1]

    def test_flat_regions_are_flat(self, guidance_setup):
        _, store, view = guidance_setup
        for D in (1, 2, 3):
            series = dict(view.for_distance(D).as_pairs())
            for lo, hi in view.flat_regions(D, tolerance=1e-9):
                baseline = series[lo]
                for k in range(lo, hi + 1):
                    assert series[k] == pytest.approx(baseline)

    def test_bundles_partition_all_d(self, guidance_setup):
        _, store, view = guidance_setup
        bundles = view.overlapping_distance_bundles()
        flattened = sorted(d for bundle in bundles for d in bundle)
        assert flattened == sorted(store.d_values)

    def test_ascii_render_mentions_legend(self, guidance_setup):
        _, _, view = guidance_setup
        art = view.render_ascii(width=40, height=8)
        assert "legend:" in art
        assert "D=1" in art


class TestExplorationSession:
    def test_solve_produces_feasible_timed_solution(self):
        answers = random_answer_set(n=50, m=4, domain=4, seed=2)
        session = ExplorationSession(answers)
        timed = session.solve(k=4, L=8, D=2)
        assert not check_feasibility(timed.solution, answers, 4, 8, 2)
        assert timed.init_seconds >= 0
        assert timed.algo_seconds >= 0
        assert timed.total_seconds == pytest.approx(
            timed.init_seconds + timed.algo_seconds
        )

    def test_pool_cached_across_solves(self):
        answers = random_answer_set(n=50, m=4, domain=4, seed=2)
        session = ExplorationSession(answers)
        assert session.pool(8) is session.pool(8)

    def test_retrieve_matches_precompute(self):
        answers = random_answer_set(n=60, m=4, domain=4, seed=4)
        session = ExplorationSession(answers)
        store = session.precompute(L=8, k_range=(2, 8), d_values=[1, 2])
        timed = session.retrieve(
            k=4, L=8, D=2, k_range=(2, 8), d_values=[1, 2]
        )
        assert timed.solution.avg == pytest.approx(store.objective(4, 2))

    def test_precompute_store_cached(self):
        answers = random_answer_set(n=60, m=4, domain=4, seed=4)
        session = ExplorationSession(answers)
        first = session.precompute(L=8, k_range=(2, 8), d_values=[1, 2])
        second = session.precompute(L=8, k_range=(2, 8), d_values=[2, 1])
        assert first is second

    def test_expand_lists_covered_elements_with_ranks(self):
        answers = random_answer_set(n=30, m=4, domain=3, seed=6)
        session = ExplorationSession(answers)
        timed = session.solve(k=3, L=6, D=2)
        for cluster in timed.solution.clusters:
            rows = session.expand(cluster)
            assert len(rows) == cluster.size
            assert [r.rank for r in rows] == sorted(
                i + 1 for i in cluster.covered
            )

    def test_describe_two_layers(self):
        answers = random_answer_set(n=30, m=4, domain=3, seed=6)
        session = ExplorationSession(answers)
        timed = session.solve(k=3, L=6, D=2)
        flat = session.describe(timed.solution)
        deep = session.describe(timed.solution, expand_all=True)
        assert len(deep.splitlines()) > len(flat.splitlines())
        assert "rank" in deep

    def test_unknown_algorithm_rejected(self):
        answers = random_answer_set(n=30, m=4, domain=3, seed=6)
        session = ExplorationSession(answers)
        with pytest.raises(InvalidParameterError):
            session.solve(k=3, L=6, D=2, algorithm="bogus")

    def test_guidance_through_session(self):
        answers = random_answer_set(n=60, m=4, domain=4, seed=8)
        session = ExplorationSession(answers)
        view = session.guidance(L=8, k_range=(2, 8), d_values=[1, 2])
        assert isinstance(view, GuidanceView)
        assert view.L == 8
