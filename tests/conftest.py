"""Shared fixtures: small deterministic answer sets used across tests."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.answers import AnswerSet

#: Wall-clock-dependent response fields, zeroed before any byte
#: comparison — the golden-file convention shared by the service tests,
#: the server transport-parity tests, and benchmarks/bench_server_load.py.
VOLATILE_RESPONSE_KEYS = ("init_seconds", "algo_seconds", "total_seconds")


def zero_timings(response: dict) -> dict:
    """A deep copy of a wire response with every volatile field zeroed
    (including all values of the open ``phase_seconds`` map)."""
    response = json.loads(json.dumps(response))
    for key in VOLATILE_RESPONSE_KEYS:
        if key in response:
            response[key] = 0.0
    for key in response.get("phase_seconds", {}):
        response["phase_seconds"][key] = 0.0
    return response


def paper_like_answers() -> AnswerSet:
    """The deterministic 8-row set behind tests/golden/summary_response.json."""
    rows = [
        ("1970s", "student"), ("1970s", "educator"), ("1980s", "student"),
        ("1980s", "engineer"), ("1990s", "student"), ("1990s", "writer"),
        ("1990s", "artist"), ("1980s", "artist"),
    ]
    values = [4.5, 4.2, 4.0, 3.9, 2.5, 2.2, 2.0, 3.0]
    return AnswerSet.from_rows(rows, values, attributes=("era", "group"))


def random_answer_set(
    n: int = 50,
    m: int = 4,
    domain: int = 4,
    seed: int = 0,
    value_range: tuple[float, float] = (1.0, 5.0),
) -> AnswerSet:
    """A random answer set with distinct elements (test helper)."""
    rng = random.Random(seed)
    if domain ** m < n:
        raise ValueError("domain too small for n distinct elements")
    seen: set[tuple[int, ...]] = set()
    rows = []
    values = []
    low, high = value_range
    while len(rows) < n:
        element = tuple(rng.randrange(domain) for _ in range(m))
        if element in seen:
            continue
        seen.add(element)
        rows.append(tuple("v%d_%d" % (i, v) for i, v in enumerate(element)))
        values.append(round(rng.uniform(low, high), 4))
    return AnswerSet.from_rows(rows, values)


@pytest.fixture
def small_answers() -> AnswerSet:
    """50 elements, 4 attributes, domain 4 — the workhorse fixture."""
    return random_answer_set(n=50, m=4, domain=4, seed=7)


@pytest.fixture
def tiny_answers() -> AnswerSet:
    """12 elements, 3 attributes — small enough for exhaustive checks."""
    return random_answer_set(n=12, m=3, domain=3, seed=3)


@pytest.fixture
def paper_example_answers() -> AnswerSet:
    """A hand-built answer set shaped like Figure 1a (rank structure)."""
    rows = [
        (1975, "20s", "M", "student"),
        (1980, "20s", "M", "programmer"),
        (1980, "10s", "M", "student"),
        (1980, "20s", "M", "student"),
        (1985, "20s", "M", "programmer"),
        (1980, "20s", "M", "engineer"),
        (1985, "10s", "M", "student"),
        (1985, "20s", "M", "student"),
        (1990, "30s", "M", "educator"),
        (1990, "20s", "F", "student"),
        (1995, "30s", "M", "marketing"),
        (1995, "20s", "M", "technician"),
        (1995, "30s", "M", "entertainment"),
        (1995, "20s", "M", "executive"),
        (1995, "30s", "F", "librarian"),
        (1995, "30s", "M", "student"),
        (1995, "20s", "M", "writer"),
        (1995, "20s", "F", "healthcare"),
    ]
    values = [
        4.24, 4.13, 3.96, 3.91, 3.86, 3.83, 3.77, 3.76,
        3.40, 3.30, 3.02, 2.92, 2.91, 2.91, 2.84, 2.81, 2.51, 1.98,
    ]
    return AnswerSet.from_rows(
        rows, values, attributes=("hdec", "agegrp", "gender", "occupation")
    )
