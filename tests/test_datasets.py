"""Tests for the synthetic dataset generators."""

from __future__ import annotations

import pytest

from repro.datasets.movielens import (
    GENRES,
    MovieLensConfig,
    OCCUPATIONS,
    age_group,
    build_database,
    decade,
    generate_movies,
    generate_ratings,
    generate_users,
    half_decade,
)
from repro.datasets.tpcds import (
    STORE_SALES_COLUMNS,
    TpcdsConfig,
    generate_store_sales,
    tpcds_answer_set,
)
from repro.datasets.loader import synthetic_answer_set

SMALL = MovieLensConfig(n_users=120, n_movies=150, n_ratings=4000, seed=5)


class TestDerivedFeatures:
    def test_age_group(self):
        assert age_group(13) == "10s"
        assert age_group(27) == "20s"
        assert age_group(40) == "40s"

    def test_half_decade(self):
        assert half_decade(1993) == 1990
        assert half_decade(1995) == 1995
        assert half_decade(1999) == 1995

    def test_decade(self):
        assert decade(1993) == 1990
        assert decade(1989) == 1980


class TestMovieLensGenerator:
    def test_users_shape(self):
        users = generate_users(SMALL)
        assert len(users) == 120
        genders = set(users.column_values("gender"))
        assert genders <= {"M", "F"}
        assert set(users.column_values("occupation")) <= set(OCCUPATIONS)
        assert all(7 <= age <= 73 for age in users.column_values("age"))

    def test_movies_shape(self):
        movies = generate_movies(SMALL)
        assert len(movies) == 150
        assert "genres_adventure" in movies.columns
        # Every movie has at least one genre flag set.
        flag_columns = ["genres_%s" % g for g in GENRES]
        for row in movies.rows:
            flags = [row[movies.column_index(c)] for c in flag_columns]
            assert sum(flags) >= 1

    def test_ratings_in_star_range(self):
        users = generate_users(SMALL)
        movies = generate_movies(SMALL)
        ratings = generate_ratings(SMALL, users, movies)
        assert len(ratings) == 4000
        assert all(1 <= r <= 5 for r in ratings.column_values("rating"))

    def test_ratings_unique_user_movie_pairs(self):
        users = generate_users(SMALL)
        movies = generate_movies(SMALL)
        ratings = generate_ratings(SMALL, users, movies)
        pairs = list(zip(ratings.column_values("user_id"),
                         ratings.column_values("movie_id")))
        assert len(pairs) == len(set(pairs))

    def test_deterministic_given_seed(self):
        first = generate_users(SMALL)
        second = generate_users(SMALL)
        assert first.rows == second.rows

    def test_database_contains_rating_table(self):
        db = build_database(SMALL)
        table = db.get("RatingTable")
        for column in ("agegrp", "decade", "hdec", "rating", "occupation"):
            assert column in table.columns
        assert len(table) == 4000

    def test_planted_structure_visible(self):
        """Young technical men rate old adventure higher than the mid-90s
        crop — the Example 1.1 shape the generator plants."""
        db = build_database(
            MovieLensConfig(n_users=300, n_movies=400, n_ratings=20000, seed=5)
        )
        table = db.get("RatingTable")

        def mean_rating(predicate):
            rows = table.select(predicate)
            ratings = rows.column_values("rating")
            return sum(ratings) / len(ratings)

        young_tech_old = mean_rating(
            lambda r: r["genres_adventure"] == 1
            and r["gender"] == "M"
            and r["age"] < 30
            and r["occupation"] in ("student", "programmer", "engineer")
            and r["hdec"] <= 1985
        )
        anyone_mid90s = mean_rating(
            lambda r: r["genres_adventure"] == 1 and r["hdec"] >= 1995
        )
        assert young_tech_old > anyone_mid90s + 0.5


class TestTpcds:
    def test_store_sales_schema(self):
        relation = generate_store_sales(TpcdsConfig(n_rows=500, seed=3))
        assert relation.columns == STORE_SALES_COLUMNS
        assert len(relation.columns) == 23
        assert len(relation) == 500

    def test_net_profit_varies_with_store(self):
        relation = generate_store_sales(TpcdsConfig(n_rows=4000, seed=3))
        store_idx = relation.column_index("ss_store_sk")
        profit_idx = relation.column_index("ss_net_profit")
        by_store: dict[int, list[float]] = {}
        for row in relation.rows:
            by_store.setdefault(row[store_idx], []).append(row[profit_idx])
        means = sorted(sum(v) / len(v) for v in by_store.values())
        assert means[-1] - means[0] > 1.0  # planted bias is visible

    def test_answer_set_exact_n(self):
        answers = tpcds_answer_set(n_groups=1234, m=5, seed=1)
        assert answers.n == 1234
        assert answers.m == 5

    def test_answer_set_values_integral(self):
        answers = tpcds_answer_set(n_groups=100, m=4, seed=1)
        assert all(float(v).is_integer() for v in answers.values)

    def test_answer_set_capacity_guard(self):
        with pytest.raises(ValueError):
            tpcds_answer_set(n_groups=10_000, m=2, seed=1)


class TestSyntheticAnswerSet:
    def test_exact_size_and_arity(self):
        answers = synthetic_answer_set(321, m=6, domain_size=8, seed=2)
        assert answers.n == 321
        assert answers.m == 6

    def test_values_in_range(self):
        answers = synthetic_answer_set(100, m=4, seed=2)
        assert all(1.0 <= v <= 5.0 for v in answers.values)

    def test_deterministic(self):
        a = synthetic_answer_set(50, m=4, seed=9)
        b = synthetic_answer_set(50, m=4, seed=9)
        assert a.values == b.values

    def test_capacity_guard(self):
        with pytest.raises(ValueError):
            synthetic_answer_set(1000, m=2, domain_size=3)
