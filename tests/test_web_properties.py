"""Property tests for the web tier's two stateful services.

Hypothesis drives :class:`repro.web.quota.QuotaService` (windowed
token-bucket arithmetic, with an injected clock so windows advance
without sleeping) and :class:`repro.web.sessions.SessionService.step`
(merge-override semantics: overrides merge into the base, ``None``
deletes, errors leave the session untouched) against independent
reference models.
"""

from __future__ import annotations

import tempfile
from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import QuotaExceeded
from repro.web.quota import QuotaService
from repro.web.sessions import SessionService, SessionStore

pytestmark = pytest.mark.tier1


# -- quota: windowed refill arithmetic ---------------------------------------


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# Quarter-second ticks keep times exact in binary floating point, so the
# model's window arithmetic (t // window) cannot drift from the service's.
_deltas = st.lists(
    st.integers(min_value=0, max_value=200).map(lambda q: q / 4.0),
    min_size=1, max_size=40,
)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    window=st.integers(min_value=1, max_value=30),
    deltas=_deltas,
)
@settings(max_examples=120, deadline=None)
def test_quota_charges_match_windowed_bucket_model(capacity, window, deltas):
    clock = _FakeClock()
    service = QuotaService(capacity, float(window), clock=clock)
    tokens = capacity
    current_window = 0
    granted = rejected = 0
    for delta in deltas:
        clock.now += delta
        window_index = int(clock.now // window)
        if window_index != current_window:
            # Windowed reset: the bucket snaps back to full.
            current_window = window_index
            tokens = capacity
        assert service.remaining("alice") == tokens
        if tokens >= 1:
            remaining = service.charge("alice", "summary")
            tokens -= 1
            granted += 1
            assert remaining == tokens
        else:
            with pytest.raises(QuotaExceeded):
                service.charge("alice", "summary")
            rejected += 1
            assert service.remaining("alice") == tokens
    stats = service.stats()
    assert stats["granted"] == granted
    assert stats["rejected"] == rejected


@given(
    capacity=st.integers(min_value=2, max_value=12),
    cost=st.integers(min_value=1, max_value=4),
    charges=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_quota_kind_costs_deplete_by_cost(capacity, cost, charges):
    clock = _FakeClock()
    service = QuotaService(
        capacity, 60.0, costs={"summary": cost}, clock=clock
    )
    tokens = capacity
    for _ in range(charges):
        if tokens >= cost:
            assert service.charge("bob", "summary") == tokens - cost
            tokens -= cost
        else:
            with pytest.raises(QuotaExceeded):
                service.charge("bob", "summary")
    # A different kind still costs the default 1 token.
    if tokens >= 1:
        assert service.charge("bob", "explore") == tokens - 1


@given(
    capacity=st.integers(min_value=1, max_value=5),
    window=st.integers(min_value=1, max_value=10),
    users=st.lists(
        st.sampled_from(["u0", "u1", "u2"]), min_size=1, max_size=30
    ),
)
@settings(max_examples=60, deadline=None)
def test_quota_buckets_are_per_user(capacity, window, users):
    clock = _FakeClock()
    service = QuotaService(capacity, float(window), clock=clock)
    model: dict[str, int] = {}
    for user in users:
        tokens = model.get(user, capacity)
        if tokens >= 1:
            service.charge(user)
            model[user] = tokens - 1
        else:
            with pytest.raises(QuotaExceeded):
                service.charge(user)
    for user, tokens in model.items():
        assert service.remaining(user) == tokens


# -- sessions: merge-override semantics --------------------------------------


class _ScriptedDispatcher:
    """Stands in for the real dispatcher: records every dispatched
    request verbatim and fails exactly when the merged request carries
    ``fail=1`` (so Hypothesis controls which steps error)."""

    def __init__(self) -> None:
        self.requests: list[dict] = []

    def dispatch_payload(self, payload: dict) -> SimpleNamespace:
        self.requests.append(dict(payload))
        if payload.get("fail"):
            return SimpleNamespace(response={
                "kind": "error", "error_type": "InvalidParameterError",
                "message": "scripted failure",
            })
        return SimpleNamespace(response={"kind": "summary_response"})


_override_dicts = st.dictionaries(
    keys=st.sampled_from(["k", "L", "D", "mapping", "fail"]),
    values=st.one_of(st.none(), st.integers(min_value=0, max_value=5)),
    max_size=4,
)


@given(
    base_extras=st.dictionaries(
        keys=st.sampled_from(["k", "L", "D"]),
        values=st.integers(min_value=0, max_value=5),
        max_size=3,
    ),
    steps=st.lists(_override_dicts, min_size=1, max_size=12),
)
@settings(max_examples=80, deadline=None)
def test_session_step_merge_override_matches_model(base_extras, steps):
    dispatcher = _ScriptedDispatcher()
    with tempfile.TemporaryDirectory(prefix="repro-prop-sessions-") as root:
        service = SessionService(SessionStore(root), dispatcher)
        base = {"kind": "summary", "dataset": "d", **base_extras}
        service.create("carol", "drill", base)
        model = dict(base)
        successes = 0
        for overrides in steps:
            merged = dict(model)
            for key, value in overrides.items():
                if value is None:
                    merged.pop(key, None)
                else:
                    merged[key] = value
            response = service.step("carol", "drill", overrides)
            # The dispatched request is exactly the merge result.
            assert dispatcher.requests[-1] == merged
            if merged.get("fail"):
                # Error responses leave the session untouched.
                assert response["kind"] == "error"
                assert service.get("carol", "drill").base == model
            else:
                model = merged
                successes += 1
                assert service.get("carol", "drill").base == model
        record = service.get("carol", "drill")
        assert len(record.steps) == successes
        # The persisted record survives a cold reload bit-for-bit.
        reloaded = SessionService(SessionStore(root), dispatcher)
        assert reloaded.get("carol", "drill").base == model
