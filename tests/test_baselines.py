"""Tests for the comparison baselines (Appendix A.5, Section 8)."""

from __future__ import annotations

import pytest

from repro.baselines.disc import disc_exact_minimum, disc_greedy
from repro.baselines.diversified_topk import (
    diversified_topk_exact,
    diversified_topk_greedy,
)
from repro.baselines.kmodes import KModesResult, hamming, kmodes
from repro.baselines.mmr import mmr_select
from repro.baselines.smart_drilldown import drilldown_score, smart_drilldown
from repro.common.errors import InvalidParameterError
from repro.common.interning import STAR
from repro.core.cluster import distance
from tests.conftest import random_answer_set


class TestSmartDrilldown:
    def test_returns_at_most_k_rules(self, small_answers):
        rules = smart_drilldown(small_answers, k=3, restrict_to_top=10)
        assert len(rules) <= 3

    def test_rules_have_positive_marginal_count(self, small_answers):
        for rule in smart_drilldown(small_answers, k=4, restrict_to_top=10):
            assert rule.marginal_count > 0
            assert rule.weight >= 1

    def test_never_emits_all_star_rule(self, small_answers):
        for rule in smart_drilldown(small_answers, k=5):
            assert any(v != STAR for v in rule.pattern)

    def test_greedy_gains_nonincreasing(self, small_answers):
        rules = smart_drilldown(small_answers, k=4, restrict_to_top=12)
        gains = [rule.gain for rule in rules]
        assert gains == sorted(gains, reverse=True)

    def test_count_mode_prefers_prevalent_patterns(self):
        """Without value weighting, smart drill-down picks high-coverage
        rules regardless of value — the Appendix A.5.1 criticism."""
        answers = random_answer_set(n=40, m=4, domain=3, seed=13)
        rules = smart_drilldown(answers, k=1, weighted_by_value=False)
        best = rules[0]
        assert best.marginal_count * best.weight == pytest.approx(best.gain)

    def test_score_is_sum_of_gains(self, small_answers):
        rules = smart_drilldown(small_answers, k=3, restrict_to_top=10)
        assert drilldown_score(rules) == pytest.approx(
            sum(r.gain for r in rules)
        )

    def test_invalid_parameters(self, small_answers):
        with pytest.raises(InvalidParameterError):
            smart_drilldown(small_answers, k=0)
        with pytest.raises(InvalidParameterError):
            smart_drilldown(small_answers, k=2, restrict_to_top=0)


class TestDiversifiedTopk:
    def test_pairwise_distance_constraint(self, small_answers):
        for picker in (diversified_topk_greedy, diversified_topk_exact):
            reps = picker(small_answers, k=4, D=2, L=10)
            for i in range(len(reps)):
                for j in range(i + 1, len(reps)):
                    assert distance(reps[i].element, reps[j].element) >= 2

    def test_exact_at_least_greedy(self, small_answers):
        greedy = diversified_topk_greedy(small_answers, k=4, D=2, L=12)
        exact = diversified_topk_exact(small_answers, k=4, D=2, L=12)
        assert sum(r.score for r in exact) >= sum(
            r.score for r in greedy
        ) - 1e-9

    def test_returns_elements_not_patterns(self, small_answers):
        reps = diversified_topk_greedy(small_answers, k=3, D=1, L=8)
        for rep in reps:
            assert STAR not in rep.element  # no summarization: the critique

    def test_neighbourhood_stats(self, small_answers):
        reps = diversified_topk_greedy(small_answers, k=2, D=3, L=8)
        for rep in reps:
            assert rep.neighbourhood_size >= 1

    def test_exact_size_guard(self, small_answers):
        with pytest.raises(InvalidParameterError):
            diversified_topk_exact(small_answers, k=2, D=1, L=41)


class TestDisc:
    def test_greedy_is_disc_diverse(self, small_answers):
        reps = disc_greedy(small_answers, D=2, L=12)
        elements = [r.element for r in reps]
        # Dissimilarity: no two chosen within distance D.
        for i in range(len(elements)):
            for j in range(i + 1, len(elements)):
                assert distance(elements[i], elements[j]) > 2
        # Coverage: every top-L element within distance D of some chosen.
        for rank in range(12):
            element = small_answers.elements[rank]
            assert any(distance(element, e) <= 2 for e in elements)

    def test_no_size_bound(self, small_answers):
        # DisC has no k: with D=0 every element is its own representative.
        reps = disc_greedy(small_answers, D=0, L=10)
        assert len(reps) == 10

    def test_exact_not_larger_than_greedy(self, tiny_answers):
        greedy = disc_greedy(tiny_answers, D=2, L=8)
        exact = disc_exact_minimum(tiny_answers, D=2, L=8)
        assert len(exact) <= len(greedy)

    def test_exact_size_guard(self, small_answers):
        with pytest.raises(InvalidParameterError):
            disc_exact_minimum(small_answers, D=1, L=17)


class TestMmr:
    def test_lambda_zero_is_topk(self, small_answers):
        picks = mmr_select(small_answers, k=4, lam=0.0, L=10)
        assert [p.rank for p in picks] == [0, 1, 2, 3]

    def test_lambda_one_diversifies(self, paper_example_answers):
        # On Figure 1a-like data the top tuples share most attributes, so
        # pure diversity must look past the plain top-4.
        picks = mmr_select(paper_example_answers, k=4, lam=1.0, L=10)
        ranks = [p.rank for p in picks]
        assert ranks[0] == 0  # ties at the start resolve to the top element
        assert ranks != [0, 1, 2, 3]

    def test_lambda_increases_dispersion(self, small_answers):
        def dispersion(lam):
            picks = mmr_select(small_answers, k=4, lam=lam, L=12)
            elements = [p.element for p in picks]
            return sum(
                distance(a, b)
                for i, a in enumerate(elements)
                for b in elements[i + 1:]
            )

        assert dispersion(1.0) >= dispersion(0.0)

    def test_invalid_lambda(self, small_answers):
        with pytest.raises(InvalidParameterError):
            mmr_select(small_answers, k=2, lam=1.5)

    def test_k_larger_than_scope(self, small_answers):
        picks = mmr_select(small_answers, k=50, lam=0.5, L=5)
        assert len(picks) == 5


class TestKmodes:
    def test_basic_two_cluster_separation(self):
        points = [(0, 0, 0), (0, 0, 1), (5, 5, 5), (5, 5, 4)]
        result = kmodes(points, k=2, seed=0)
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] == result.labels[3]
        assert result.labels[0] != result.labels[2]

    def test_cost_is_total_hamming_to_modes(self):
        points = [(0, 0), (0, 1), (1, 1)]
        result = kmodes(points, k=1, seed=0)
        expected = sum(hamming(p, result.modes[0]) for p in points)
        assert result.cost == expected

    def test_k_equals_n_zero_cost(self):
        points = [(0, 0), (1, 1), (2, 2)]
        result = kmodes(points, k=3, seed=1)
        assert result.cost == 0

    def test_deterministic_given_seed(self):
        points = [(i % 3, i % 5, i % 2) for i in range(20)]
        points = list(dict.fromkeys(points))
        a = kmodes(points, k=3, seed=7)
        b = kmodes(points, k=3, seed=7)
        assert a.labels == b.labels

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            kmodes([], k=1)
        with pytest.raises(InvalidParameterError):
            kmodes([(1,)], k=2)

    def test_result_is_dataclass_with_k(self):
        result = kmodes([(0,), (1,)], k=2, seed=0)
        assert isinstance(result, KModesResult)
        assert result.k == 2
