"""Tests for the service layer: wire format, engine caching, serve loop."""

from __future__ import annotations

import io
import json
import threading
from pathlib import Path

import pytest

from repro.common.errors import InvalidParameterError, SchemaError
from repro.core.answers import AnswerSet
from repro.service import (
    Dispatcher,
    Engine,
    ErrorResponse,
    ExploreRequest,
    GuidanceRequest,
    GuidanceResponse,
    SummaryRequest,
    SummaryResponse,
    parse_request,
    parse_response,
    serve,
)
from repro.service.serve import serve_line
from tests.conftest import paper_like_answers, random_answer_set

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


@pytest.fixture
def engine() -> Engine:
    eng = Engine()
    eng.register_dataset("paper", paper_like_answers())
    return eng


class TestWireRoundTrip:
    def test_summary_request_roundtrip(self):
        request = SummaryRequest(
            dataset="paper", k=3, L=4, D=1, algorithm="bottom-up",
            options={"use_delta": False}, include_elements=True,
        )
        assert SummaryRequest.from_dict(request.to_dict()) == request
        assert SummaryRequest.from_json(request.to_json()) == request

    def test_explore_request_roundtrip(self):
        request = ExploreRequest(
            dataset="paper", k=3, L=4, D=1, k_range=(2, 5), d_values=(1, 2),
        )
        parsed = ExploreRequest.from_json(request.to_json())
        assert parsed == request
        assert isinstance(parsed.k_range, tuple)
        assert isinstance(parsed.d_values, tuple)

    def test_guidance_request_roundtrip(self):
        request = GuidanceRequest(
            dataset="paper", L=4, k_range=(2, 5), d_values=(1, 2),
        )
        assert GuidanceRequest.from_json(request.to_json()) == request

    def test_summary_response_roundtrip(self, engine):
        response = engine.submit(
            SummaryRequest(dataset="paper", k=2, L=4, D=1,
                           include_elements=True)
        )
        parsed = SummaryResponse.from_json(response.to_json())
        assert parsed == response
        assert parsed.total_seconds == pytest.approx(response.total_seconds)

    def test_guidance_response_roundtrip(self, engine):
        response = engine.submit(
            GuidanceRequest(dataset="paper", L=4, k_range=(2, 4),
                            d_values=(1, 2))
        )
        assert GuidanceResponse.from_json(response.to_json()) == response

    def test_error_response_roundtrip(self):
        error = ErrorResponse(error_type="InvalidParameterError",
                              message="k=0 out of range")
        assert ErrorResponse.from_json(error.to_json()) == error

    def test_parse_request_dispatches_by_kind(self):
        payload = SummaryRequest(dataset="paper", k=2).to_dict()
        assert isinstance(parse_request(payload), SummaryRequest)
        payload = GuidanceRequest(
            dataset="paper", L=4, k_range=(2, 4), d_values=(1,)
        ).to_dict()
        assert isinstance(parse_request(payload), GuidanceRequest)

    def test_parse_response_dispatches_by_kind(self, engine):
        payload = engine.submit(
            SummaryRequest(dataset="paper", k=2, L=4, D=1)
        ).to_dict()
        assert isinstance(parse_response(payload), SummaryResponse)

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown request kind"):
            parse_request({"schema_version": 2, "kind": "frobnicate"})

    def test_wrong_schema_version_rejected(self):
        payload = SummaryRequest(dataset="paper", k=2).to_dict()
        payload["schema_version"] = 99
        with pytest.raises(SchemaError, match="schema_version"):
            SummaryRequest.from_dict(payload)

    def test_unknown_keys_rejected(self):
        payload = SummaryRequest(dataset="paper", k=2).to_dict()
        payload["kk"] = 3
        with pytest.raises(SchemaError, match="kk"):
            SummaryRequest.from_dict(payload)

    def test_invalid_json_rejected(self):
        with pytest.raises(SchemaError, match="invalid JSON"):
            SummaryRequest.from_json("{not json")

    def test_wrong_field_types_rejected_at_boundary(self):
        with pytest.raises(SchemaError, match="k must be an integer"):
            SummaryRequest(dataset="paper", k="two")
        with pytest.raises(SchemaError, match="k_range"):
            ExploreRequest(dataset="paper", k=2, L=3, D=0, k_range=5,
                           d_values=(0,))
        with pytest.raises(SchemaError, match="d_values"):
            GuidanceRequest(dataset="paper", L=3, k_range=(1, 2),
                            d_values="1,2")

    def test_missing_required_key_is_schema_error(self):
        with pytest.raises(SchemaError, match="missing required"):
            SummaryRequest.from_dict({"schema_version": 2, "kind": "summary"})
        with pytest.raises(SchemaError, match="missing required"):
            GuidanceRequest.from_dict({
                "schema_version": 2, "kind": "guidance", "dataset": "paper",
            })

    def test_wrong_field_type_over_wire_is_error_payload(self, engine):
        """A type-confused request must not crash the serve loop."""
        response = engine.submit_dict({
            "schema_version": 2, "kind": "summary", "dataset": "paper",
            "k": "two",
        })
        assert response["kind"] == "error"
        assert "integer" in response["message"]


class TestGoldenWireFormat:
    def test_summary_response_matches_golden_file(self, engine):
        """The wire schema is a contract: field names, nesting, and the
        solution content for a fixed request must not drift silently."""
        response = engine.submit(
            SummaryRequest(dataset="paper", k=2, L=4, D=1,
                           algorithm="bottom-up", include_elements=True)
        )
        payload = response.to_dict()
        # Timings are machine-dependent; the golden file pins them to 0.
        for key in ("init_seconds", "algo_seconds", "total_seconds"):
            assert isinstance(payload[key], float)
            payload[key] = 0.0
        for key, value in payload["phase_seconds"].items():
            assert isinstance(value, float)
            payload["phase_seconds"][key] = 0.0
        golden = json.loads(
            (GOLDEN_DIR / "summary_response.json").read_text()
        )
        assert json.loads(json.dumps(payload)) == golden


class TestEngineCaching:
    def test_resubmission_hits_cache(self, engine):
        request = SummaryRequest(dataset="paper", k=2, L=4, D=1)
        cold = engine.submit(request)
        warm = engine.submit(request)
        assert cold.cache_hit is False
        assert warm.cache_hit is True
        assert warm.init_seconds <= cold.init_seconds
        assert warm.init_seconds == 0.0
        assert warm.clusters == cold.clusters
        assert warm.objective == pytest.approx(cold.objective)

    def test_json_resubmission_acceptance(self, engine):
        """The ISSUE acceptance criterion, end to end over the wire."""
        wire = json.loads(
            SummaryRequest(dataset="paper", k=2, L=4, D=1).to_json()
        )
        first = engine.submit_dict(wire)
        second = engine.submit_dict(json.loads(json.dumps(wire)))
        assert first["cache_hit"] is False
        assert second["cache_hit"] is True
        assert second["init_seconds"] < max(first["init_seconds"], 1e-9)
        assert second["clusters"] == first["clusters"]

    def test_pool_shared_across_L_equal_requests(self, engine):
        engine.submit(SummaryRequest(dataset="paper", k=2, L=4, D=1))
        engine.submit(SummaryRequest(dataset="paper", k=3, L=4, D=0))
        stats = engine.stats()
        assert stats.pools.misses == 1
        assert stats.pools.hits == 1

    def test_explore_store_cached_across_requests(self, engine):
        request = ExploreRequest(
            dataset="paper", k=3, L=4, D=1, k_range=(2, 4), d_values=(1, 2),
        )
        cold = engine.submit(request)
        warm = engine.submit(request)
        assert cold.algorithm == "precomputed"
        assert cold.cache_hit is False
        assert warm.cache_hit is True
        assert warm.objective == pytest.approx(cold.objective)

    def test_explore_matches_summary_store_objective(self, engine):
        explore = engine.submit(ExploreRequest(
            dataset="paper", k=3, L=4, D=1, k_range=(2, 4), d_values=(1,),
        ))
        store, _, _ = engine.checkout_store("paper", 4, (2, 4), (1,))
        assert explore.objective == pytest.approx(store.objective(3, 1))

    def test_d_values_order_does_not_split_cache(self, engine):
        first, _, _ = engine.checkout_store("paper", 4, (2, 4), [2, 1])
        second, _, _ = engine.checkout_store("paper", 4, (2, 4), [1, 2, 2])
        assert first is second

    def test_lru_eviction_bounds_pool_cache(self):
        eng = Engine(max_pools=2)
        eng.register_dataset("r", random_answer_set(n=30, m=4, domain=3,
                                                    seed=3))
        for L in (4, 5, 6, 7):
            eng.checkout_pool("r", L)
        stats = eng.stats()
        assert stats.pools.size == 2
        assert stats.pools.evictions == 2

    def test_failed_build_does_not_leak_build_locks(self, engine):
        for L in (100, 200, 300):  # far beyond n=8 -> ClusterPool raises
            with pytest.raises(InvalidParameterError):
                engine.checkout_pool("paper", L)
        assert engine._pools._building == {}

    def test_concurrent_submissions_share_one_build(self, engine):
        request = SummaryRequest(dataset="paper", k=2, L=5, D=1)
        responses = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            responses.append(engine.submit(request))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(responses) == 4
        stats = engine.stats()
        assert stats.pools.misses == 1  # one build, everyone else waited
        objectives = {r.objective for r in responses}
        assert len(objectives) == 1


class TestEngineValidation:
    def test_unknown_dataset(self, engine):
        with pytest.raises(InvalidParameterError, match="unknown dataset"):
            engine.submit(SummaryRequest(dataset="nope", k=2))

    def test_duplicate_dataset_rejected(self, engine):
        with pytest.raises(InvalidParameterError, match="already registered"):
            engine.register_dataset("paper", paper_like_answers())
        engine.register_dataset("paper", paper_like_answers(), replace=True)

    def test_unknown_algorithm_over_the_wire(self, engine):
        response = engine.submit_dict({
            "schema_version": 2, "kind": "summary", "dataset": "paper",
            "k": 2, "algorithm": "nope",
        })
        assert response["kind"] == "error"
        assert response["error_type"] == "InvalidParameterError"
        assert "nope" in response["message"]

    def test_bad_option_over_the_wire(self, engine):
        response = engine.submit_dict({
            "schema_version": 2, "kind": "summary", "dataset": "paper",
            "k": 2, "options": {"bogus": 1},
        })
        assert response["kind"] == "error"
        assert "bogus" in response["message"]

    def test_defaults_k_and_L_resolved(self, engine):
        response = engine.submit(SummaryRequest(dataset="paper"))
        n = paper_like_answers().n
        assert (response.k, response.L) == (n, n)

    def test_guidance_series_match_view(self, engine):
        response = engine.submit(GuidanceRequest(
            dataset="paper", L=4, k_range=(2, 4), d_values=(1, 2),
        ))
        assert {s.D for s in response.series} == {1, 2}
        for series in response.series:
            assert series.k_values == (2, 3, 4)
            assert len(series.averages) == 3


class TestServeLoop:
    def run_lines(self, engine, *payloads: dict) -> list[dict]:
        stdin = io.StringIO(
            "\n".join(json.dumps(p) for p in payloads) + "\n"
        )
        stdout = io.StringIO()
        serve(stdin, stdout, engine=engine)
        return [json.loads(line) for line in stdout.getvalue().splitlines()]

    def test_ping_and_summary_and_stats(self, engine):
        responses = self.run_lines(
            engine,
            {"kind": "ping"},
            {"schema_version": 2, "kind": "summary", "dataset": "paper",
             "k": 2, "L": 4, "D": 1},
            {"kind": "stats"},
        )
        assert [r["kind"] for r in responses] == [
            "pong", "summary_response", "stats"
        ]
        assert responses[2]["requests"] == 1
        assert responses[2]["datasets"] == ["paper"]

    def test_algorithms_introspection(self, engine):
        (response,) = self.run_lines(engine, {"kind": "algorithms"})
        names = {a["name"] for a in response["algorithms"]}
        assert "hybrid" in names
        assert all("kwargs" in a for a in response["algorithms"])

    def test_malformed_line_yields_error_not_crash(self, engine):
        stdin = io.StringIO("this is not json\n"
                            '{"kind": "ping"}\n')
        stdout = io.StringIO()
        serve(stdin, stdout, engine=engine)
        first, second = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert first["kind"] == "error"
        assert second["kind"] == "pong"

    def test_blank_lines_skipped(self, engine):
        responses = self.run_lines(engine, {"kind": "ping"})
        stdin = io.StringIO("\n\n")
        stdout = io.StringIO()
        assert serve(stdin, stdout, engine=engine) == 0
        assert responses[0]["kind"] == "pong"

    def test_load_csv_then_query(self, engine, tmp_path):
        path = tmp_path / "mini.csv"
        path.write_text("era,grp,val\n1970s,student,4.5\n1980s,student,4.0\n"
                        "1990s,writer,2.0\n")
        responses = self.run_lines(
            engine,
            {"kind": "load_csv", "path": str(path)},
            {"schema_version": 2, "kind": "summary", "dataset": "mini",
             "k": 2, "L": 2, "D": 0},
        )
        assert responses[0]["kind"] == "dataset_loaded"
        assert responses[0]["n"] == 3
        assert responses[1]["kind"] == "summary_response"

    def test_load_missing_csv_reports_error(self, engine):
        (response,) = self.run_lines(
            engine, {"kind": "load_csv", "path": "/does/not/exist.csv"}
        )
        assert response["kind"] == "error"

    def test_load_non_numeric_csv_reports_error_and_loop_survives(
        self, engine, tmp_path
    ):
        path = tmp_path / "text.csv"
        path.write_text("era,val\n1970s,high\n")
        responses = self.run_lines(
            engine,
            {"kind": "load_csv", "path": str(path)},
            {"kind": "ping"},
        )
        assert responses[0]["kind"] == "error"
        assert "numeric" in responses[0]["message"]
        assert responses[1]["kind"] == "pong"


class TestServeLoopTermination:
    """The satellite contracts: shutdown kind, clean EOF, hostile input."""

    def run_stream(self, engine, text: str):
        stdout = io.StringIO()
        written = serve(io.StringIO(text), stdout, engine=engine)
        return written, [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]

    def test_shutdown_acks_and_stops_the_loop(self, engine):
        written, responses = self.run_stream(
            engine,
            '{"kind": "ping"}\n'
            '{"kind": "shutdown"}\n'
            '{"kind": "ping"}\n',  # must never be served
        )
        assert written == 2
        assert [r["kind"] for r in responses] == ["pong", "shutdown_ack"]
        assert responses[1]["scope"] == "session"

    def test_shutdown_server_scope_acks_with_scope(self, engine):
        _, responses = self.run_stream(
            engine, '{"kind": "shutdown", "scope": "server"}\n'
        )
        assert responses[0] == {
            "kind": "shutdown_ack", "schema_version": 2, "scope": "server",
        }

    def test_bad_shutdown_scope_is_error_and_loop_survives(self, engine):
        _, responses = self.run_stream(
            engine,
            '{"kind": "shutdown", "scope": "bogus"}\n{"kind": "ping"}\n',
        )
        assert responses[0]["kind"] == "error"
        assert "scope" in responses[0]["message"]
        assert responses[1]["kind"] == "pong"

    def test_eof_terminates_cleanly_without_output(self, engine):
        written, responses = self.run_stream(engine, "")
        assert written == 0
        assert responses == []

    def test_eof_after_requests_is_clean(self, engine):
        written, responses = self.run_stream(engine, '{"kind": "ping"}')
        assert written == 1  # final unterminated line still served
        assert responses[0]["kind"] == "pong"

    def test_oversized_line_rejected_with_line_too_long(self, engine):
        stdout = io.StringIO()
        dispatcher = Dispatcher(engine, max_line_bytes=64)
        serve(
            io.StringIO('{"pad": "%s"}\n{"kind": "ping"}\n' % ("x" * 200)),
            stdout, dispatcher=dispatcher,
        )
        first, second = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert first["kind"] == "error"
        assert first["error_type"] == "LineTooLong"
        assert second["kind"] == "pong"
        assert dispatcher.oversized == 1

    def test_giant_line_discarded_in_chunks_one_error(self, engine):
        """A line many times the limit streams through the bounded reader
        as chunks, yields exactly one LineTooLong, and the loop recovers
        at the next newline — stdio mirrors the TCP framing guarantee."""
        dispatcher = Dispatcher(engine, max_line_bytes=64)
        stdout = io.StringIO()
        serve(
            io.StringIO("x" * 10_000 + '\n{"kind": "ping"}\n'),
            stdout, dispatcher=dispatcher,
        )
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert [r["kind"] for r in responses] == ["error", "pong"]
        assert responses[0]["error_type"] == "LineTooLong"
        assert dispatcher.oversized == 1

    def test_oversized_final_line_at_eof(self, engine):
        dispatcher = Dispatcher(engine, max_line_bytes=64)
        stdout = io.StringIO()
        written = serve(io.StringIO("y" * 500), stdout,
                        dispatcher=dispatcher)
        (response,) = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert written == 1
        assert response["error_type"] == "LineTooLong"

    def test_undecodable_bytes_rejected_with_error_response(self, engine):
        """Bad bytes on a text stream produce an error line, never an
        exception.  (The text decoder discards the rest of its chunk, so
        per-line recovery is a TCP-framing feature — tested in
        test_server.py; stdio just has to fail soft and terminate.)"""
        raw = io.BytesIO(b'\xff\xfe\n{"kind": "ping"}\n')
        stream = io.TextIOWrapper(raw, encoding="utf-8", newline="\n")
        stdout = io.StringIO()
        written = serve(stream, stdout, engine=engine)
        responses = [
            json.loads(line) for line in stdout.getvalue().splitlines()
        ]
        assert written == len(responses) >= 1
        assert responses[0]["kind"] == "error"
        assert "UTF-8" in responses[0]["message"]

    def test_dispatcher_bytes_line_paths(self, engine):
        dispatcher = Dispatcher(engine, max_line_bytes=64)
        oversized = dispatcher.dispatch_line(b"x" * 100)
        assert oversized.response["error_type"] == "LineTooLong"
        undecodable = dispatcher.dispatch_line(b"\xff\xfe")
        assert undecodable.response["error_type"] == "SchemaError"
        pong = dispatcher.dispatch_line(b'{"kind": "ping"}\n')
        assert pong.response["kind"] == "pong"
        assert pong.kind == "ping"
        assert dispatcher.undecodable == 1

    def test_stats_reports_rejection_counters(self, engine):
        dispatcher = Dispatcher(engine, max_line_bytes=64)
        dispatcher.dispatch_line("y" * 100)
        dispatcher.dispatch_line("not json")
        stats = dispatcher.dispatch_line('{"kind": "stats"}').response
        assert stats["rejected"] == {
            "oversized": 1, "undecodable": 0, "malformed": 1,
            "auth": 0, "quota": 0, "deadline": 0, "draining": 0,
        }
        assert "coalesced" in stats["pools"]

    def test_serve_line_compat_wrapper(self, engine):
        assert serve_line(engine, "\n") is None
        assert serve_line(engine, '{"kind": "ping"}')["kind"] == "pong"


class TestSessionEngineSharing:
    def test_two_sessions_share_pools(self):
        from repro.interactive.session import ExplorationSession

        answers = random_answer_set(n=40, m=4, domain=4, seed=11)
        engine = Engine()
        first = ExplorationSession(answers, engine=engine, dataset="shared")
        second = ExplorationSession(answers, engine=engine, dataset="shared")
        assert first.pool(8) is second.pool(8)
        assert engine.stats().pools.misses == 1

    def test_session_rejects_conflicting_dataset(self):
        from repro.interactive.session import ExplorationSession

        engine = Engine()
        ExplorationSession(
            random_answer_set(n=20, m=3, domain=3, seed=1),
            engine=engine, dataset="shared",
        )
        with pytest.raises(ValueError, match="different"):
            ExplorationSession(
                random_answer_set(n=20, m=3, domain=3, seed=2),
                engine=engine, dataset="shared",
            )

    def test_precompute_records_session_init_seconds(self):
        from repro.interactive.session import ExplorationSession

        answers = random_answer_set(n=60, m=4, domain=4, seed=11)
        session = ExplorationSession(answers)
        session.precompute(L=10, k_range=(2, 6), d_values=[1])
        # The pool was built by this session (via precompute), so its init
        # cost must be attributed to it, not reported as 0.
        assert session.init_seconds(10) > 0.0

    def test_session_solve_reports_cache_hit(self):
        from repro.interactive.session import ExplorationSession

        answers = random_answer_set(n=40, m=4, domain=4, seed=11)
        session = ExplorationSession(answers)
        cold = session.solve(k=4, L=8, D=1)
        warm = session.solve(k=3, L=8, D=1)
        assert cold.cache_hit is False
        assert warm.cache_hit is True
        assert warm.init_seconds == 0.0
