"""Tests for the auth layer: token table, failure paths on HTTP and TCP."""

from __future__ import annotations

import pytest

from repro.common.errors import AuthError, SchemaError
from repro.server import BackgroundServer, LineClient, TCPServer
from repro.service import Engine
from repro.web import (
    ANONYMOUS_USER,
    AuthService,
    identify,
    parse_bearer,
    validate_name,
    write_token_file,
)
from tests.conftest import paper_like_answers
from tests.test_web import SUMMARY, http_call, web_server  # noqa: F401


def make_engine() -> Engine:
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    return engine


class TestAuthService:
    def test_authenticate_maps_token_to_user(self):
        auth = AuthService({"tok-a": "alice", "tok-a2": "alice",
                            "tok-b": "bob"})
        assert auth.authenticate("tok-a") == "alice"
        assert auth.authenticate("tok-a2") == "alice"
        assert auth.authenticate("tok-b") == "bob"
        assert auth.users() == ["alice", "bob"]

    def test_missing_token_has_distinct_message(self):
        auth = AuthService({"tok": "alice"})
        with pytest.raises(AuthError, match="missing"):
            auth.authenticate(None)

    def test_unknown_and_revoked_are_indistinguishable(self):
        auth = AuthService({"tok": "alice"})
        with pytest.raises(AuthError) as unknown:
            auth.authenticate("never-existed")
        auth.revoke_token("tok")
        with pytest.raises(AuthError) as revoked:
            auth.authenticate("tok")
        assert str(unknown.value) == str(revoked.value)

    def test_non_string_token_rejected(self):
        auth = AuthService({"tok": "alice"})
        with pytest.raises(AuthError):
            auth.authenticate(12345)

    def test_revoke_user_drops_all_their_tokens(self):
        auth = AuthService({"t1": "alice", "t2": "alice", "t3": "bob"})
        assert auth.revoke_user("alice") == 2
        with pytest.raises(AuthError):
            auth.authenticate("t1")
        assert auth.authenticate("t3") == "bob"

    def test_rejections_counted(self):
        auth = AuthService({"tok": "alice"})
        for bad in (None, "nope", 7):
            with pytest.raises(AuthError):
                auth.authenticate(bad)
        assert auth.stats()["rejected"] == 3

    def test_invalid_user_name_rejected_at_build(self):
        with pytest.raises(SchemaError):
            AuthService({"tok": "../escape"})

    def test_token_file_roundtrip(self, tmp_path):
        path = write_token_file(
            tmp_path / "tokens.txt", [("alice", "tok-a"), ("bob", "tok-b")]
        )
        auth = AuthService.from_file(path)
        assert auth.authenticate("tok-a") == "alice"
        assert auth.authenticate("tok-b") == "bob"

    def test_token_file_rejects_garbage_lines(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("# fine\nalice:tok\nnot-a-pair\n")
        with pytest.raises(SchemaError, match="not-a-pair"):
            AuthService.from_file(path)

    def test_empty_token_file_rejected(self, tmp_path):
        path = tmp_path / "tokens.txt"
        path.write_text("# only comments\n")
        with pytest.raises(SchemaError):
            AuthService.from_file(path)


class TestHelpers:
    def test_identify_open_server_is_anonymous(self):
        assert identify(None, None) == ANONYMOUS_USER
        assert identify(None, "stray-token") == ANONYMOUS_USER

    def test_parse_bearer(self):
        assert parse_bearer("Bearer tok") == "tok"
        assert parse_bearer("bearer tok") == "tok"
        assert parse_bearer("Basic dXNlcg==") is None
        assert parse_bearer("Bearer ") is None
        assert parse_bearer(None) is None

    def test_validate_name(self):
        assert validate_name("alice-1.2_x") == "alice-1.2_x"
        for bad in ("", ".hidden", "a/b", "a b", "x" * 65, None):
            with pytest.raises(SchemaError):
                validate_name(bad)


class TestAuthFailurePathsHTTP:
    @pytest.mark.parametrize("token", [None, "garbage", "tok-revoked"])
    def test_http_401_paths(self, web_server, token):
        auth = AuthService({"tok-a": "alice", "tok-revoked": "mallory"})
        auth.revoke_token("tok-revoked")
        handle = web_server(auth=auth)
        status, payload = http_call(
            handle, "POST", "/v2/summary", dict(SUMMARY), token=token
        )
        assert status == 401
        assert payload["error_type"] == "AuthError"


class TestAuthFailurePathsTCP:
    def test_tcp_auth_envelope_paths(self):
        auth = AuthService({"tok-a": "alice", "tok-revoked": "mallory"})
        auth.revoke_token("tok-revoked")
        server = TCPServer(make_engine(), port=0, auth=auth)
        handle = BackgroundServer(server).start()
        try:
            with LineClient(handle.host, handle.port) as client:
                # ping stays open (liveness probe).
                assert client.request({"kind": "ping"})["kind"] == "pong"
                for bad in (dict(SUMMARY),
                            dict(SUMMARY, auth="garbage"),
                            dict(SUMMARY, auth="tok-revoked")):
                    response = client.request(bad)
                    assert response["kind"] == "error"
                    assert response["error_type"] == "AuthError"
                good = client.request(dict(SUMMARY, auth="tok-a"))
                assert good["kind"] == "summary_response"
                stats = client.request(
                    {"kind": "stats", "auth": "tok-a"}
                )
                assert stats["rejected"]["auth"] == 3
        finally:
            handle.stop()

    def test_open_server_ignores_stray_auth_field(self):
        server = TCPServer(make_engine(), port=0)
        handle = BackgroundServer(server).start()
        try:
            with LineClient(handle.host, handle.port) as client:
                response = client.request(dict(SUMMARY, auth="whatever"))
                assert response["kind"] == "summary_response"
        finally:
            handle.stop()
