"""Tests for the JSON assembly layer (repro.viz.export)."""

from __future__ import annotations

import json

import pytest

from repro.core.problem import summarize
from repro.core.semilattice import ClusterPool
from repro.interactive.guidance import build_guidance_view
from repro.interactive.precompute import SolutionStore
from repro.viz.comparison import build_comparison
from repro.viz.export import (
    comparison_payload,
    guidance_payload,
    solution_payload,
    to_json,
)
from tests.conftest import random_answer_set


@pytest.fixture(scope="module")
def setup():
    answers = random_answer_set(n=50, m=4, domain=4, seed=51)
    solution = summarize(answers, k=4, L=8, D=2)
    return answers, solution


class TestSolutionPayload:
    def test_layers_present(self, setup):
        answers, solution = setup
        payload = solution_payload(solution, answers)
        assert payload["objective"] == pytest.approx(solution.avg)
        assert len(payload["clusters"]) == solution.size
        for entry in payload["clusters"]:
            assert len(entry["members"]) == entry["size"]
            assert all(m["rank"] >= 1 for m in entry["members"])

    def test_members_optional(self, setup):
        answers, solution = setup
        payload = solution_payload(solution, answers, include_members=False)
        assert all("members" not in c for c in payload["clusters"])

    def test_star_rendering(self, setup):
        answers, solution = setup
        payload = solution_payload(solution, answers)
        stars = [
            v
            for cluster in payload["clusters"]
            for v in cluster["pattern"]
            if v == "*"
        ]
        levels = sum(c["level"] for c in payload["clusters"])
        assert len(stars) == levels

    def test_json_round_trip(self, setup):
        answers, solution = setup
        text = to_json(solution_payload(solution, answers), indent=2)
        parsed = json.loads(text)
        assert parsed["covered"] == len(solution.covered)


class TestGuidancePayload:
    def test_series_shape(self):
        answers = random_answer_set(n=60, m=4, domain=4, seed=52)
        pool = ClusterPool(answers, L=8)
        store = SolutionStore(pool, (2, 8), [1, 2])
        payload = guidance_payload(build_guidance_view(store))
        assert payload["L"] == 8
        assert [s["D"] for s in payload["series"]] == [1, 2]
        for series in payload["series"]:
            assert [p["k"] for p in series["points"]] == list(range(2, 9))
        assert sorted(d for b in payload["bundles"] for d in b) == [1, 2]
        json.loads(to_json(payload))


class TestComparisonPayload:
    def test_bands_and_metrics(self):
        answers = random_answer_set(n=60, m=4, domain=4, seed=53)
        old = summarize(answers, k=5, L=8, D=1)
        new = summarize(answers, k=3, L=10, D=1)
        view = build_comparison(old, new, answers, L=10)
        payload = comparison_payload(view)
        assert len(payload["old"]) == old.size
        assert len(payload["new"]) == new.size
        assert payload["metrics"]["matched_distance"] <= payload[
            "metrics"
        ]["default_distance"]
        for band in payload["bands"]:
            assert band["shared"] > 0
        json.loads(to_json(payload))
