"""Chaos tests: fault injection driven through the real serving stack.

Where ``test_resilience.py`` exercises the resilience primitives in
isolation, this suite arms :mod:`repro.common.faults` rules and drives
the *assembled* system — scheduler worker pools, the TCP transport, the
HTTP front door — asserting the failure is contained: workers restart,
poisoned requests are quarantined, injected I/O errors become typed
responses, and no client ever hangs.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.common import faults
from repro.server import (
    BackgroundServer,
    LineClient,
    RetryingClient,
    ShardedScheduler,
    TCPServer,
)
from repro.service import Engine
from repro.service.serve import Dispatcher
from repro.web import AuthService, BackgroundWebServer, WebServer
from tests.conftest import paper_like_answers
from tests.test_web import http_call

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def disarm_faults():
    faults.clear()
    yield
    faults.clear()


def make_engine() -> Engine:
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    return engine


SUMMARY = {
    "schema_version": 2, "kind": "summary", "dataset": "paper",
    "k": 2, "L": 4, "D": 1,
}


# -- worker-crash supervision (satellite d) -----------------------------------


class TestWorkerCrashResilience:
    def test_single_crash_is_retried_and_worker_restarts(self):
        """A fault that kills one shard worker mid-request must not kill
        the request: the dying worker re-enqueues it, the supervisor
        restarts the worker, and the client's future resolves."""
        engine = make_engine()
        scheduler = ShardedScheduler(engine.submit_dict, shards=2)
        try:
            faults.arm("scheduler.worker", "crash", times=1)
            future = scheduler.submit(dict(SUMMARY))
            response = future.result(timeout=10)
            assert response["kind"] == "summary_response"
            # Event-gated: the supervisor notifies the stats condition on
            # restart, so no sleep-polling (and no flake window).
            assert scheduler.wait_stat("worker_restarts", 1, timeout=10)
            stats = scheduler.stats()
            assert stats["worker_restarts"] >= 1
            assert stats["crash_retries"] == 1
            assert stats["poisoned"] == 0
            # The pool keeps serving afterwards.
            assert scheduler.submit(
                {**SUMMARY, "k": 3}
            ).result(timeout=10)["kind"] == "summary_response"
        finally:
            scheduler.stop()

    def test_repeat_crasher_is_quarantined(self):
        """A request that kills every worker it touches gets a typed
        PoisonedRequest answer — after the strike threshold it never
        reaches a worker again."""
        engine = make_engine()
        scheduler = ShardedScheduler(engine.submit_dict, shards=1)
        try:
            faults.arm("scheduler.worker", "crash")  # every dequeue crashes
            future = scheduler.submit(dict(SUMMARY))
            response = future.result(timeout=10)
            assert response["error_type"] == "PoisonedRequest"
            assert "quarantined" in response["message"]
            faults.clear()
            # Quarantine persists after the fault is gone: the same
            # request is answered immediately, without a worker.
            again = scheduler.submit(dict(SUMMARY)).result(timeout=10)
            assert again["error_type"] == "PoisonedRequest"
            # A *different* request is served normally.
            other = scheduler.submit(
                {**SUMMARY, "k": 3}
            ).result(timeout=10)
            assert other["kind"] == "summary_response"
            stats = scheduler.stats()
            assert stats["quarantined"] == 1
            assert stats["poisoned"] == 2
        finally:
            scheduler.stop()

    def test_crash_over_tcp_keeps_serving_no_client_hangs(self):
        """End-to-end worker-crash drill over the wire: one worker dies
        mid-trace, the scheduler keeps serving, and no client hangs."""
        engine = make_engine()
        server = TCPServer(engine, shards=1)
        with BackgroundServer(server) as handle:
            with LineClient(handle.host, handle.port, timeout=15) as client:
                armed = client.request(
                    {"kind": "faults",
                     "arm": "scheduler.worker=crash:1:0:1"}
                )
                assert armed["kind"] == "faults"
                assert len(armed["armed"]) == 1
                response = client.request(dict(SUMMARY))
                assert response["kind"] == "summary_response"
                for k in (2, 3):
                    follow_up = client.request({**SUMMARY, "k": k})
                    assert follow_up["kind"] == "summary_response"
                stats = client.request({"kind": "stats"})
                scheduler = stats["server"]["scheduler"]
                assert scheduler["worker_restarts"] >= 1
                assert scheduler["workers_leaked"] == 0

    def test_stop_counts_healthy_shutdown_as_zero_leaked(self):
        scheduler = ShardedScheduler(make_engine().submit_dict, shards=2)
        scheduler.stop()
        assert scheduler.stats()["workers_leaked"] == 0


# -- injected compute/transport faults ----------------------------------------


class TestInjectedFaults:
    def test_engine_compute_error_is_typed_response(self):
        faults.arm("engine.compute", "error", times=1)
        dispatcher = Dispatcher(make_engine())
        response = dispatcher.dispatch_payload(dict(SUMMARY)).response
        assert response["kind"] == "error"
        assert response["error_type"] == "InjectedFault"
        # The budget is spent: the next request is healthy.
        ok = dispatcher.dispatch_payload(dict(SUMMARY)).response
        assert ok["kind"] == "summary_response"

    def test_engine_latency_fault_slows_but_serves(self):
        faults.arm("engine.compute", "latency", param=50, times=1)
        dispatcher = Dispatcher(make_engine())
        start = time.perf_counter()
        response = dispatcher.dispatch_payload(dict(SUMMARY)).response
        assert time.perf_counter() - start >= 0.045
        assert response["kind"] == "summary_response"

    def test_tcp_write_disconnect_drops_connection_not_server(self):
        engine = make_engine()
        with BackgroundServer(TCPServer(engine)) as handle:
            with LineClient(handle.host, handle.port, timeout=5) as victim:
                # Armed in-process (server shares our process): arming
                # over the wire would reset the arming response itself.
                faults.arm("tcp.write", "disconnect", times=1)
                victim.send(dict(SUMMARY))
                # The injected reset hits this connection's response
                # write: clean EOF or a transport error, never a hang.
                try:
                    assert victim.recv() is None
                except Exception:
                    pass
            with LineClient(handle.host, handle.port, timeout=5) as fresh:
                assert fresh.request({"kind": "ping"})["kind"] == "pong"

    def test_session_write_fault_is_http_500_not_crash(self, tmp_path):
        server = WebServer(
            make_engine(), port=0,
            session_dir=str(tmp_path / "sessions"),
        )
        handle = BackgroundWebServer(server).start()
        try:
            faults.arm("sessions.write", "error", times=1)
            base = {**SUMMARY}
            status, payload = http_call(
                handle, "POST", "/v2/sessions",
                {"name": "chaos", "base": base},
            )
            assert status == 500
            assert payload["error_type"] == "InjectedFault"
            # The store survives: the same create succeeds afterwards.
            status, record = http_call(
                handle, "POST", "/v2/sessions",
                {"name": "chaos", "base": base},
            )
            assert status == 200
            assert record["name"] == "chaos"
        finally:
            handle.stop()


# -- the faults admin kind over the wire --------------------------------------


class TestFaultsAdminKind:
    def test_arm_describe_clear_round_trip(self):
        dispatcher = Dispatcher(make_engine())
        armed = dispatcher.dispatch_payload({
            "kind": "faults",
            "arm": "engine.compute=latency:0.5:20", "seed": 9,
        }).response
        assert armed["kind"] == "faults"
        assert armed["armed"][0]["site"] == "engine.compute"
        listing = dispatcher.dispatch_payload({"kind": "faults"}).response
        assert listing["armed"] == armed["armed"]
        cleared = dispatcher.dispatch_payload(
            {"kind": "faults", "clear": True}
        ).response
        assert cleared["armed"] == []

    def test_malformed_specs_are_schema_errors(self):
        dispatcher = Dispatcher(make_engine())
        bad_arm = dispatcher.dispatch_payload(
            {"kind": "faults", "arm": 7}
        ).response
        assert bad_arm["error_type"] == "SchemaError"
        bad_seed = dispatcher.dispatch_payload(
            {"kind": "faults", "arm": "tcp.write=error", "seed": "x"}
        ).response
        assert bad_seed["error_type"] == "SchemaError"
        bad_site = dispatcher.dispatch_payload(
            {"kind": "faults", "arm": "nope=error"}
        ).response
        assert bad_site["error_type"] == "InvalidParameterError"

    def test_faults_kind_requires_auth_on_secured_server(self):
        dispatcher = Dispatcher(
            make_engine(), auth=AuthService({"tok": "op"})
        )
        denied = dispatcher.dispatch_payload(
            {"kind": "faults", "arm": "engine.compute=error"}
        ).response
        assert denied["error_type"] == "AuthError"
        assert faults.describe() == []
        allowed = dispatcher.dispatch_payload(
            {"kind": "faults", "arm": "engine.compute=error",
             "auth": "tok"}
        ).response
        assert allowed["kind"] == "faults"
        assert len(allowed["armed"]) == 1


# -- retrying client against a chaotic server ---------------------------------


class TestRetryingClientUnderChaos:
    def test_closed_loop_survives_crash_and_latency_faults(self):
        """A short closed loop with worker crashes + latency spikes:
        every request resolves (success or typed error), nothing hangs —
        the miniature of benchmarks/bench_chaos.py."""
        import random

        engine = make_engine()
        server = TCPServer(engine, shards=2)
        with BackgroundServer(server) as handle:
            with LineClient(handle.host, handle.port) as admin:
                admin.request({
                    "kind": "faults", "seed": 13,
                    "arm": ("scheduler.worker=crash:0.2:0:2;"
                            "engine.compute=latency:0.3:20"),
                })
            outcomes: list[str] = []
            lock = threading.Lock()

            def drive(worker_id: int) -> None:
                client = RetryingClient(
                    handle.host, handle.port, timeout=15,
                    attempts=4, base_delay=0.01,
                    rng=random.Random(worker_id),
                )
                with client:
                    for i in range(6):
                        response = client.request(
                            {**SUMMARY, "k": 2 + (i % 3)}
                        )
                        kind = (
                            "ok" if response.get("kind") != "error"
                            else response.get("error_type", "unknown")
                        )
                        with lock:
                            outcomes.append(kind)

            threads = [
                threading.Thread(target=drive, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            hung = [t for t in threads if t.is_alive()]
            assert not hung, "client threads hung under chaos"
            assert len(outcomes) == 24
            typed = {"ok", "PoisonedRequest", "Overloaded"}
            assert set(outcomes) <= typed, outcomes
            assert outcomes.count("ok") >= 12
