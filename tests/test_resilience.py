"""Resilience layer: budgets/deadlines, fault injection, retrying client.

Covers the cooperative-cancellation plumbing end to end — the
:class:`Budget` token itself, the kernel checkpoints it trips, the
``deadline_ms`` envelope field through the dispatcher, queue-expiry
shedding in the scheduler — plus the deterministic fault-injection
module and the client-side story (typed transport errors, retrying
wrapper).  Worker-crash supervision and quarantine live in
``test_chaos.py``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from concurrent.futures import Future

import pytest

from repro.common import faults
from repro.common.budget import (
    Budget,
    budget_scope,
    checkpoint,
    current_budget,
)
from repro.common.errors import (
    DeadlineExceeded,
    InjectedFault,
    InvalidParameterError,
    TransportError,
)
from repro.core.answers import AnswerSet
from repro.core.semilattice import ClusterPool
from repro.server import (
    BackgroundServer,
    LineClient,
    RetryingClient,
    ShardedScheduler,
    TCPServer,
)
from repro.service import Engine
from repro.service.serve import Dispatcher
from tests.conftest import paper_like_answers, zero_timings

pytestmark = pytest.mark.chaos


@pytest.fixture(autouse=True)
def disarm_faults():
    """No fault rule may leak between tests."""
    faults.clear()
    yield
    faults.clear()


def make_engine() -> Engine:
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    return engine


SUMMARY = {
    "schema_version": 2, "kind": "summary", "dataset": "paper",
    "k": 2, "L": 4, "D": 1,
}


# -- Budget -------------------------------------------------------------------


class TestBudget:
    def test_unbounded_budget_never_expires(self):
        budget = Budget(None)
        assert not budget.expired()
        assert budget.remaining_seconds() is None
        budget.checkpoint()  # no raise

    def test_from_deadline_ms_expires(self):
        budget = Budget.from_deadline_ms(5)
        assert not budget.expired()
        time.sleep(0.02)
        assert budget.expired()
        with pytest.raises(DeadlineExceeded, match="5ms"):
            budget.checkpoint()

    def test_from_deadline_ms_rejects_nonpositive(self):
        with pytest.raises(InvalidParameterError):
            Budget.from_deadline_ms(0)
        with pytest.raises(InvalidParameterError):
            Budget.from_deadline_ms(-10)

    def test_cancel_trips_checkpoint_immediately(self):
        budget = Budget(None)
        budget.cancel()
        assert budget.expired()
        assert budget.cancelled
        with pytest.raises(DeadlineExceeded, match="cancelled"):
            budget.checkpoint()

    def test_remaining_seconds_never_negative(self):
        budget = Budget.from_deadline_ms(1)
        time.sleep(0.01)
        assert budget.remaining_seconds() == 0.0

    def test_scope_installs_and_restores(self):
        outer = Budget(None)
        inner = Budget(None)
        assert current_budget() is None
        with budget_scope(outer):
            assert current_budget() is outer
            with budget_scope(inner):
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_scope_none_is_noop(self):
        with budget_scope(None):
            assert current_budget() is None
        checkpoint()  # nothing installed: no raise

    def test_scope_is_thread_local(self):
        budget = Budget(None)
        seen = []
        with budget_scope(budget):
            thread = threading.Thread(
                target=lambda: seen.append(current_budget())
            )
            thread.start()
            thread.join()
        assert seen == [None]

    def test_module_checkpoint_trips_on_expired_scope(self):
        budget = Budget.from_deadline_ms(1)
        time.sleep(0.01)
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                checkpoint()


# -- fault injection ----------------------------------------------------------


class TestFaults:
    def test_disarmed_site_is_noop(self):
        faults.fault_point("engine.compute")  # nothing armed

    def test_unknown_site_or_behavior_rejected(self):
        with pytest.raises(InvalidParameterError):
            faults.arm("not.a.site", "crash")
        with pytest.raises(InvalidParameterError):
            faults.arm("engine.compute", "explode")

    def test_error_behavior_raises_injected_fault(self):
        faults.arm("engine.compute", "error")
        with pytest.raises(InjectedFault):
            faults.fault_point("engine.compute")
        # Other sites stay clean.
        faults.fault_point("scheduler.worker")

    def test_crash_behavior_is_not_an_exception(self):
        faults.arm("scheduler.worker", "crash")
        with pytest.raises(faults.FaultCrash):
            faults.fault_point("scheduler.worker")
        assert not issubclass(faults.FaultCrash, Exception)

    def test_disconnect_behavior(self):
        faults.arm("tcp.write", "disconnect")
        with pytest.raises(ConnectionResetError):
            faults.fault_point("tcp.write")

    def test_latency_behavior_sleeps(self):
        faults.arm("engine.compute", "latency", param=30)
        start = time.perf_counter()
        faults.fault_point("engine.compute")
        assert time.perf_counter() - start >= 0.025

    def test_times_bounds_firings(self):
        rule = faults.arm("engine.compute", "error", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.fault_point("engine.compute")
        faults.fault_point("engine.compute")  # budget spent: no raise
        assert rule.fired == 2

    def test_probability_is_seed_deterministic(self):
        def run(seed: int) -> list[bool]:
            faults.clear()
            faults.set_seed(seed)
            faults.arm("engine.compute", "error", probability=0.5)
            fired = []
            for _ in range(32):
                try:
                    faults.fault_point("engine.compute")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7)) and not all(run(7))

    def test_arm_from_spec_round_trip(self):
        rules = faults.arm_from_spec(
            "scheduler.worker=crash:0.25;engine.compute=latency:1:50:3",
            seed=11,
        )
        assert [(r.site, r.behavior) for r in rules] == [
            ("scheduler.worker", "crash"), ("engine.compute", "latency"),
        ]
        assert rules[1].param == 50.0 and rules[1].times == 3
        described = faults.describe()
        assert {d["site"] for d in described} == {
            "scheduler.worker", "engine.compute",
        }

    def test_arm_from_spec_rejects_garbage(self):
        with pytest.raises(InvalidParameterError):
            faults.arm_from_spec("no-equals-sign")
        with pytest.raises(InvalidParameterError):
            faults.arm_from_spec("engine.compute=error:not-a-number")

    def test_clear_single_site(self):
        faults.arm("engine.compute", "error")
        faults.arm("tcp.write", "disconnect")
        faults.clear("engine.compute")
        faults.fault_point("engine.compute")  # disarmed
        with pytest.raises(ConnectionResetError):
            faults.fault_point("tcp.write")


# -- deadlines through the dispatcher ----------------------------------------


class TestDeadlines:
    def test_huge_deadline_response_matches_undeadlined(self):
        # Fresh engines for each request: both runs are cache-cold, so
        # the responses must be identical field for field.
        plain = Dispatcher(make_engine()).dispatch_payload(
            dict(SUMMARY)
        ).response
        deadlined = Dispatcher(make_engine()).dispatch_payload(
            {**SUMMARY, "deadline_ms": 60_000}
        ).response
        assert zero_timings(deadlined) == zero_timings(plain)

    def test_invalid_deadline_ms_is_schema_error(self):
        dispatcher = Dispatcher(make_engine())
        for bad in (0, -5, "fast", True, [50]):
            response = dispatcher.dispatch_payload(
                {**SUMMARY, "deadline_ms": bad}
            ).response
            assert response["error_type"] == "SchemaError"
            assert "deadline_ms" in response["message"]

    def test_expired_deadline_returns_deadline_exceeded(self):
        engine = make_engine()
        dispatcher = Dispatcher(engine)
        # 0.001ms expires before the engine's entry checkpoint runs.
        response = dispatcher.dispatch_payload(
            {**SUMMARY, "deadline_ms": 0.001}
        ).response
        assert response["kind"] == "error"
        assert response["error_type"] == "DeadlineExceeded"
        assert dispatcher.deadline_exceeded == 1
        stats = dispatcher.dispatch_payload({"kind": "stats"}).response
        assert stats["rejected"]["deadline"] == 1

    def test_default_deadline_applies_without_envelope_field(self):
        dispatcher = Dispatcher(
            make_engine(), default_deadline_ms=0.001
        )
        response = dispatcher.dispatch_payload(dict(SUMMARY)).response
        assert response["error_type"] == "DeadlineExceeded"

    def test_envelope_field_overrides_default(self):
        dispatcher = Dispatcher(
            make_engine(), default_deadline_ms=0.001
        )
        response = dispatcher.dispatch_payload(
            {**SUMMARY, "deadline_ms": 60_000}
        ).response
        assert response["kind"] == "summary_response"

    def test_admin_kinds_ignore_default_deadline(self):
        dispatcher = Dispatcher(
            make_engine(), default_deadline_ms=0.001
        )
        response = dispatcher.dispatch_payload({"kind": "ping"}).response
        assert response["kind"] == "pong"
        stats = dispatcher.dispatch_payload({"kind": "stats"}).response
        assert stats["kind"] == "stats"

    def test_rejects_nonpositive_default(self):
        with pytest.raises(ValueError):
            Dispatcher(make_engine(), default_deadline_ms=0)


# -- deadlines through the scheduler ------------------------------------------


class TestSchedulerDeadlines:
    def test_expired_at_submit_is_shed_without_compute(self):
        calls = []

        def submit(payload):
            calls.append(payload)
            return {"kind": "ok"}

        scheduler = ShardedScheduler(submit, shards=1)
        try:
            budget = Budget.from_deadline_ms(0.001)
            while not budget.expired():
                time.sleep(0.001)
            future = scheduler.submit({"kind": "summary"}, budget=budget)
            response = future.result(timeout=5)
            assert response["error_type"] == "DeadlineExceeded"
            assert calls == []
            assert scheduler.stats()["deadline_shed"] == 1
        finally:
            scheduler.stop()

    def test_expired_while_queued_is_shed_at_dequeue(self):
        release = threading.Event()

        def submit(payload):
            if payload.get("slow"):
                release.wait(5)
            return {"kind": "ok"}

        scheduler = ShardedScheduler(submit, shards=1)
        try:
            blocker = scheduler.submit({"kind": "summary", "slow": True})
            time.sleep(0.05)  # let the worker pick the blocker up
            deadlined = scheduler.submit(
                {"kind": "summary", "x": 1},
                budget=Budget.from_deadline_ms(20),
            )
            time.sleep(0.05)  # deadline passes while queued
            release.set()
            assert blocker.result(timeout=5) == {"kind": "ok"}
            response = deadlined.result(timeout=5)
            assert response["error_type"] == "DeadlineExceeded"
            assert "queued" in response["message"]
            assert scheduler.stats()["deadline_shed"] == 1
        finally:
            scheduler.stop()

    def test_deadlined_requests_bypass_coalescing(self):
        served = []
        lock = threading.Lock()

        def submit(payload):
            with lock:
                served.append(payload)
            return {"kind": "ok"}

        scheduler = ShardedScheduler(submit, shards=1)
        try:
            payload = {"kind": "summary", "dataset": "d"}
            futures = [
                scheduler.submit(
                    dict(payload), budget=Budget.from_deadline_ms(60_000)
                )
                for _ in range(3)
            ]
            assert len({id(f) for f in futures}) == 3
            for future in futures:
                assert future.result(timeout=5) == {"kind": "ok"}
            assert len(served) == 3
        finally:
            scheduler.stop()

    def test_compute_observing_deadline_is_counted(self):
        def submit(payload):
            # Engine-side abort: the kernel checkpoint tripped.
            return {
                "kind": "error", "error_type": "DeadlineExceeded",
                "message": "deadline", "schema_version": 2,
            }

        scheduler = ShardedScheduler(submit, shards=1)
        try:
            future = scheduler.submit(
                {"kind": "summary"}, budget=Budget.from_deadline_ms(60_000)
            )
            assert future.result(timeout=5)["error_type"] == (
                "DeadlineExceeded"
            )
            assert scheduler.stats()["deadline_exceeded"] == 1
        finally:
            scheduler.stop()


# -- cooperative cancellation inside the kernels ------------------------------


class TestKernelCheckpoints:
    def test_pool_build_aborts_on_expired_budget(self):
        answers = AnswerSet(
            list(itertools.product(range(4), repeat=6)),
            [float(i) for i in range(4 ** 6)],
        )
        budget = Budget(None)
        budget.cancel()
        with budget_scope(budget):
            with pytest.raises(DeadlineExceeded):
                ClusterPool(answers, L=answers.n)

    def test_merge_loop_aborts_on_cancel(self):
        engine = make_engine()
        budget = Budget(None)
        budget.cancel()
        with budget_scope(budget):
            response = engine.submit_dict(dict(SUMMARY))
        assert response["error_type"] == "DeadlineExceeded"

    def test_cold_million_row_summary_deadline_overshoot_bounded(self):
        """ISSUE acceptance: deadline_ms=50 against a cold n=10^6 dataset
        answers DeadlineExceeded within 10x the deadline."""
        n = 1_000_000
        elements = list(itertools.product(range(10), repeat=6))
        assert len(elements) == n
        # Values descending in enumeration order: the constructor's sort
        # is O(n) on presorted input, keeping test setup fast.
        values = [float(n - i) for i in range(n)]
        engine = Engine()
        engine.register_dataset("million", AnswerSet(elements, values))
        dispatcher = Dispatcher(engine)
        request = {
            "schema_version": 2, "kind": "summary", "dataset": "million",
            "k": 8, "L": n, "D": 2, "deadline_ms": 50,
        }
        start = time.perf_counter()
        response = dispatcher.dispatch_payload(request).response
        elapsed = time.perf_counter() - start
        assert response["kind"] == "error"
        assert response["error_type"] == "DeadlineExceeded"
        assert elapsed <= 0.5, (
            "overshoot %.3fs exceeds 10x the 50ms deadline" % elapsed
        )
        # The aborted build must not poison the cache: nothing cached.
        assert engine.stats().pools.size == 0


# -- LineClient framing + RetryingClient --------------------------------------


class TestClientResilience:
    def test_recv_timeout_closes_and_raises_typed_error(self):
        engine = make_engine()
        with BackgroundServer(TCPServer(engine)) as handle:
            client = LineClient(handle.host, handle.port, timeout=0.2)
            # A request the server will never answer: no newline sent.
            client.send_raw(b'{"kind": "ping"}')  # unterminated
            with pytest.raises(TransportError, match="receive timeout"):
                client.recv()
            # The connection is poisoned for every later call.
            with pytest.raises(TransportError, match="already failed"):
                client.recv()
            with pytest.raises(TransportError, match="already failed"):
                client.send({"kind": "ping"})

    def test_fresh_connection_recovers_after_timeout(self):
        engine = make_engine()
        with BackgroundServer(TCPServer(engine)) as handle:
            broken = LineClient(handle.host, handle.port, timeout=0.2)
            broken.send_raw(b"{")
            with pytest.raises(TransportError):
                broken.recv()
            with LineClient(handle.host, handle.port) as fresh:
                assert fresh.request({"kind": "ping"})["kind"] == "pong"

    def test_retrying_client_retries_transport_failure(self):
        engine = make_engine()
        with BackgroundServer(TCPServer(engine)) as handle:
            import random

            client = RetryingClient(
                handle.host, handle.port,
                attempts=3, base_delay=0.01, rng=random.Random(0),
            )
            with client:
                # Poison the underlying connection (as a receive timeout
                # would), then request: the wrapper must reconnect.
                client._connected()._mark_broken("a receive timeout")
                assert client.request({"kind": "ping"})["kind"] == "pong"
            assert client.reconnects >= 1

    def test_retrying_client_retries_overloaded_then_returns_last(self):
        import random

        responses = iter([
            {"kind": "error", "error_type": "Overloaded", "message": "full"},
            {"kind": "error", "error_type": "Overloaded", "message": "full"},
            {"kind": "pong"},
        ])
        client = RetryingClient.__new__(RetryingClient)
        client.attempts = 4
        client.base_delay = 0.0
        client.max_delay = 0.0
        client.retry_quota = False
        client._rng = random.Random(0)
        client.retries = 0
        client.reconnects = 0
        client._client = type(
            "Fake", (), {"request": lambda self, payload: next(responses)}
        )()
        assert client.request({"kind": "ping"}) == {"kind": "pong"}
        assert client.retries == 2

    def test_retrying_client_gives_up_with_last_error_response(self):
        import random

        overloaded = {
            "kind": "error", "error_type": "Overloaded", "message": "full",
        }
        client = RetryingClient.__new__(RetryingClient)
        client.attempts = 2
        client.base_delay = 0.0
        client.max_delay = 0.0
        client.retry_quota = False
        client._rng = random.Random(0)
        client.retries = 0
        client.reconnects = 0
        client._client = type(
            "Fake", (), {"request": lambda self, payload: dict(overloaded)}
        )()
        assert client.request({"kind": "ping"}) == overloaded

    def test_retrying_client_does_not_retry_caller_errors(self):
        calls = []

        def fake_request(self, payload):
            calls.append(payload)
            return {
                "kind": "error", "error_type": "SchemaError", "message": "no",
            }

        import random

        client = RetryingClient.__new__(RetryingClient)
        client.attempts = 4
        client.base_delay = 0.0
        client.max_delay = 0.0
        client.retry_quota = False
        client._rng = random.Random(0)
        client.retries = 0
        client.reconnects = 0
        client._client = type("Fake", (), {"request": fake_request})()
        response = client.request({"kind": "summary"})
        assert response["error_type"] == "SchemaError"
        assert len(calls) == 1

    def test_retrying_client_honors_quota_hint(self):
        import random

        sleeps = []
        responses = iter([
            {
                "kind": "error", "error_type": "QuotaExceeded",
                "message": "quota exhausted for user 'u': 1 tokens per 60s "
                "window (request cost 1, 0 left); retry in 0.03s",
            },
            {"kind": "pong"},
        ])
        client = RetryingClient.__new__(RetryingClient)
        client.attempts = 3
        client.base_delay = 10.0  # would sleep forever without the hint
        client.max_delay = 10.0
        client.retry_quota = True
        client._rng = random.Random(0)
        client.retries = 0
        client.reconnects = 0
        client._client = type(
            "Fake", (), {"request": lambda self, payload: next(responses)}
        )()
        original_sleep = time.sleep
        try:
            time.sleep = lambda s: sleeps.append(s)
            assert client.request({"kind": "ping"}) == {"kind": "pong"}
        finally:
            time.sleep = original_sleep
        assert sleeps == [pytest.approx(0.03)]

    def test_attempt_budget_validation(self):
        with pytest.raises(ValueError):
            RetryingClient("h", 1, attempts=0)


# -- deadline over the wire ---------------------------------------------------


class TestDeadlineOverTCP:
    def test_deadline_ms_round_trips_and_stats_count(self):
        engine = make_engine()
        server = TCPServer(engine, shards=1)
        with BackgroundServer(server) as handle:
            with LineClient(handle.host, handle.port) as client:
                ok = client.request(
                    {**SUMMARY, "deadline_ms": 60_000}
                )
                assert ok["kind"] == "summary_response"
                budget = Budget.from_deadline_ms(0.001)
                while not budget.expired():
                    time.sleep(0.001)
                dead = client.request({**SUMMARY, "deadline_ms": 0.001})
                assert dead["error_type"] == "DeadlineExceeded"
                stats = client.request({"kind": "stats"})
                scheduler = stats["server"]["scheduler"]
                assert (
                    scheduler["deadline_shed"]
                    + scheduler["deadline_exceeded"]
                ) >= 1
