"""The docs job: doctests in docs/, intra-repo links, README bench claims.

Three contracts, all CI-enforced:

1. every ``>>>`` example embedded in ``docs/*.md`` runs green under
   ``doctest`` (the examples are the documentation's executable spec);
2. every relative link in ``docs/*.md``, ``README.md``, and
   ``ROADMAP.md`` points at a file that exists — broken intra-repo links
   fail the build;
3. the README's Performance section cites the committed
   ``BENCH_core.json`` numbers verbatim, so prose and measurements
   cannot drift apart silently.
"""

from __future__ import annotations

import doctest
import json
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
LINKED_FILES = DOCS + [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md"]

#: Markdown inline links: [text](target), ignoring images and code spans.
_LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")


@pytest.mark.parametrize("path", DOCS, ids=lambda p: p.name)
def test_docs_doctests_pass(path):
    results = doctest.testfile(
        str(path), module_relative=False, verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert results.failed == 0, "%d doctest failures in %s" % (
        results.failed, path.name
    )
    assert results.attempted > 0, (
        "%s is expected to embed runnable examples" % path.name
    )


@pytest.mark.parametrize("path", LINKED_FILES, ids=lambda p: p.name)
def test_intra_repo_links_resolve(path):
    text = path.read_text()
    broken = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            broken.append(target)
    assert not broken, "broken intra-repo link(s) in %s: %s" % (
        path.name, broken
    )


def _bench_document() -> dict:
    return json.loads((REPO_ROOT / "BENCH_core.json").read_text())


def test_bench_core_is_a_full_run():
    document = _bench_document()
    assert document["smoke"] is False, (
        "BENCH_core.json must be regenerated with a full (non --smoke) run"
    )
    names = {workload["name"] for workload in document["workloads"]}
    assert "rounds_vs_groups" in names
    assert "fig8_kernel_core" in names
    assert "dense_scaling" in names


def test_readme_cites_bench_numbers_verbatim():
    """The README Performance table quotes BENCH_core.json, not folklore."""
    readme = (REPO_ROOT / "README.md").read_text()
    document = _bench_document()
    workloads = {w["name"]: w for w in document["workloads"]}

    kernel = workloads["fig8_kernel_core"]
    seconds = {
        (e["label"], e["kernel"]): e["seconds"] for e in kernel["entries"]
    }
    cited = [
        "%.3f s" % seconds[("bottom-up", "python")],
        "%.3f s" % seconds[("bottom-up", "bitset")],
        "%.1f×" % kernel["speedup"],
        "%.1f×" % workloads["fig8a_init"]["speedup"],
        "%.1f×" % workloads["fig8b_delta"]["speedup"],
    ]
    rounds = workloads["rounds_vs_groups"]
    for L, stats in rounds["argmax_speedups"].items():
        if int(L) >= 100:
            cited.append("%.2f×" % stats["argmax"])
            cited.append("%.1f×" % stats["eval_ratio"])
    scaling = workloads["dense_scaling"]
    scaling_seconds = {
        e["label"]: e["seconds"] for e in scaling["entries"]
    }
    cited.append("%.3f s" % scaling_seconds["n=1000000-bitset"])
    cited.append("%.3f s" % scaling_seconds["n=1000000-dense-numpy"])
    for n_text, ratios in scaling["dense_speedups"].items():
        if int(n_text) >= 100_000:
            cited.append("%.1f×" % ratios["dense-numpy"])
    missing = [number for number in cited if number not in readme]
    assert not missing, (
        "README Performance section is out of date with BENCH_core.json; "
        "missing: %s (regenerate with `PYTHONPATH=src python "
        "benchmarks/run_bench.py` and update the table)" % missing
    )


def test_bench_server_is_a_full_run_and_floors_hold():
    """The committed BENCH_server.json must be a full run that satisfies
    the load harness's own floors: >= 4x throughput over the
    1-worker/no-coalescing baseline, coalescing demonstrably firing, and
    byte-identical stdio/TCP responses for the golden wire requests."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_server_load import THROUGHPUT_RATIO_FLOOR
    finally:
        sys.path.pop(0)
    document = json.loads((REPO_ROOT / "BENCH_server.json").read_text())
    assert document["smoke"] is False, (
        "BENCH_server.json must be regenerated with a full (non --smoke) run"
    )
    assert document["throughput_ratio"] >= THROUGHPUT_RATIO_FLOOR
    assert document["coalesce_hits"] > 0
    assert document["coalesce_hit_rate"] > 0.0
    assert document["transport_parity"]["identical"] is True
    assert document["transport_parity"]["golden_file_matched"] is True
    labels = [s["label"] for s in document["scenarios"]]
    assert labels == ["baseline", "sharded+coalesce"]
    assert document["trace"]["clients"] >= 16


def test_readme_cites_server_bench_numbers_verbatim():
    readme = (REPO_ROOT / "README.md").read_text()
    document = json.loads((REPO_ROOT / "BENCH_server.json").read_text())
    cited = [
        "%.1f×" % document["throughput_ratio"],
        "%.0f%%" % (document["coalesce_hit_rate"] * 100.0),
    ]
    missing = [number for number in cited if number not in readme]
    assert not missing, (
        "README server section is out of date with BENCH_server.json; "
        "missing: %s (regenerate with `PYTHONPATH=src python "
        "benchmarks/bench_server_load.py` and update the text)" % missing
    )


def test_bench_http_is_a_full_run_and_floors_hold():
    """The committed BENCH_http.json must be a full run that satisfies
    the two-tenant harness's own floors: the flooding tenant throttled
    (429s observed), the analyst never throttled, the analyst's
    contended p95 within the ceiling of its solo p95, and byte-identical
    stdio/HTTP responses for the golden wire requests."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_http_load import P95_RATIO_CEILING
    finally:
        sys.path.pop(0)
    document = json.loads((REPO_ROOT / "BENCH_http.json").read_text())
    assert document["smoke"] is False, (
        "BENCH_http.json must be regenerated with a full (non --smoke) run"
    )
    assert document["p95_ratio"] <= P95_RATIO_CEILING
    assert document["attacker_429s"] > 0
    assert document["analyst_429s"] == 0
    assert document["transport_parity"]["identical"] is True
    assert document["transport_parity"]["golden_file_matched"] is True
    labels = [s["label"] for s in document["scenarios"]]
    assert labels == ["solo", "contended"]
    assert document["trace"]["attackers"] >= 8


def test_readme_cites_http_bench_numbers_verbatim():
    readme = (REPO_ROOT / "README.md").read_text()
    document = json.loads((REPO_ROOT / "BENCH_http.json").read_text())
    by_label = {s["label"]: s for s in document["scenarios"]}
    cited = [
        "%.2f×" % document["p95_ratio"],
        "**%d**" % document["attacker_429s"],
        "%.1f ms" % (
            by_label["solo"]["analyst_latency"]["p95_seconds"] * 1000.0
        ),
        "%.1f ms" % (
            by_label["contended"]["analyst_latency"]["p95_seconds"] * 1000.0
        ),
    ]
    missing = [number for number in cited if number not in readme]
    assert not missing, (
        "README HTTP section is out of date with BENCH_http.json; "
        "missing: %s (regenerate with `PYTHONPATH=src python "
        "benchmarks/bench_http_load.py` and update the text)" % missing
    )


def test_bench_chaos_is_a_full_run_and_floors_hold():
    """The committed BENCH_chaos.json must be a full run that satisfies
    the chaos harness's own floors: >= 99% of requests answered (success
    or a correctly-typed wire error) under worker-crash + latency
    faults, zero hung clients, worker supervision demonstrably firing,
    and byte-identical transports with faults disarmed."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_chaos import AVAILABILITY_FLOOR, MIN_WORKER_RESTARTS
    finally:
        sys.path.pop(0)
    document = json.loads((REPO_ROOT / "BENCH_chaos.json").read_text())
    assert document["smoke"] is False, (
        "BENCH_chaos.json must be regenerated with a full (non --smoke) run"
    )
    drill = document["chaos"]
    assert drill["availability"] >= AVAILABILITY_FLOOR
    assert drill["hung_clients"] == 0
    assert drill["outcomes"]["unavailable"] == 0
    assert drill["scheduler"]["worker_restarts"] >= MIN_WORKER_RESTARTS
    assert drill["scheduler"]["workers_leaked"] == 0
    for phase in ("before", "after"):
        parity = document["transport_parity"][phase]
        assert parity["identical"] is True
        assert parity["golden_file_matched"] is True


def test_bench_recovery_is_a_full_run_and_floors_hold():
    """The committed BENCH_recovery.json must be a full run that
    satisfies the kill drill's own floors: every acked append batch
    present after SIGKILL + recovery, bit-identical summaries on all
    three kernels versus an uninterrupted reference, the prober's
    availability over the outage window at or above the floor, and
    byte-identical transports with durability off."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_recovery import AVAILABILITY_FLOOR, IDENTITY_KERNELS
    finally:
        sys.path.pop(0)
    document = json.loads((REPO_ROOT / "BENCH_recovery.json").read_text())
    assert document["smoke"] is False, (
        "BENCH_recovery.json must be regenerated with a full "
        "(non --smoke) run"
    )
    drill = document["drill"]
    assert drill["recovered_batches"] >= drill["acked_batches"]
    assert drill["acked_batches"] >= drill["kill_after_acks"]
    assert drill["identity_mismatches"] == []
    assert drill["identity_requests"] >= 2 * len(IDENTITY_KERNELS)
    assert drill["post_recovery_append_ok"] is True
    assert drill["prober"]["availability"] >= AVAILABILITY_FLOOR
    assert drill["prober"]["hung"] is False
    parity = document["transport_parity"]
    assert parity["identical"] is True
    assert parity["golden_file_matched"] is True


def test_bench_obs_is_a_full_run_and_floor_holds():
    """The committed BENCH_obs.json must be a full run that satisfies
    the overhead harness's own floor: arming end-to-end tracing costs at
    most the p50 ceiling versus the disarmed server on the same load
    trace, every armed request actually landed in the trace ring buffer,
    and the disarmed transports stayed byte-identical to the golden wire
    file."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_obs_overhead import OVERHEAD_P50_CEILING
    finally:
        sys.path.pop(0)
    document = json.loads((REPO_ROOT / "BENCH_obs.json").read_text())
    assert document["smoke"] is False, (
        "BENCH_obs.json must be regenerated with a full (non --smoke) run"
    )
    assert document["p50_ratio"] <= OVERHEAD_P50_CEILING
    assert document["transport_parity"]["identical"] is True
    assert document["transport_parity"]["golden_file_matched"] is True
    best = document["best"]
    assert best["armed"]["traces_recorded"] == (
        best["armed"]["total_requests"]
    )
    assert best["disarmed"]["traces_recorded"] == 0
    for mode in ("disarmed", "armed"):
        assert len(document["legs"][mode]) == document["trace"]["reps"]


def test_readme_cites_obs_bench_numbers_verbatim():
    readme = (REPO_ROOT / "README.md").read_text()
    document = json.loads((REPO_ROOT / "BENCH_obs.json").read_text())
    best = document["best"]
    cited = [
        "%.2f×" % document["p50_ratio"],
        "%.1f ms" % (
            best["disarmed"]["latency"]["p50_seconds"] * 1000.0
        ),
        "%.1f ms" % (
            best["armed"]["latency"]["p50_seconds"] * 1000.0
        ),
    ]
    missing = [number for number in cited if number not in readme]
    assert not missing, (
        "README observability section is out of date with BENCH_obs.json; "
        "missing: %s (regenerate with `PYTHONPATH=src python "
        "benchmarks/bench_obs_overhead.py` and update the text)" % missing
    )


def test_bench_scenarios_is_a_full_run_and_floors_hold():
    """The committed BENCH_scenarios.json must be a full run of the
    declarative scenario matrix satisfying the harness's own floors: all
    three session shapes, at least two dataset sources, an append
    scenario with bit-identical incremental pool maintenance on all
    three kernels, and every per-scenario floor (differential identity,
    error rate, cache rates) re-evaluated here from the committed
    document."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_scenarios import (
            APPEND_SCENARIO_REQUIRED,
            DATASET_SOURCES_FLOOR,
            SCENARIO_COUNT_FLOOR,
            SHAPES_REQUIRED,
        )
    finally:
        sys.path.pop(0)
    from repro.scenarios.report import evaluate_floors

    document = json.loads(
        (REPO_ROOT / "BENCH_scenarios.json").read_text()
    )
    assert document["smoke"] is False, (
        "BENCH_scenarios.json must be regenerated with a full "
        "(non --smoke) run"
    )
    assert document["all_floors_hold"] is True
    assert document["scenario_count"] >= SCENARIO_COUNT_FLOOR
    assert set(document["shapes"]) >= set(SHAPES_REQUIRED)
    assert len(document["dataset_sources"]) >= DATASET_SOURCES_FLOOR
    if APPEND_SCENARIO_REQUIRED:
        assert document["has_append_scenario"] is True
    for scenario in document["scenarios"]:
        # The committed floor verdicts must reproduce from the data.
        assert scenario["floor_violations"] == [], scenario["name"]
        assert evaluate_floors(scenario) == [], scenario["name"]
        assert scenario["differential"]["identical"] is True, (
            scenario["name"]
        )
        assert scenario["errors"]["total"] == 0, scenario["name"]
    append_scenarios = [
        s for s in document["scenarios"] if s["spec"].get("append")
    ]
    assert append_scenarios, "matrix must include an append scenario"
    for scenario in append_scenarios:
        check = scenario["append_check"]
        assert check["identical"] is True, scenario["name"]
        assert set(check["kernels"]) == {"python", "bitset", "dense"}
        assert all(check["kernels"].values()), scenario["name"]


def test_readme_cites_scenario_bench_numbers_verbatim():
    readme = (REPO_ROOT / "README.md").read_text()
    document = json.loads(
        (REPO_ROOT / "BENCH_scenarios.json").read_text()
    )
    by_name = {s["name"]: s for s in document["scenarios"]}
    revisit = by_name["synthetic-revisit"]
    append = by_name["synthetic-append"]
    cited = [
        "%d scenarios" % document["scenario_count"],
        "%.0f%%" % (revisit["cache"]["stores"]["hit_rate"] * 100.0),
        "%d rows" % append["append_check"]["rows_appended"],
        "%d requests" % sum(
            s["requests"] for s in document["scenarios"]
        ),
    ]
    missing = [number for number in cited if number not in readme]
    assert not missing, (
        "README scenario section is out of date with "
        "BENCH_scenarios.json; missing: %s (regenerate with "
        "`PYTHONPATH=src python benchmarks/bench_scenarios.py` and "
        "update the text)" % missing
    )


def test_rounds_vs_groups_floors_hold_in_committed_results():
    """The committed full run must itself satisfy the enforced floors."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from run_bench import (
            HEAP_ARGMAX_PEAK_FLOOR,
            HEAP_ARGMAX_SPEEDUP_FLOOR,
            HEAP_EVAL_RATIO_FLOOR,
        )
    finally:
        sys.path.pop(0)
    rounds = next(
        w for w in _bench_document()["workloads"]
        if w["name"] == "rounds_vs_groups"
    )
    peak = 0.0
    for L, stats in rounds["argmax_speedups"].items():
        if int(L) >= 100:
            assert stats["argmax"] >= HEAP_ARGMAX_SPEEDUP_FLOOR, L
            assert stats["eval_ratio"] >= HEAP_EVAL_RATIO_FLOOR, L
            peak = max(peak, stats["argmax"])
    assert peak >= HEAP_ARGMAX_PEAK_FLOOR


def test_dense_scaling_floors_hold_in_committed_results():
    """The committed full run must satisfy the dense-kernel floors: the
    numpy backend >= 3x bitset at n = 10^6, and the stdlib array
    fallback never below 0.9x bitset at any measured size."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from run_bench import (
            DENSE_FALLBACK_SPEEDUP_FLOOR,
            DENSE_FLOOR_N,
            DENSE_NUMPY_SPEEDUP_FLOOR,
        )
    finally:
        sys.path.pop(0)
    scaling = next(
        w for w in _bench_document()["workloads"]
        if w["name"] == "dense_scaling"
    )
    # The committed run must exercise the vectorized backend and reach
    # the million-row size the floors are defined at.
    assert scaling["params"]["numpy"] is True
    assert DENSE_FLOOR_N in scaling["params"]["sizes"]
    floored = 0
    for n_text, ratios in scaling["dense_speedups"].items():
        assert (
            ratios["dense-fallback"] >= DENSE_FALLBACK_SPEEDUP_FLOOR
        ), n_text
        if int(n_text) >= DENSE_FLOOR_N:
            assert (
                ratios["dense-numpy"] >= DENSE_NUMPY_SPEEDUP_FLOOR
            ), n_text
            floored += 1
    assert floored >= 1
