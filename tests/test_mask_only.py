"""Property tests for mask-only cluster pools.

``mask_only=True`` skips the per-pattern frozenset materialization in all
three coverage-mapping strategies and answers the frozenset API from the
bitmasks on demand.  These tests pin the contract: pools in either mode
are observationally identical — same coverage, same masks, same clusters,
same summaries under both kernels and both argmax modes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.bottom_up import bottom_up
from repro.core.hybrid import hybrid
from repro.core.semilattice import ClusterPool
from tests.conftest import random_answer_set
from tests.test_algorithm_properties import dyadic_instances

STRATEGIES = ("eager", "naive", "lazy")


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_pool_contents_identical(strategy):
    answers = random_answer_set(n=80, m=4, domain=4, seed=11)
    default = ClusterPool(answers, L=12, strategy=strategy)
    masked = ClusterPool(answers, L=12, strategy=strategy, mask_only=True)
    assert sorted(default.patterns()) == sorted(masked.patterns())
    for pattern in default.patterns():
        assert default.coverage(pattern) == masked.coverage(pattern)
        assert default.mask(pattern) == masked.mask(pattern)
        lhs, rhs = default.cluster(pattern), masked.cluster(pattern)
        assert lhs.covered == rhs.covered
        assert lhs.value_sum == rhs.value_sum
        assert lhs.mask == rhs.mask


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_out_of_pool_fallback_identical(strategy):
    answers = random_answer_set(n=40, m=3, domain=4, seed=5)
    default = ClusterPool(answers, L=4, strategy=strategy)
    masked = ClusterPool(answers, L=4, strategy=strategy, mask_only=True)
    # A pattern outside the pool (constructed from a non-top element).
    outside = answers.elements[-1]
    if outside in default:
        pytest.skip("random instance put every element in the pool")
    assert default.coverage(outside) == masked.coverage(outside)
    assert default.cluster(outside).covered == masked.cluster(outside).covered


@settings(max_examples=25, deadline=None)
@given(dyadic_instances())
def test_mask_only_summaries_identical_across_strategies_and_kernels(instance):
    """The acceptance property: mask-only and default pools produce
    identical summaries for every mapping strategy and both kernels."""
    answers, k, L, D = instance
    for strategy in STRATEGIES:
        default = ClusterPool(answers, L=L, strategy=strategy)
        masked = ClusterPool(
            answers, L=L, strategy=strategy, mask_only=True
        )
        for kernel in ("bitset", "python"):
            lhs = bottom_up(default, k, D, kernel=kernel)
            rhs = bottom_up(masked, k, D, kernel=kernel)
            assert lhs.patterns() == rhs.patterns()
            assert lhs.avg == rhs.avg
        lhs = hybrid(default, k, D)
        rhs = hybrid(masked, k, D)
        assert lhs.patterns() == rhs.patterns()


def test_mask_only_skips_frozenset_materialization():
    answers = random_answer_set(n=80, m=4, domain=4, seed=11)
    masked = ClusterPool(answers, L=12, mask_only=True)
    default = ClusterPool(answers, L=12)
    # The memory claim in observable terms: no per-pattern frozensets are
    # held after init, while the mask table is fully populated.
    assert len(masked._coverage) == 0
    assert len(masked._masks) == len(masked)
    assert len(default._coverage) == len(default)
    assert masked.mask_only and not default.mask_only
    assert "mask_only" in repr(masked)


def test_engine_mask_only_responses_identical():
    from repro.service import Engine, SummaryRequest

    answers = random_answer_set(n=60, m=4, domain=4, seed=3)
    request = SummaryRequest(dataset="d", k=4, L=10, D=1)
    default, masked = Engine(), Engine(mask_only=True)
    for engine in (default, masked):
        engine.register_dataset("d", answers)
    lhs = default.submit(request)
    rhs = masked.submit(request)
    assert lhs.objective == rhs.objective
    assert [c.pattern for c in lhs.clusters] == [
        c.pattern for c in rhs.clusters
    ]


def test_problem_instance_threads_mask_only():
    from repro.core.problem import ProblemInstance

    answers = random_answer_set(n=40, m=3, domain=4, seed=5)
    instance = ProblemInstance(answers, k=3, L=6, D=1, mask_only=True)
    assert instance.pool.mask_only
    solution = instance.solve("bottom-up")
    baseline = ProblemInstance(answers, k=3, L=6, D=1).solve("bottom-up")
    assert solution.patterns() == baseline.patterns()
