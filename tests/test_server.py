"""Tests for the server subsystem: scheduler, single-flight, TCP transport."""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.server import (
    BackgroundServer,
    LineClient,
    ShardedScheduler,
    SingleFlight,
    TCPServer,
    request_key,
)
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.service import Engine, serve
from tests.conftest import (
    paper_like_answers,
    random_answer_set,
    zero_timings,
)


def make_engine() -> Engine:
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    engine.register_dataset(
        "other", random_answer_set(n=40, m=4, domain=4, seed=5)
    )
    return engine


SUMMARY = {
    "schema_version": 2, "kind": "summary", "dataset": "paper",
    "k": 2, "L": 4, "D": 1,
}


# -- request_key / SingleFlight ----------------------------------------------


class TestSingleFlight:
    def test_request_key_is_order_insensitive(self):
        a = {"kind": "summary", "dataset": "d", "k": 2}
        b = {"k": 2, "dataset": "d", "kind": "summary"}
        assert request_key(a) == request_key(b)
        assert request_key(a) != request_key({**a, "k": 3})

    def test_leader_then_follower_share_future(self):
        flight = SingleFlight()
        future, leader = flight.begin("k")
        assert leader is True
        same, follower = flight.begin("k")
        assert follower is False
        assert same is future
        flight.finish("k", future, {"ok": 1})
        assert future.result(1) == {"ok": 1}
        stats = flight.stats()
        assert stats == {
            "leaders": 1, "coalesced": 1, "in_flight": 0, "hit_rate": 0.5,
        }

    def test_finish_retires_key_before_resolving(self):
        flight = SingleFlight()
        future, _ = flight.begin("k")
        flight.finish("k", future, "done")
        fresh, leader = flight.begin("k")
        assert leader is True
        assert fresh is not future


# -- ShardedScheduler ---------------------------------------------------------


class TestScheduler:
    def test_coalesces_inflight_duplicates_deterministically(self):
        picked_up = threading.Event()
        release = threading.Event()
        calls = []

        def slow_submit(payload):
            calls.append(payload)
            picked_up.set()
            assert release.wait(10)
            return {"kind": "x", "echo": payload["k"]}

        scheduler = ShardedScheduler(
            slow_submit, shards=1, workers_per_shard=1, queue_depth=4
        )
        try:
            payload = dict(SUMMARY)
            leader = scheduler.submit(payload)
            assert picked_up.wait(10)  # worker is now inside slow_submit
            follower = scheduler.submit(dict(SUMMARY))
            assert follower is leader  # same future, no second queue slot
            release.set()
            assert leader.result(10)["echo"] == SUMMARY["k"]
            assert len(calls) == 1
            stats = scheduler.stats()
            assert stats["singleflight"]["leaders"] == 1
            assert stats["singleflight"]["coalesced"] == 1
        finally:
            release.set()
            scheduler.stop()

    def test_full_queue_sheds_load_with_overloaded(self):
        picked_up = threading.Event()
        release = threading.Event()

        def slow_submit(payload):
            picked_up.set()
            assert release.wait(10)
            return {"kind": "x"}

        scheduler = ShardedScheduler(
            slow_submit, shards=1, workers_per_shard=1, queue_depth=1
        )
        try:
            scheduler.submit({"kind": "summary", "dataset": "a", "k": 1})
            assert picked_up.wait(10)
            # Worker busy; this one occupies the single queue slot.
            queued = scheduler.submit(
                {"kind": "summary", "dataset": "b", "k": 2}
            )
            shed = scheduler.submit(
                {"kind": "summary", "dataset": "c", "k": 3}
            )
            assert shed.done()  # rejected immediately, not queued
            response = shed.result(1)
            assert response["kind"] == "error"
            assert response["error_type"] == "Overloaded"
            assert scheduler.stats()["overloaded"] == 1
            release.set()
            assert queued.result(10)["kind"] == "x"
        finally:
            release.set()
            scheduler.stop()

    def test_coalesce_disabled_runs_every_duplicate(self):
        release = threading.Event()
        calls = []

        def submit(payload):
            calls.append(payload)
            assert release.wait(10)
            return {"kind": "x"}

        scheduler = ShardedScheduler(
            submit, shards=1, workers_per_shard=1, queue_depth=8,
            coalesce=False,
        )
        try:
            first = scheduler.submit(dict(SUMMARY))
            second = scheduler.submit(dict(SUMMARY))
            assert second is not first
            release.set()
            first.result(10), second.result(10)
            assert len(calls) == 2
            assert scheduler.stats()["singleflight"]["leaders"] == 0
        finally:
            release.set()
            scheduler.stop()

    def test_dataset_routing_is_stable(self):
        scheduler = ShardedScheduler(lambda p: p, shards=4)
        try:
            payload = {"kind": "summary", "dataset": "paper"}
            index = scheduler.shard_index(payload)
            assert all(
                scheduler.shard_index(payload) == index for _ in range(10)
            )
            assert scheduler.shard_index({"kind": "stats"}) == 0
        finally:
            scheduler.stop()

    def test_worker_exception_becomes_error_payload(self):
        def boom(payload):
            raise RuntimeError("kaput")

        scheduler = ShardedScheduler(boom, shards=1)
        try:
            response = scheduler.submit(dict(SUMMARY)).result(10)
            assert response["kind"] == "error"
            assert response["error_type"] == "RuntimeError"
        finally:
            scheduler.stop()

    def test_stop_drains_queued_work(self):
        scheduler = ShardedScheduler(
            lambda p: {"kind": "x", "k": p["k"]}, shards=2
        )
        futures = [
            scheduler.submit({"kind": "summary", "dataset": "d%d" % i,
                              "k": i})
            for i in range(8)
        ]
        scheduler.stop()
        assert sorted(f.result(1)["k"] for f in futures) == list(range(8))


# -- metrics ------------------------------------------------------------------


class TestMetrics:
    def test_histogram_quantiles_and_summary(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0
        for seconds in (0.001, 0.001, 0.001, 0.2):
            histogram.observe(seconds)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["max_seconds"] == pytest.approx(0.2)
        assert summary["p50_seconds"] == 0.001
        assert summary["p99_seconds"] >= 0.2

    def test_terminal_bucket_reports_exact_max(self):
        histogram = LatencyHistogram()
        histogram.observe(120.0)
        assert histogram.quantile(0.99) == pytest.approx(120.0)

    def test_server_metrics_snapshot(self):
        metrics = ServerMetrics()
        metrics.incr("responses")
        metrics.incr("responses")
        metrics.observe("summary", 0.01)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["responses"] == 2
        assert snapshot["latency"]["summary"]["count"] == 1

    def test_client_supplied_kinds_cannot_grow_histograms_unboundedly(self):
        """Unknown kinds collapse into one "other" histogram — a hostile
        client inventing kinds must not allocate per-kind state."""
        metrics = ServerMetrics()
        for index in range(100):
            metrics.observe("invented-%d" % index, 0.001)
        metrics.observe("summary", 0.001)
        latency = metrics.snapshot()["latency"]
        assert set(latency) == {"other", "summary"}
        assert latency["other"]["count"] == 100


# -- TCP transport ------------------------------------------------------------


def _threads_of(server: TCPServer) -> set:
    if server.scheduler is None:
        return set()
    return {
        thread
        for shard in server.scheduler._shards
        for thread in shard.threads
    }


@pytest.fixture
def tcp_server():
    handles = []

    def start(engine=None, **kwargs):
        server = TCPServer(engine or make_engine(), port=0, **kwargs)
        handle = BackgroundServer(server).start()
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


class TestTCPServer:
    def test_ping_and_summary(self, tcp_server):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            assert client.request({"kind": "ping"})["kind"] == "pong"
            response = client.request(SUMMARY)
            assert response["kind"] == "summary_response"
            assert response["solution_size"] == 2

    def test_matches_direct_engine_submission(self, tcp_server):
        handle = tcp_server()
        direct = zero_timings(make_engine().submit_dict(dict(SUMMARY)))
        with LineClient(handle.host, handle.port) as client:
            over_wire = zero_timings(client.request(SUMMARY))
        assert over_wire == direct

    def test_pipelined_requests_answered_in_order(self, tcp_server):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(
                b'{"kind": "ping"}\n'
                + json.dumps(SUMMARY).encode() + b"\n"
                + b'{"kind": "datasets"}\n'
            )
            kinds = [client.recv()["kind"] for _ in range(3)]
        assert kinds == ["pong", "summary_response", "datasets"]

    def test_many_concurrent_clients(self, tcp_server):
        handle = tcp_server(shards=2)
        barrier = threading.Barrier(8)
        results = []

        def worker(index):
            dataset = "paper" if index % 2 else "other"
            payload = {"schema_version": 2, "kind": "summary",
                       "dataset": dataset, "k": 2, "L": 4, "D": 1}
            with LineClient(handle.host, handle.port) as client:
                barrier.wait(timeout=10)
                for _ in range(3):
                    results.append(client.request(payload)["kind"])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert results.count("summary_response") == 24

    def test_identical_inflight_requests_coalesce(self, tcp_server):
        engine = make_engine()
        release = threading.Event()
        first_call = threading.Event()

        def gated_submit(payload):
            if not first_call.is_set():
                first_call.set()
                assert release.wait(10)
            return engine.submit_dict(payload)

        handle = tcp_server(engine=engine, shards=1, submit=gated_submit)
        responses = []

        def client_worker():
            with LineClient(handle.host, handle.port) as client:
                responses.append(client.request(SUMMARY))

        threads = [threading.Thread(target=client_worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        assert first_call.wait(10)  # the leader is inside compute
        # Event-gated wait for the three followers to coalesce onto the
        # leader (the flight notifies its condition on every begin()).
        flight = handle.server.scheduler.flight
        assert flight.wait_coalesced(3, timeout=10)
        release.set()
        for thread in threads:
            thread.join(30)
        assert len(responses) == 4
        normalized = {json.dumps(r, sort_keys=True) for r in responses}
        assert len(normalized) == 1  # fan-out: byte-identical responses
        stats = handle.server.scheduler.stats()["singleflight"]
        assert stats["leaders"] == 1
        assert stats["coalesced"] == 3

    def test_oversized_line_rejected_and_connection_survives(
        self, tcp_server
    ):
        handle = tcp_server(max_line_bytes=256)
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(b"x" * 5000 + b"\n")
            response = client.recv()
            assert response["kind"] == "error"
            assert response["error_type"] == "LineTooLong"
            assert client.request({"kind": "ping"})["kind"] == "pong"

    def test_oversized_line_never_buffered_whole(self, tcp_server):
        """A huge line streams through in chunks and still yields one
        error — the discard path, not an accumulate-then-check."""
        handle = tcp_server(max_line_bytes=1024)
        with LineClient(handle.host, handle.port) as client:
            for _ in range(64):  # 1 MiB total, no newline until the end
                client.send_raw(b"y" * 16384)
            client.send_raw(b"\n")
            response = client.recv()
            assert response["error_type"] == "LineTooLong"
            assert client.request({"kind": "ping"})["kind"] == "pong"

    def test_undecodable_bytes_rejected_and_connection_survives(
        self, tcp_server
    ):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(b'\xff\xfe{"kind": "ping"}\n')
            response = client.recv()
            assert response["kind"] == "error"
            assert response["error_type"] == "SchemaError"
            assert "UTF-8" in response["message"]
            assert client.request({"kind": "ping"})["kind"] == "pong"

    def test_malformed_json_rejected_and_connection_survives(
        self, tcp_server
    ):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(b"this is not json\n")
            assert client.recv()["kind"] == "error"
            assert client.request({"kind": "ping"})["kind"] == "pong"

    def test_rejections_counted_in_stats(self, tcp_server):
        handle = tcp_server(max_line_bytes=64)
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(b"z" * 100 + b"\n")
            client.recv()
            client.send_raw(b"\xff\n")
            client.recv()
            client.send_raw(b"{broken\n")
            client.recv()
            stats = client.request({"kind": "stats"})
        assert stats["rejected"] == {
            "oversized": 1, "undecodable": 1, "malformed": 1,
            "auth": 0, "quota": 0, "deadline": 0, "draining": 0,
        }
        assert stats["server"]["scheduler"]["shards"] >= 1

    def test_clean_eof_closes_session(self, tcp_server):
        handle = tcp_server()
        client = LineClient(handle.host, handle.port)
        client.request({"kind": "ping"})
        client.close()  # EOF, no shutdown request
        # The server must survive it and keep serving new connections.
        with LineClient(handle.host, handle.port) as second:
            assert second.request({"kind": "ping"})["kind"] == "pong"

    def test_session_shutdown_acks_then_closes(self, tcp_server):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            ack = client.request({"kind": "shutdown"})
            assert ack == {"kind": "shutdown_ack", "schema_version": 2,
                           "scope": "session"}
            assert client.recv() is None  # server closed its end
        with LineClient(handle.host, handle.port) as second:
            assert second.request({"kind": "ping"})["kind"] == "pong"

    def test_server_shutdown_stops_listening(self, tcp_server):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            ack = client.request({"kind": "shutdown", "scope": "server"})
            assert ack["scope"] == "server"
        assert handle.stop(timeout=10)
        with pytest.raises(OSError):
            socket.create_connection(
                (handle.host, handle.server.bound_port), timeout=0.5
            )

    def test_bind_failure_does_not_leak_worker_threads(self, tcp_server):
        handle = tcp_server()  # occupies a port
        failed = TCPServer(make_engine(), port=handle.port, shards=2)
        background = BackgroundServer(failed)
        with pytest.raises(RuntimeError) as info:
            background.start()
        assert isinstance(info.value.__cause__, OSError)
        # Deterministic gate: join the failed run()'s thread instead of
        # sleeping and hoping its finally-cleanup has finished.
        background._thread.join(timeout=10)
        assert not background._thread.is_alive()
        leaked = [
            thread for thread in threading.enumerate()
            if thread.name.startswith("repro-shard") and thread.is_alive()
            and thread not in _threads_of(handle.server)
        ]
        assert leaked == []

    def test_bad_shutdown_scope_is_error(self, tcp_server):
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            response = client.request({"kind": "shutdown", "scope": "bogus"})
            assert response["kind"] == "error"
            assert client.request({"kind": "ping"})["kind"] == "pong"

    def test_load_csv_over_tcp(self, tcp_server, tmp_path):
        path = tmp_path / "mini.csv"
        path.write_text("era,grp,val\n1970s,student,4.5\n1980s,student,4.0\n"
                        "1990s,writer,2.0\n")
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            loaded = client.request({"kind": "load_csv", "path": str(path)})
            assert loaded["kind"] == "dataset_loaded"
            response = client.request({
                "schema_version": 2, "kind": "summary", "dataset": "mini",
                "k": 2, "L": 2, "D": 0,
            })
            assert response["kind"] == "summary_response"


class TestTransportParity:
    def test_stdio_and_tcp_responses_are_byte_identical(self, tcp_server):
        """Same request lines, same bytes out (timings zeroed), both
        transports — the dispatcher really is transport-agnostic."""
        requests = [
            {"kind": "ping"},
            dict(SUMMARY, include_elements=True, algorithm="bottom-up"),
            {"schema_version": 2, "kind": "explore", "dataset": "paper",
             "k": 3, "L": 4, "D": 1, "k_range": [2, 4], "d_values": [1, 2]},
            {"schema_version": 2, "kind": "guidance", "dataset": "paper",
             "L": 4, "k_range": [2, 4], "d_values": [1]},
            {"kind": "datasets"},
            {"kind": "frobnicate"},
            {"schema_version": 2, "kind": "summary", "dataset": "nope",
             "k": 1},
        ]
        lines = "".join(
            json.dumps(request, sort_keys=True) + "\n" for request in requests
        )
        stdio_out = io.StringIO()
        serve(io.StringIO(lines), stdio_out, engine=make_engine())
        stdio_responses = [
            json.dumps(zero_timings(json.loads(line)), sort_keys=True)
            for line in stdio_out.getvalue().splitlines()
        ]
        handle = tcp_server()
        with LineClient(handle.host, handle.port) as client:
            client.send_raw(lines.encode("utf-8"))
            tcp_responses = [
                json.dumps(zero_timings(client.recv()), sort_keys=True)
                for _ in requests
            ]
        assert stdio_responses == tcp_responses
