"""Tests for concept hierarchies and generalized clusters (Appendix A.6)."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import InvalidParameterError, SchemaError
from repro.core.answers import AnswerSet
from repro.hierarchy.generalized import GeneralizedSpace, star_hierarchy
from repro.hierarchy.range_tree import (
    HierarchyNode,
    HierarchyTree,
    build_date_hierarchy,
    build_range_hierarchy,
)


class TestHierarchyTree:
    def test_leaf_lookup(self):
        tree = build_range_hierarchy([1, 2, 3, 4], fanout=2)
        assert tree.leaf(3).value == 3
        with pytest.raises(InvalidParameterError):
            tree.leaf(99)

    def test_lca_of_siblings_is_parent_range(self):
        tree = build_range_hierarchy([0, 1, 2, 3], fanout=2)
        node = tree.lca_values(0, 1)
        assert "[0, 1]" in node.label

    def test_lca_of_distant_values_is_higher(self):
        tree = build_range_hierarchy(range(16), fanout=2)
        near = tree.lca_values(0, 1)
        far = tree.lca_values(0, 15)
        assert tree.depth_of(near) > tree.depth_of(far)
        assert far is tree.root

    def test_lca_of_leaf_with_itself(self):
        tree = build_range_hierarchy([5, 6, 7])
        leaf = tree.leaf(6)
        assert tree.lca(leaf, leaf) is leaf

    def test_lca_matches_naive_on_random_pairs(self):
        tree = build_range_hierarchy(range(40), fanout=3)
        rng = random.Random(5)
        for _ in range(100):
            a = tree.leaf(rng.randrange(40))
            b = tree.leaf(rng.randrange(40))
            assert tree.lca(a, b) is tree.lca_naive(a, b)

    def test_lca_with_internal_nodes(self):
        tree = build_range_hierarchy(range(8), fanout=2)
        internal = tree.lca_values(0, 1)
        leaf = tree.leaf(7)
        joined = tree.lca(internal, leaf)
        assert joined is tree.root

    def test_is_ancestor(self):
        tree = build_range_hierarchy(range(8), fanout=2)
        assert tree.is_ancestor(tree.root, tree.leaf(3))
        assert tree.is_ancestor(tree.leaf(3), tree.leaf(3))
        assert not tree.is_ancestor(tree.leaf(3), tree.leaf(4))

    def test_leaves_under(self):
        tree = build_range_hierarchy(range(8), fanout=2)
        node = tree.lca_values(4, 5)
        assert sorted(tree.leaves_under(node)) == [4, 5]

    def test_paper_figure11_example(self):
        # Join of the [20, 40) range and the value 55 lands in [20, 60)-ish:
        # with our balanced builder the exact ranges differ, but the LCA of
        # 20 and 55 must strictly contain both.
        tree = build_range_hierarchy(range(0, 80, 5), fanout=2, attribute="age")
        node = tree.lca_values(20, 55)
        values = set(tree.leaves_under(node))
        assert {20, 55} <= values

    def test_duplicate_leaf_value_rejected(self):
        root = HierarchyNode("root")
        root.add(HierarchyNode("a", value=1))
        root.add(HierarchyNode("b", value=1))
        with pytest.raises(InvalidParameterError):
            HierarchyTree(root)

    def test_leaf_without_value_rejected(self):
        root = HierarchyNode("root")
        root.add(HierarchyNode("empty-leaf"))
        with pytest.raises(InvalidParameterError):
            HierarchyTree(root)


class TestDateHierarchy:
    def test_same_half_decade(self):
        tree = build_date_hierarchy(range(1970, 2000))
        assert tree.lca_values(1991, 1993).label == "1990-1994"

    def test_same_decade_different_half(self):
        tree = build_date_hierarchy(range(1970, 2000))
        assert tree.lca_values(1991, 1997).label == "1990s"

    def test_different_decades(self):
        tree = build_date_hierarchy(range(1970, 2000))
        assert tree.lca_values(1975, 1995).label == "all years"


class TestGeneralizedSpace:
    @pytest.fixture
    def space(self):
        rows = [
            (13, "M"), (25, "M"), (27, "F"), (44, "M"),
            (61, "F"), (33, "M"), (52, "F"), (19, "F"),
        ]
        values = [4.5, 4.2, 4.0, 3.0, 2.0, 3.5, 2.5, 4.4]
        answers = AnswerSet.from_rows(rows, values, attributes=("age", "gender"))
        hierarchies = [
            build_range_hierarchy(sorted({r[0] for r in rows}), fanout=2,
                                  attribute="age"),
            star_hierarchy([r[1] for r in rows], attribute="gender"),
        ]
        return GeneralizedSpace(answers, hierarchies)

    def test_singleton_coverage(self, space):
        cluster = space.singleton(0)
        assert space.coverage(cluster) == [0]

    def test_root_covers_everything(self, space):
        assert space.coverage(space.root_cluster()) == list(range(8))

    def test_lca_covers_both_singletons(self, space):
        a, b = space.singleton(0), space.singleton(3)
        joined = space.lca(a, b)
        assert space.covers(joined, a)
        assert space.covers(joined, b)

    def test_distance_zero_only_for_equal_leaves(self, space):
        a = space.singleton(0)
        assert space.distance(a, a) == 0
        assert space.distance(a, space.singleton(1)) >= 1
        assert space.distance(space.root_cluster(), space.root_cluster()) == 2

    def test_avg(self, space):
        assert space.avg(space.root_cluster()) == pytest.approx(
            space.answers.avg_all()
        )

    def test_summarize_feasible(self, space):
        clusters = space.summarize(k=3, L=4, D=1)
        assert len(clusters) <= 3
        covered = set()
        for cluster in clusters:
            covered.update(space.coverage(cluster))
        assert set(range(4)) <= covered
        for i, a in enumerate(clusters):
            for b in clusters[i + 1:]:
                assert space.distance(a, b) >= 1
                assert not space.covers(a, b)
                assert not space.covers(b, a)

    def test_summarize_produces_range_labels(self, space):
        clusters = space.summarize(k=2, L=4, D=1)
        labels = [" ".join(c.labels()) for c in clusters]
        assert any("[" in label or "*" in label for label in labels)

    def test_hierarchy_count_mismatch_rejected(self, space):
        with pytest.raises(SchemaError):
            GeneralizedSpace(space.answers, space.hierarchies[:1])

    def test_missing_domain_value_rejected(self):
        answers = AnswerSet.from_rows([(1,), (2,)], [1.0, 2.0],
                                      attributes=("x",))
        bad_hierarchy = build_range_hierarchy([1], attribute="x")
        with pytest.raises(SchemaError):
            GeneralizedSpace(answers, [bad_hierarchy])
