"""Property tests: WAL recovery under arbitrary truncation/corruption.

The deterministic suite (``test_durability.py``) pins hand-picked torn
tails; here hypothesis drives the crash point.  The properties that must
hold for *every* cut offset and every single-byte corruption:

* recovery never raises — a mangled WAL yields a shorter history, not a
  failed boot;
* what is recovered is exactly the longest valid record *prefix*: every
  record wholly before the damage, nothing at or after it;
* the recovered engine is bit-identical to a reference engine that was
  handed the same prefix of appends through the normal live path;
* ``wal_truncated`` counts the repair if and only if the damage left
  trailing bytes (a cut exactly on a record boundary is a clean log).
"""

from __future__ import annotations

import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.durability import DurabilityManager, scan
from repro.durability.snapshot import snapshot_document
from repro.durability.wal import encode_record
from repro.service import Engine
from tests.conftest import paper_like_answers


def _build_wal(tmp: str, n_batches: int) -> tuple[str, list[int]]:
    """A sealed data dir with *n_batches* appends; returns the WAL path
    and the byte offsets of its record boundaries (0 ... EOF)."""
    manager = DurabilityManager(tmp)
    engine = Engine(durability=manager)
    engine.register_dataset("paper", paper_like_answers())
    for index in range(n_batches):
        engine.append_rows(
            "paper", [("b%d" % index, "g%d" % index)], [float(index)]
        )
    manager.seal()
    wal_path = manager.wal_path("paper")
    boundaries = [0]
    for payload in scan(wal_path)[0]:
        # encode_record is deterministic (sorted keys, fixed separators),
        # so re-encoding reproduces the on-disk framing byte-for-byte.
        boundaries.append(boundaries[-1] + len(encode_record(payload)))
    assert boundaries[-1] == os.path.getsize(wal_path)
    return wal_path, boundaries


def _reference_engine(intact_batches: int) -> Engine:
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    for index in range(intact_batches):
        engine.append_rows(
            "paper", [("b%d" % index, "g%d" % index)], [float(index)]
        )
    return engine


def _recover(tmp: str) -> tuple[DurabilityManager, Engine, dict]:
    manager = DurabilityManager(tmp)
    engine = Engine(durability=manager)
    summary = manager.recover(engine)
    return manager, engine, summary


@given(n_batches=st.integers(1, 8), data=st.data())
@settings(max_examples=40, deadline=None)
def test_truncation_at_any_offset_recovers_longest_prefix(n_batches, data):
    with tempfile.TemporaryDirectory() as tmp:
        wal_path, boundaries = _build_wal(tmp, n_batches)
        cut = data.draw(
            st.integers(0, boundaries[-1] - 1), label="cut_offset"
        )
        with open(wal_path, "r+b") as handle:
            handle.truncate(cut)

        intact = sum(1 for b in boundaries[1:] if b <= cut)
        manager, engine, summary = _recover(tmp)

        assert summary["datasets"][0]["records"] == intact
        assert engine.dataset("paper").n == 8 + intact
        # A cut exactly on a record boundary leaves a clean (shorter)
        # log; anywhere else leaves a torn tail that must be repaired
        # and counted.
        assert manager.wal_truncated == (0 if cut in boundaries else 1)
        payloads, valid_bytes, torn = scan(wal_path)
        assert torn is False and len(payloads) == intact
        assert snapshot_document(
            "paper", engine.dataset("paper"), 0
        ) == snapshot_document(
            "paper", _reference_engine(intact).dataset("paper"), 0
        )


@given(n_batches=st.integers(1, 8), data=st.data())
@settings(max_examples=40, deadline=None)
def test_single_byte_corruption_keeps_records_before_it(n_batches, data):
    with tempfile.TemporaryDirectory() as tmp:
        wal_path, boundaries = _build_wal(tmp, n_batches)
        position = data.draw(
            st.integers(0, boundaries[-1] - 1), label="corrupt_offset"
        )
        blob = bytearray(open(wal_path, "rb").read())
        blob[position] ^= 0xFF  # guaranteed change; CRC/frame must catch it
        with open(wal_path, "wb") as handle:
            handle.write(bytes(blob))

        # The record containing the flipped byte (and everything after
        # it) is unrecoverable; everything before it must survive.
        intact = sum(1 for b in boundaries[1:] if b <= position)
        manager, engine, summary = _recover(tmp)

        assert summary["datasets"][0]["records"] == intact
        assert engine.dataset("paper").n == 8 + intact
        assert manager.wal_truncated == 1
        payloads, valid_bytes, torn = scan(wal_path)
        assert torn is False and valid_bytes == boundaries[intact]
        assert snapshot_document(
            "paper", engine.dataset("paper"), 0
        ) == snapshot_document(
            "paper", _reference_engine(intact).dataset("paper"), 0
        )


@given(junk=st.binary(min_size=1, max_size=64))
@settings(max_examples=40, deadline=None)
def test_pure_garbage_wal_recovers_the_snapshot(junk):
    with tempfile.TemporaryDirectory() as tmp:
        wal_path, _ = _build_wal(tmp, 0)
        with open(wal_path, "wb") as handle:
            handle.write(junk)
        manager, engine, summary = _recover(tmp)
        assert engine.dataset("paper").n == 8
        assert summary["datasets"][0]["records"] == 0
        assert manager.wal_truncated == 1
        assert os.path.getsize(wal_path) == 0
