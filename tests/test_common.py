"""Tests for the shared utilities (errors, timing)."""

from __future__ import annotations

import time

import pytest

from repro.common.errors import (
    InfeasibleError,
    InvalidParameterError,
    QueryError,
    ReproError,
    SchemaError,
)
from repro.common.timing import Stopwatch, timed


class TestErrors:
    def test_hierarchy(self):
        for error in (
            InvalidParameterError, InfeasibleError, SchemaError, QueryError
        ):
            assert issubclass(error, ReproError)

    def test_value_error_compatibility(self):
        # Parameter/schema/query errors double as ValueError so callers can
        # use standard idioms.
        assert issubclass(InvalidParameterError, ValueError)
        assert issubclass(SchemaError, ValueError)
        assert issubclass(QueryError, ValueError)


class TestStopwatch:
    def test_phases_accumulate(self):
        watch = Stopwatch()
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("a"):
            time.sleep(0.01)
        with watch.phase("b"):
            pass
        assert watch.seconds("a") >= 0.02
        assert watch.seconds("b") >= 0.0
        assert set(watch.totals()) == {"a", "b"}

    def test_unknown_phase_is_zero(self):
        assert Stopwatch().seconds("never") == 0.0

    def test_reset(self):
        watch = Stopwatch()
        with watch.phase("a"):
            pass
        watch.reset()
        assert watch.totals() == {}

    def test_phase_records_on_exception(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            with watch.phase("x"):
                raise RuntimeError("boom")
        assert watch.seconds("x") >= 0.0


def test_timed_returns_result_and_elapsed():
    result, elapsed = timed(lambda: 41 + 1)
    assert result == 42
    assert elapsed >= 0.0
