"""Tests for the from-scratch CART and the Section 8 tree summarizer."""

from __future__ import annotations

import pytest

from repro.baselines.decision_tree import (
    Condition,
    DecisionTreeClassifier,
    positive_leaf_patterns,
    tune_tree,
)
from repro.common.errors import InvalidParameterError
from tests.conftest import random_answer_set


class TestCondition:
    def test_equality_match(self):
        condition = Condition(1, "==", 5)
        assert condition.matches((0, 5, 9))
        assert not condition.matches((0, 4, 9))

    def test_negation_match(self):
        condition = Condition(0, "!=", 2)
        assert condition.matches((3, 0))
        assert not condition.matches((2, 0))


class TestClassifier:
    def test_perfectly_separable(self):
        X = [(0, 0), (0, 1), (1, 0), (1, 1)]
        y = [True, True, False, False]
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert all(tree.predict(x) == label for x, label in zip(X, y))

    def test_pure_labels_make_single_leaf(self):
        X = [(0, 0), (1, 1), (2, 2)]
        tree = DecisionTreeClassifier(max_depth=3).fit(X, [True] * 3)
        assert tree.depth() == 0
        assert len(tree.leaves()) == 1

    def test_depth_respected(self):
        X = [(i % 2, i % 3, i % 5) for i in range(30)]
        y = [i % 7 < 3 for i in range(30)]
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_leaf_paths_partition_data(self):
        X = [(i % 2, (i // 2) % 2) for i in range(16)]
        y = [i < 8 for i in range(16)]
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        counts = sum(len(indices) for _, indices in tree.leaves())
        assert counts == len(X)

    def test_path_conditions_route_their_members(self):
        X = [(i % 3, i % 4) for i in range(12)]
        y = [i % 2 == 0 for i in range(12)]
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        for path, indices in tree.leaves():
            for index in indices:
                assert all(c.matches(X[index]) for c in path)

    def test_unfitted_predict_raises(self):
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier().predict((0,))

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier(max_depth=0)
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier().fit([], [])
        with pytest.raises(InvalidParameterError):
            DecisionTreeClassifier().fit([(1,)], [True, False])


class TestSummarizer:
    def test_tuned_tree_positive_leaves_at_most_k(self):
        answers = random_answer_set(n=120, m=5, domain=4, seed=17)
        for k in (3, 5, 10):
            _, patterns = tune_tree(answers, L=20, k=k)
            assert len(patterns) <= k

    def test_patterns_are_top_majority(self):
        answers = random_answer_set(n=120, m=5, domain=4, seed=17)
        _, patterns = tune_tree(answers, L=20, k=8)
        for pattern in patterns:
            assert pattern.positive_count > pattern.negative_count

    def test_pattern_matches_align_with_membership(self):
        answers = random_answer_set(n=80, m=4, domain=4, seed=19)
        tree, patterns = tune_tree(answers, L=15, k=6)
        for pattern in patterns:
            members = [
                rank
                for rank in range(answers.n)
                if pattern.matches(answers.elements[rank])
            ]
            assert pattern.positive_count == sum(1 for r in members if r < 15)

    def test_complexity_counts_negations_double(self):
        answers = random_answer_set(n=80, m=4, domain=4, seed=19)
        _, patterns = tune_tree(answers, L=15, k=6)
        for pattern in patterns:
            eq = sum(1 for c in pattern.conditions if c.operator == "==")
            ne = sum(1 for c in pattern.conditions if c.operator == "!=")
            assert pattern.complexity == eq + 2 * ne

    def test_describe_uses_attribute_names(self):
        answers = random_answer_set(n=60, m=4, domain=3, seed=23)
        _, patterns = tune_tree(answers, L=10, k=5)
        assert patterns, "expected at least one positive leaf"
        text = patterns[0].describe(answers)
        assert "A1" in text or "A2" in text or "A3" in text or "A4" in text

    def test_invalid_L(self):
        answers = random_answer_set(n=30, m=4, domain=3, seed=23)
        with pytest.raises(InvalidParameterError):
            tune_tree(answers, L=0, k=3)
