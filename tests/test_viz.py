"""Tests for the comparison visualization (Appendix A.7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import InvalidParameterError
from repro.core.semilattice import ClusterPool
from repro.core.hybrid import hybrid
from repro.viz.comparison import build_comparison, overlap_matrix
from repro.viz.placement import (
    brute_force_ordering,
    count_crossings,
    default_ordering,
    optimal_ordering,
    position_cost_matrix,
    total_distance,
)
from tests.conftest import random_answer_set


class TestPlacementObjective:
    def test_total_distance_definition(self):
        overlap = [[2, 0], [0, 3]]
        # Identity orderings: both bands are horizontal -> distance 0.
        assert total_distance(overlap, [0, 1], [0, 1]) == 0
        # Swapping the right side: band weights times displacement 1.
        assert total_distance(overlap, [0, 1], [1, 0]) == 5

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            total_distance([], [0], [0])
        with pytest.raises(InvalidParameterError):
            total_distance([[1, 2], [3]], [0, 1], [0, 1])
        with pytest.raises(InvalidParameterError):
            total_distance([[1]], [1], [0])
        with pytest.raises(InvalidParameterError):
            total_distance([[1]], [0], [1])

    def test_cost_matrix_columns(self):
        overlap = [[4]]
        cost = position_cost_matrix(overlap, [0])
        assert cost.shape == (1, 1)
        assert cost[0][0] == 0


class TestOptimalOrdering:
    def test_matches_brute_force_small(self):
        overlap = [[3, 0, 1], [0, 2, 0], [1, 1, 4]]
        pa = [0, 1, 2]
        optimal = optimal_ordering(overlap, pa)
        brute = brute_force_ordering(overlap, pa)
        assert total_distance(overlap, pa, optimal) == total_distance(
            overlap, pa, brute
        )

    def test_never_worse_than_default(self):
        overlap = [[0, 5], [4, 0]]
        pa = [0, 1]
        optimal = optimal_ordering(overlap, pa)
        assert total_distance(overlap, pa, optimal) <= total_distance(
            overlap, pa, default_ordering(2)
        )

    def test_brute_force_size_guard(self):
        overlap = [[1] * 11 for _ in range(11)]
        with pytest.raises(InvalidParameterError):
            brute_force_ordering(overlap, list(range(11)))


@settings(max_examples=40, deadline=None)
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=5),
    st.data(),
)
def test_hungarian_is_optimal_property(n_old, n_new, data):
    overlap = [
        [
            data.draw(st.integers(min_value=0, max_value=6))
            for _ in range(n_new)
        ]
        for _ in range(n_old)
    ]
    pa = data.draw(st.permutations(list(range(n_old))))
    optimal = optimal_ordering(overlap, pa)
    brute = brute_force_ordering(overlap, pa)
    assert total_distance(overlap, pa, optimal) == total_distance(
        overlap, pa, brute
    )


class TestCrossings:
    def test_no_crossings_on_identity_diagonal(self):
        overlap = [[1, 0], [0, 1]]
        assert count_crossings(overlap, [0, 1], [0, 1]) == 0

    def test_cross_pair_detected(self):
        overlap = [[0, 1], [1, 0]]
        assert count_crossings(overlap, [0, 1], [0, 1]) == 1
        assert count_crossings(overlap, [0, 1], [1, 0]) == 0

    def test_shared_endpoint_does_not_cross(self):
        overlap = [[1, 1]]
        assert count_crossings(overlap, [0], [0, 1]) == 0


class TestComparisonView:
    @pytest.fixture(scope="class")
    def comparison(self):
        answers = random_answer_set(n=60, m=4, domain=4, seed=12)
        pool = ClusterPool(answers, L=10)
        old = hybrid(pool, 6, 2)
        new = hybrid(pool, 3, 2)
        return answers, old, new, build_comparison(old, new, answers, L=10)

    def test_overlap_matrix_shape(self, comparison):
        answers, old, new, view = comparison
        matrix = overlap_matrix(old, new)
        assert len(matrix) == old.size
        assert all(len(row) == new.size for row in matrix)

    def test_overlap_counts_shared_tuples(self, comparison):
        answers, old, new, view = comparison
        for i, c_old in enumerate(old.clusters):
            for j, c_new in enumerate(new.clusters):
                assert view.overlap[i][j] == len(
                    c_old.covered & c_new.covered
                )

    def test_bands_match_positive_overlaps(self, comparison):
        answers, old, new, view = comparison
        band_keys = {(b.old_index, b.new_index) for b in view.bands}
        expected = {
            (i, j)
            for i in range(old.size)
            for j in range(new.size)
            if view.overlap[i][j] > 0
        }
        assert band_keys == expected

    def test_matched_never_worse_than_default(self, comparison):
        _, _, _, view = comparison
        assert view.matched_distance <= view.default_distance

    def test_box_positions_are_permutations(self, comparison):
        _, old, new, view = comparison
        assert sorted(b.position for b in view.old_boxes) == list(
            range(old.size)
        )
        assert sorted(b.position for b in view.new_boxes) == list(
            range(new.size)
        )

    def test_top_counts_bounded_by_size(self, comparison):
        _, _, _, view = comparison
        for box in view.old_boxes + view.new_boxes:
            assert 0 <= box.top_count <= box.size

    def test_render_ascii(self, comparison):
        _, _, _, view = comparison
        art = view.render_ascii()
        assert "old clusters" in art
        assert "bands" in art
