"""Edge cases and failure injection across the library."""

from __future__ import annotations

import pytest

from repro.core.answers import AnswerSet
from repro.core.bottom_up import bottom_up, bottom_up_level_start
from repro.core.brute_force import brute_force
from repro.core.fixed_order import fixed_order
from repro.core.hybrid import hybrid
from repro.core.problem import summarize
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility
from repro.common.errors import InvalidParameterError
from repro.interactive.precompute import SolutionStore
from tests.conftest import random_answer_set


class TestDegenerateAnswerSets:
    def test_single_element(self):
        answers = AnswerSet.from_rows([("a", "b")], [1.0])
        solution = summarize(answers, k=1, L=1, D=0)
        assert solution.size == 1
        assert solution.avg == pytest.approx(1.0)

    def test_two_identical_values(self):
        answers = AnswerSet.from_rows([("a",), ("b",)], [2.0, 2.0])
        solution = summarize(answers, k=2, L=2, D=0)
        assert not check_feasibility(solution, answers, 2, 2, 0)

    def test_all_equal_values_deterministic(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=1,
                                    value_range=(3.0, 3.0))
        pool = ClusterPool(answers, L=6)
        first = bottom_up(pool, 3, 2)
        second = bottom_up(pool, 3, 2)
        assert first.patterns() == second.patterns()

    def test_negative_values(self):
        answers = AnswerSet.from_rows(
            [("a", "x"), ("b", "x"), ("c", "y"), ("d", "y")],
            [-1.0, -2.0, -3.0, -4.0],
        )
        solution = summarize(answers, k=2, L=2, D=1)
        assert not check_feasibility(solution, answers, 2, 2, 1)
        assert solution.avg <= -1.0

    def test_single_attribute(self):
        answers = AnswerSet.from_rows(
            [("a",), ("b",), ("c",), ("d",)], [4.0, 3.0, 2.0, 1.0]
        )
        solution = summarize(answers, k=2, L=2, D=1)
        assert not check_feasibility(solution, answers, 2, 2, 1)


class TestExtremeParameters:
    @pytest.fixture
    def answers(self):
        return random_answer_set(n=30, m=4, domain=3, seed=41)

    def test_k_equals_n(self, answers):
        solution = summarize(answers, k=answers.n, L=5, D=0)
        assert not check_feasibility(solution, answers, answers.n, 5, 0)

    def test_L_equals_n(self, answers):
        pool = ClusterPool(answers, L=answers.n)
        solution = fixed_order(pool, 5, 1)
        assert not check_feasibility(solution, answers, 5, answers.n, 1)

    def test_D_equals_m(self, answers):
        # Maximum distance: every pair of clusters must disagree everywhere.
        pool = ClusterPool(answers, L=6)
        for algorithm in (bottom_up, fixed_order, hybrid):
            solution = algorithm(pool, 3, answers.m)
            assert not check_feasibility(
                solution, answers, 3, 6, answers.m
            )

    def test_k_one_forces_single_cluster(self, answers):
        pool = ClusterPool(answers, L=8)
        solution = bottom_up(pool, 1, 2)
        assert solution.size == 1

    def test_level_start_with_D_zero(self, answers):
        pool = ClusterPool(answers, L=6)
        solution = bottom_up_level_start(pool, 3, 0)
        assert not check_feasibility(solution, answers, 3, 6, 0)

    def test_brute_force_k_one(self, answers):
        pool = ClusterPool(answers, L=3)
        solution = brute_force(pool, 1, 0)
        assert solution.size == 1
        assert not check_feasibility(solution, answers, 1, 3, 0)


class TestStoreEdgeCases:
    def test_k_range_of_one(self):
        answers = random_answer_set(n=30, m=4, domain=3, seed=43)
        pool = ClusterPool(answers, L=6)
        store = SolutionStore(pool, (4, 4), [1])
        solution = store.retrieve(4, 1)
        assert not check_feasibility(solution, answers, 4, 6, 1)

    def test_k_max_beyond_initial_pool(self):
        # k_max larger than the Fixed-Order pool ever gets: the solution
        # for large k is simply the post-distance-phase state.
        answers = random_answer_set(n=30, m=4, domain=3, seed=44)
        pool = ClusterPool(answers, L=4)
        store = SolutionStore(pool, (1, 25), [1])
        for k in (25, 10, 1):
            solution = store.retrieve(k, 1)
            assert not check_feasibility(solution, answers, k, 4, 1)

    def test_duplicate_d_values_deduped(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=45)
        pool = ClusterPool(answers, L=4)
        store = SolutionStore(pool, (2, 4), [2, 2, 2])
        assert store.d_values == (2,)


class TestTieBreaking:
    def test_objective_stable_under_permuted_input(self):
        """The same logical instance presented in a different row order
        yields the same objective value when values are distinct.  (With
        tied values the *ranking itself* is presentation-dependent — the
        same caveat as SQL ORDER BY without a tie-break column — so exact
        cluster identity is only guaranteed for distinct values.)"""
        rows = [("a", "x"), ("b", "x"), ("a", "y"), ("c", "z"), ("b", "z")]
        values = [3.0, 2.9, 2.0, 1.9, 1.0]
        forward = AnswerSet.from_rows(rows, values)
        backward = AnswerSet.from_rows(rows[::-1], values[::-1])
        solution_f = summarize(forward, k=2, L=3, D=1)
        solution_b = summarize(backward, k=2, L=3, D=1)
        assert solution_f.avg == pytest.approx(solution_b.avg)
        decoded_f = sorted(
            forward.decode(c.pattern) for c in solution_f.clusters
        )
        decoded_b = sorted(
            backward.decode(c.pattern) for c in solution_b.clusters
        )
        assert decoded_f == decoded_b

    def test_equal_avg_merge_candidates_resolve_stably(self):
        answers = random_answer_set(n=8, m=3, domain=2, seed=46,
                                    value_range=(1.0, 1.0))
        pool = ClusterPool(answers, L=6)
        runs = {tuple(bottom_up(pool, 3, 1).patterns()) for _ in range(3)}
        assert len(runs) == 1
