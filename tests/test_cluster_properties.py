"""Property-based tests (hypothesis) for the pattern algebra.

These pin down the structural facts the paper's algorithms rely on: the
distance function is a metric and monotone under generalization
(Proposition 4.2), LCA is the semilattice join, and coverage is a partial
order.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.interning import STAR
from repro.core.cluster import covers, distance, generalizations, lca, level

M = 5
values = st.integers(min_value=0, max_value=3)
position = st.one_of(st.just(STAR), values)
patterns = st.tuples(*([position] * M))
elements = st.tuples(*([values] * M))


@given(patterns, patterns)
def test_distance_symmetric(p, q):
    assert distance(p, q) == distance(q, p)


@given(patterns)
def test_distance_to_self_counts_stars(p):
    # d(C, C) equals the number of * positions: each is a position where
    # "at least one of the values is *" (Definition 3.1).
    assert distance(p, p) == level(p)


@given(elements, elements)
def test_distance_on_elements_is_hamming(p, q):
    hamming = sum(1 for a, b in zip(p, q) if a != b)
    assert distance(p, q) == hamming


@given(patterns, patterns, patterns)
def test_distance_triangle_inequality(p, q, r):
    assert distance(p, r) <= distance(p, q) + distance(q, r)


@given(elements, elements)
def test_elements_identity_of_indiscernibles(p, q):
    assert (distance(p, q) == 0) == (p == q)


@given(patterns, patterns)
def test_lca_covers_both(p, q):
    joined = lca(p, q)
    assert covers(joined, p)
    assert covers(joined, q)


@given(patterns, patterns)
def test_lca_commutative(p, q):
    assert lca(p, q) == lca(q, p)


@given(patterns, patterns, patterns)
def test_lca_associative(p, q, r):
    assert lca(lca(p, q), r) == lca(p, lca(q, r))


@given(patterns, patterns, patterns)
def test_lca_is_least_upper_bound(p, q, r):
    # Any common ancestor r of p and q covers lca(p, q).
    if covers(r, p) and covers(r, q):
        assert covers(r, lca(p, q))


@given(patterns, patterns)
def test_coverage_antisymmetric(p, q):
    if covers(p, q) and covers(q, p):
        assert p == q


@given(patterns, patterns, patterns)
def test_coverage_transitive(p, q, r):
    if covers(p, q) and covers(q, r):
        assert covers(p, r)


@settings(max_examples=60)
@given(elements)
def test_generalizations_exactly_the_ancestors(element):
    # The generalizations of an element are exactly the patterns covering it.
    gens = set(generalizations(element))
    assert len(gens) == 2 ** M
    for pattern in gens:
        assert covers(pattern, element)


@given(patterns, patterns, patterns)
def test_proposition_4_2_monotonicity(c1, c2_seed, other):
    """Replacing a cluster with an ancestor never reduces its distance to a
    third cluster — the merge-safety property (Proposition 4.2)."""
    ancestor = lca(c1, c2_seed)  # some ancestor of c1
    assert distance(ancestor, other) >= distance(c1, other)


@given(patterns, patterns)
def test_merged_cluster_keeps_distance_to_others(p, q):
    # d(LCA(p,q), r) >= max(d(p,r), d(q,r)) follows from monotonicity twice.
    joined = lca(p, q)
    r = (0, 1, STAR, 2, 3)
    assert distance(joined, r) >= max(distance(p, r), distance(q, r))
