"""Tests for the alternative Min-Size objective (footnote 5)."""

from __future__ import annotations

import pytest

from repro.core.bottom_up import bottom_up
from repro.core.objectives import max_avg, min_size, min_size_greedy
from repro.core.semilattice import ClusterPool
from repro.core.solution import check_feasibility
from tests.conftest import random_answer_set


@pytest.fixture(scope="module")
def setup():
    answers = random_answer_set(n=60, m=4, domain=4, seed=31)
    return answers, ClusterPool(answers, L=10)


class TestObjectives:
    def test_max_avg_is_solution_avg(self, setup):
        answers, pool = setup
        solution = bottom_up(pool, 4, 2)
        assert max_avg(solution) == solution.avg

    def test_min_size_counts_redundant(self, setup):
        answers, pool = setup
        solution = bottom_up(pool, 4, 2)
        expected = sum(1 for i in solution.covered if i >= 10)
        assert min_size(solution, 10) == expected

    def test_min_size_of_top_only_solution_is_zero(self, setup):
        answers, pool = setup
        singletons = [pool.singleton(i) for i in range(10)]
        from repro.core.solution import Solution

        solution = Solution.from_clusters(singletons, answers)
        assert min_size(solution, 10) == 0


class TestMinSizeGreedy:
    @pytest.mark.parametrize("k,D", [(4, 2), (2, 3), (6, 1), (3, 0)])
    def test_feasibility(self, setup, k, D):
        answers, pool = setup
        solution = min_size_greedy(pool, k, D)
        assert not check_feasibility(solution, answers, k, 10, D)

    def test_never_more_redundant_than_max_avg(self, setup):
        """Each objective wins its own metric (footnote 5's trade-off)."""
        answers, pool = setup
        for k, D in [(4, 2), (3, 3), (5, 1)]:
            frugal = min_size_greedy(pool, k, D)
            greedy = bottom_up(pool, k, D)
            assert min_size(frugal, 10) <= min_size(greedy, 10)
            assert greedy.avg >= frugal.avg - 1e-9

    def test_invalid_k(self, setup):
        answers, pool = setup
        from repro.common.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            min_size_greedy(pool, 0, 1)
