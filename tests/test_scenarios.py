"""Scenario harness tests: spec surface, trace determinism, smoke runs.

Marked ``scenario`` (see ``pyproject.toml``): the CI scenarios job
selects them with ``-m scenario``.  Everything here is smoke-sized —
the full matrix lives in ``benchmarks/bench_scenarios.py`` and its
committed ``BENCH_scenarios.json`` (floors re-checked by
``tests/test_docs.py``).
"""

from __future__ import annotations

from random import Random

import pytest

from repro.common.errors import InvalidParameterError
from repro.datasets.loader import synthetic_answer_set
from repro.scenarios import (
    AppendSpec,
    DatasetSpec,
    ScenarioSpec,
    compile_trace,
    evaluate_floors,
    run_scenario,
    summarize,
)
from repro.scenarios.matrix import full_matrix, smoke_matrix
from repro.scenarios.runner import check_append_identity, normalize_response
from repro.scenarios.trace import _append_events, _pick_kind
from repro.service.api import SCHEMA_VERSION

pytestmark = pytest.mark.scenario


def tiny_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="tiny",
        dataset=DatasetSpec("synthetic", {"n": 32, "m": 4, "seed": 5}),
        shape="drill-down-heavy", clients=2, steps=3, seed=9,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestSpecSurface:
    def test_every_matrix_spec_round_trips_through_dicts(self):
        for spec in full_matrix() + smoke_matrix():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_shape_transport_and_source_are_rejected(self):
        with pytest.raises(InvalidParameterError):
            tiny_spec(shape="zigzag")
        with pytest.raises(InvalidParameterError):
            tiny_spec(transport="carrier-pigeon")
        with pytest.raises(InvalidParameterError):
            DatasetSpec("imagenet", {})

    def test_degenerate_clients_steps_and_mixture_are_rejected(self):
        with pytest.raises(InvalidParameterError):
            tiny_spec(clients=0)
        with pytest.raises(InvalidParameterError):
            tiny_spec(steps=0)
        with pytest.raises(InvalidParameterError):
            tiny_spec(mixture={"summary": -1.0})
        with pytest.raises(InvalidParameterError):
            tiny_spec(mixture={"teleport": 1.0})

    def test_append_spec_adds_epochs(self):
        assert tiny_spec().epochs == 1
        spec = tiny_spec(append=AppendSpec(batches=3, rows_per_batch=2))
        assert spec.epochs == 4

    def test_pick_kind_honours_degenerate_mixture(self):
        rng = Random(0)
        kinds = {
            _pick_kind(rng, {"guidance": 1.0}) for _ in range(32)
        }
        assert kinds == {"guidance"}


class TestTraceCompilation:
    @pytest.fixture(scope="class")
    def answers(self):
        return synthetic_answer_set(n=32, m=4, seed=5)

    @pytest.mark.parametrize(
        "shape", ["drill-down-heavy", "revisit-heavy", "cold-churn"]
    )
    def test_traces_are_deterministic_and_schema_versioned(
        self, answers, shape
    ):
        spec = tiny_spec(shape=shape)
        trace = compile_trace(spec, answers)
        again = compile_trace(spec, answers)
        assert [e.requests for e in trace.epochs] == [
            e.requests for e in again.epochs
        ]
        assert trace.total_requests == spec.clients * spec.steps
        for _, _, request in trace.flat_requests():
            assert request["schema_version"] == SCHEMA_VERSION
            assert request["dataset"] == spec.name
            assert request["kind"] in {"summary", "explore", "guidance"}

    def test_append_epochs_carry_events_in_order(self, answers):
        spec = tiny_spec(append=AppendSpec(batches=2, rows_per_batch=3))
        trace = compile_trace(spec, answers)
        assert [e.append is not None for e in trace.epochs] == [
            False, True, True,
        ]
        seen = set()
        for epoch in trace.epochs[1:]:
            event = epoch.append
            assert len(event.rows) == len(event.values) == 3
            payload = event.payload(spec.name)
            assert payload["kind"] == "append_rows"
            assert payload["dataset"] == spec.name
            seen.update(event.rows)
        # Every appended row is globally fresh — never a duplicate of an
        # existing tuple (which the engine would reject) or of another
        # appended row.
        assert len(seen) == 6
        assert seen.isdisjoint(set(answers.elements))


class TestAppendIdentity:
    def test_maintained_pool_matches_rebuild_on_all_kernels(self):
        answers = synthetic_answer_set(n=28, m=4, seed=13)
        spec = tiny_spec(append=AppendSpec(batches=3, rows_per_batch=4))
        events = _append_events(spec, answers)
        verdict = check_append_identity(answers, events, L=3)
        assert verdict["identical"] is True
        assert verdict["kernels"] == {
            "python": True, "bitset": True, "dense": True,
        }
        assert verdict["batches"] == 3
        assert verdict["rows_appended"] == 12


class TestNormalization:
    def test_tuples_volatile_keys_and_timings_are_canonicalized(self):
        raw = {
            "pattern": ("a", "*"),
            "cache_hit": True,
            "init_seconds": 0.123,
            "phase_seconds": {"merge": 0.5},
            "nested": [("x",), {"total_seconds": 1.0}],
        }
        assert normalize_response(raw) == {
            "pattern": ["a", "*"],
            "init_seconds": 0.0,
            "phase_seconds": {"merge": 0.0},
            "nested": [["x"], {"total_seconds": 0.0}],
        }


class TestSmokeRuns:
    """End-to-end over a real TCP server — the same specs CI's
    ``bench_scenarios.py --smoke`` runs."""

    @pytest.fixture(scope="class")
    def smoke_reports(self):
        return {
            spec.name: run_scenario(spec) for spec in smoke_matrix()
        }

    def test_revisit_smoke_is_differentially_identical(self, smoke_reports):
        report = smoke_reports["smoke-revisit"]
        assert report["differential"]["identical"] is True
        assert report["errors"]["total"] == 0
        assert report["requests"] == report["responses"]
        assert evaluate_floors(report) == []

    def test_append_smoke_maintains_pools_identically(self, smoke_reports):
        report = smoke_reports["smoke-append"]
        assert report["append_check"]["identical"] is True
        assert set(report["append_check"]["kernels"]) == {
            "python", "bitset", "dense",
        }
        assert report["differential"]["identical"] is True
        assert evaluate_floors(report) == []

    def test_summarize_rolls_up_floor_verdicts(self, smoke_reports):
        summary = summarize(list(smoke_reports.values()))
        assert summary["scenario_count"] == 2
        assert summary["all_floors_hold"] is True
        for scenario in summary["scenarios"]:
            assert scenario["floor_violations"] == []

    def test_violated_floors_are_reported_not_silently_passed(
        self, smoke_reports
    ):
        import copy

        report = copy.deepcopy(smoke_reports["smoke-revisit"])
        report["spec"]["floors"] = {
            "min_requests": 10_000, "max_error_rate": 0.0,
        }
        violations = evaluate_floors(report)
        assert len(violations) == 1
        assert "floor is 10000" in violations[0]
        with pytest.raises(ValueError):
            evaluate_floors(
                {"spec": {"floors": {"min_unicorns": 1}}}
            )
