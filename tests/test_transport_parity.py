"""Error-path parity across all three transports.

The serving tier's contract is that stdio, TCP, and HTTP are *the same
server* behind different framing: a hostile or unauthorized request must
produce the **byte-identical** error body on every transport.  These
tests drive the same three probes — malformed JSON, an unauthenticated
analytic request against a token-secured server, and an oversized
request — through the real stdio loop, a real TCP server (raw socket,
so we compare actual wire bytes), and a real HTTP server (raw response
body), and require the bodies to match byte for byte.
"""

from __future__ import annotations

import io
import json
import socket

import http.client

import pytest

from repro.service.engine import Engine
from repro.service.serve import Dispatcher, serve
from repro.server.tcp import BackgroundServer, TCPServer
from repro.web.auth import AuthService
from repro.web.http import BackgroundWebServer, WebServer

pytestmark = pytest.mark.tier1

#: One shared byte limit: the stdio/TCP ``max_line_bytes`` and the HTTP
#: ``max_body_bytes`` must be the same number for the oversized error
#: message to agree.
LIMIT = 256

PROBES: dict[str, bytes] = {
    # Invalid JSON: every transport must answer SchemaError with the
    # parser's own position diagnostics.
    "malformed": b'{"kind": "summary",,,}',
    # Valid analytic request, no credentials, token-secured server.
    "unauthorized": json.dumps(
        {
            "schema_version": 2, "kind": "summary",
            "dataset": "d", "k": 2, "L": 2, "D": 0,
        },
        sort_keys=True,
    ).encode("utf-8"),
    # One byte limit, three framings: line too long / body too large.
    "oversized": b'{"pad": "' + b"x" * LIMIT + b'"}',
}


def _auth() -> AuthService:
    return AuthService({"parity-secret": "op"})


def _stdio_body(probe: bytes) -> bytes:
    dispatcher = Dispatcher(Engine(), max_line_bytes=LIMIT, auth=_auth())
    out = io.StringIO()
    serve(
        io.StringIO(probe.decode("utf-8", errors="surrogateescape") + "\n"),
        out,
        dispatcher=dispatcher,
    )
    return out.getvalue().encode("utf-8")


def _tcp_body(probe: bytes) -> bytes:
    server = TCPServer(Engine(), max_line_bytes=LIMIT, auth=_auth())
    with BackgroundServer(server) as handle:
        with socket.create_connection(
            (handle.host, handle.port), timeout=30.0
        ) as sock:
            sock.sendall(probe + b"\n")
            chunks = []
            while not (chunks and chunks[-1].endswith(b"\n")):
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
    return b"".join(chunks)


def _http_body(probe: bytes) -> bytes:
    server = BackgroundWebServer(
        WebServer(Engine(), port=0, max_body_bytes=LIMIT, auth=_auth())
    ).start()
    try:
        connection = http.client.HTTPConnection(
            server.host, server.port, timeout=30.0
        )
        try:
            connection.request(
                "POST", "/v2/summary", body=probe,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            return response.read()
        finally:
            connection.close()
    finally:
        server.stop()


@pytest.mark.parametrize("probe", sorted(PROBES))
def test_error_bodies_are_byte_identical_across_transports(probe):
    raw = PROBES[probe]
    stdio = _stdio_body(raw)
    tcp = _tcp_body(raw)
    http_bytes = _http_body(raw)
    assert stdio == tcp, (
        "stdio vs TCP diverged for %s: %r != %r" % (probe, stdio, tcp)
    )
    assert tcp == http_bytes, (
        "TCP vs HTTP diverged for %s: %r != %r" % (probe, tcp, http_bytes)
    )
    payload = json.loads(stdio)
    assert payload["kind"] == "error"


def test_probe_error_types():
    """Each probe exercises the error class it claims to (on one
    transport — parity extends it to the rest)."""
    expected = {
        "malformed": "SchemaError",
        "unauthorized": "AuthError",
        "oversized": "LineTooLong",
    }
    for probe, error_type in expected.items():
        payload = json.loads(_stdio_body(PROBES[probe]))
        assert payload["error_type"] == error_type, (
            probe, payload,
        )
