"""Tests for the dense packed-array kernel: :mod:`repro.core.dense`
primitives on both backends (numpy and the stdlib array fallback), the
AnswerSet value table, dense ClusterPool construction, the auto kernel
policy, engine/pool representation matching, and the frontier-width
argmax counters."""

from __future__ import annotations

import random
from array import array

import pytest

from repro.common.errors import InvalidParameterError
from repro.core import dense
from repro.core.answers import AnswerSet
from repro.core.bitset import (
    BITSET_KERNEL,
    DENSE_AUTO_THRESHOLD,
    DENSE_KERNEL,
    KERNEL_CHOICES,
    KERNELS,
    bitset_of,
    mask_value_sum,
    resolve_kernel,
)
from repro.core.bottom_up import bottom_up
from repro.core.brute_force import brute_force
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from tests.conftest import random_answer_set

#: Both backends when numpy is importable, else just the fallback.
BACKENDS = ("numpy", "array") if dense.HAVE_NUMPY else ("array",)


def _backend(name):
    """Context under which masks build on the requested backend."""
    if name == "array":
        return dense.numpy_disabled()
    import contextlib

    return contextlib.nullcontext()


@pytest.mark.parametrize("backend", BACKENDS)
class TestBitBlocksPrimitives:
    def test_roundtrip_and_popcount(self, backend):
        with _backend(backend):
            for nbits, indices in (
                (1, []),
                (8, [0]),
                (64, [0, 63]),
                (65, [0, 63, 64]),
                (1000, [0, 1, 63, 64, 65, 999]),
                (300, list(range(0, 300, 3))),
            ):
                mask = dense.blocks_of(indices, nbits)
                assert list(mask.indices()) == sorted(indices)
                assert mask.bit_count() == len(indices)
                assert bool(mask) == bool(indices)
                assert mask.nblocks == (nbits + 63) // 64
                packed = mask.blocks()
                assert isinstance(packed, array)
                assert packed.typecode == "Q"
                assert len(packed) == mask.nblocks

    def test_operators_match_int_masks(self, backend):
        rng = random.Random(11)
        nbits = 500
        a_ids = rng.sample(range(nbits), 120)
        b_ids = rng.sample(range(nbits), 200)
        ia, ib = bitset_of(a_ids), bitset_of(b_ids)
        with _backend(backend):
            ba = dense.blocks_of(a_ids, nbits)
            bb = dense.blocks_of(b_ids, nbits)
            for op in ("__and__", "__or__", "__xor__"):
                expected = getattr(ia, op)(ib)
                got = getattr(ba, op)(bb)
                assert list(got.indices()) == list(
                    dense.mask_indices(expected)
                )
            andnot = ba & ~bb
            assert list(andnot.indices()) == list(
                dense.mask_indices(ia & ~ib)
            )
            assert (~ba).bit_count() == nbits - len(a_ids)

    def test_test_and_lowest_bit(self, backend):
        with _backend(backend):
            mask = dense.blocks_of([3, 70, 128], 200)
            assert mask.test(3) and mask.test(70) and mask.test(128)
            assert not mask.test(0) and not mask.test(199)
            assert mask.lowest_bit() == 3
            assert dense.zero_blocks(200).lowest_bit() == -1
            assert dense.first_n_blocks(5, 200).bit_count() == 5

    def test_equality_across_backends(self, backend):
        ids = [1, 64, 129]
        with _backend(backend):
            first = dense.blocks_of(ids, 200)
        second = dense.blocks_of(ids, 200)  # whatever backend is active
        assert first == second
        assert first != dense.blocks_of([1, 64], 200)

    def test_value_sum_bit_identical_to_bitset(self, backend):
        """Sparse and vectorized paths produce the exact floats of the
        bitset kernel's ascending-order scalar sum."""
        rng = random.Random(5)
        nbits = 4000
        values = [rng.uniform(0.0, 9.0) for _ in range(nbits)]
        table = dense.ValueTable(values)
        with _backend(backend):
            for count in (0, 1, 30, 500, 3500):
                ids = sorted(rng.sample(range(nbits), count))
                int_sum = mask_value_sum(values, bitset_of(ids))
                blocks_sum = dense.blocks_of(ids, nbits).value_sum(table)
                assert blocks_sum == int_sum  # exact, not approx

    def test_value_sum_monotone_under_superset(self, backend):
        """Ascending sequential summation keeps subset sums dominated by
        superset sums for non-negative values — the heap argmax's
        soundness precondition — on both backends."""
        rng = random.Random(13)
        nbits = 2500
        values = [rng.uniform(0.0, 1.0) for _ in range(nbits)]
        table = dense.ValueTable(values)
        with _backend(backend):
            subset = sorted(rng.sample(range(nbits), 700))
            superset = sorted(
                set(subset) | set(rng.sample(range(nbits), 1200))
            )
            assert dense.blocks_of(subset, nbits).value_sum(
                table
            ) <= dense.blocks_of(superset, nbits).value_sum(table)


class TestValueTable:
    def test_packed_row_and_list(self):
        table = dense.ValueTable([3.0, 1.5, 2.25])
        assert isinstance(table.packed, array)
        assert table.packed.typecode == "d"
        assert list(table.packed) == [3.0, 1.5, 2.25]
        assert len(table) == 3

    @pytest.mark.skipif(not dense.HAVE_NUMPY, reason="needs numpy")
    def test_np_view_is_zero_copy(self):
        import numpy as np

        table = dense.ValueTable([1.0, 2.0])
        assert table.np_view.dtype == np.float64
        assert table.np_view.tolist() == [1.0, 2.0]

    def test_answer_set_value_table_cached(self):
        answers = random_answer_set(n=10, m=3, domain=4, seed=1)
        assert answers.value_table is answers.value_table
        assert list(answers.value_table.packed) == answers.values

    def test_answer_set_mask_value_sum_dispatch(self):
        answers = random_answer_set(n=32, m=3, domain=4, seed=2)
        ids = [1, 5, 17, 31]
        expected = sum(answers.values[i] for i in ids)
        assert answers.mask_value_sum(bitset_of(ids)) == pytest.approx(
            expected
        )
        assert answers.mask_value_sum(
            dense.blocks_of(ids, answers.n)
        ) == pytest.approx(expected)


class TestKernelResolution:
    def test_kernel_names(self):
        assert DENSE_KERNEL in KERNELS
        assert "auto" in KERNEL_CHOICES
        assert "auto" not in KERNELS

    def test_explicit_names_pass_through(self):
        for name in KERNELS:
            assert resolve_kernel(name) == name
            assert resolve_kernel(name, n=10**7) == name

    def test_auto_policy(self):
        small = resolve_kernel("auto", n=DENSE_AUTO_THRESHOLD - 1)
        assert small == BITSET_KERNEL
        large = resolve_kernel("auto", n=DENSE_AUTO_THRESHOLD)
        if dense.numpy_enabled():
            assert large == DENSE_KERNEL
        else:
            assert large == BITSET_KERNEL
        # Unknown size: stay on the default rather than guessing.
        assert resolve_kernel("auto") == BITSET_KERNEL

    def test_auto_needs_numpy(self):
        with dense.numpy_disabled():
            assert (
                resolve_kernel("auto", n=DENSE_AUTO_THRESHOLD)
                == BITSET_KERNEL
            )

    def test_unknown_kernel_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            resolve_kernel("numpy")


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("strategy", ["eager", "naive", "lazy"])
class TestDensePools:
    def test_masks_match_bitset_pool(self, backend, strategy):
        answers = random_answer_set(n=40, m=4, domain=3, seed=6)
        reference = ClusterPool(answers, L=6, strategy=strategy)
        with _backend(backend):
            pool = ClusterPool(
                answers, L=6, strategy=strategy, kernel="dense"
            )
            assert pool.kernel == DENSE_KERNEL
            for pattern in pool.patterns():
                mask = pool.mask(pattern)
                assert isinstance(mask, dense.BitBlocks)
                assert frozenset(mask.indices()) == reference.coverage(
                    pattern
                )
                assert pool.coverage(pattern) == reference.coverage(pattern)
                cluster = pool.cluster(pattern)
                assert cluster.mask is mask or cluster.mask == mask
                assert cluster.value_sum == pytest.approx(
                    sum(answers.values[i] for i in cluster.covered)
                )

    def test_mask_only_dense_pool(self, backend, strategy):
        answers = random_answer_set(n=30, m=3, domain=4, seed=8)
        reference = ClusterPool(answers, L=5, strategy=strategy)
        with _backend(backend):
            pool = ClusterPool(
                answers, L=5, strategy=strategy, mask_only=True,
                kernel="dense",
            )
            for pattern in pool.patterns():
                assert pool.coverage(pattern) == reference.coverage(pattern)


class TestEnginePoolMatching:
    def test_dense_engine_rejects_int_pool(self, tiny_answers):
        pool = ClusterPool(tiny_answers, L=4)
        with pytest.raises(InvalidParameterError, match="representation"):
            MergeEngine(pool, (), kernel="dense")

    def test_bitset_engine_rejects_dense_pool(self, tiny_answers):
        pool = ClusterPool(tiny_answers, L=4, kernel="dense")
        with pytest.raises(InvalidParameterError, match="representation"):
            MergeEngine(pool, (), kernel="bitset")

    def test_python_kernel_tolerates_dense_pool(self, tiny_answers):
        dense_pool = ClusterPool(tiny_answers, L=4, kernel="dense")
        int_pool = ClusterPool(tiny_answers, L=4)
        fast = bottom_up(dense_pool, 2, 1, kernel="python")
        slow = bottom_up(int_pool, 2, 1, kernel="python")
        assert fast.patterns() == slow.patterns()

    def test_brute_force_requires_matching_pool(self, tiny_answers):
        pool = ClusterPool(tiny_answers, L=3)
        with pytest.raises(InvalidParameterError, match="representation"):
            brute_force(pool, 2, 1, kernel="dense")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_accessors_on_dense_masks(self, tiny_answers, backend):
        """The engine's mask-facing read API (is_covered, covered_count,
        covered_indices, is_fully_covered) works on packed-block masks —
        regression test: is_covered used the int-only shift expression."""
        with _backend(backend):
            pool = ClusterPool(tiny_answers, L=4, kernel="dense")
            engine = MergeEngine(
                pool, (pool.singleton(i) for i in range(4)), kernel="dense"
            )
            int_pool = ClusterPool(tiny_answers, L=4)
            reference = MergeEngine(
                int_pool, (int_pool.singleton(i) for i in range(4))
            )
            for index in range(tiny_answers.n):
                assert engine.is_covered(index) == reference.is_covered(
                    index
                )
            assert engine.covered_count == reference.covered_count
            assert engine.covered_indices() == reference.covered_indices()
            assert engine.is_fully_covered(pool.singleton(0))

    def test_heap_argmax_allowed_on_dense(self, tiny_answers):
        pool = ClusterPool(tiny_answers, L=4, kernel="dense")
        engine = MergeEngine(
            pool,
            (pool.singleton(i) for i in range(4)),
            kernel="dense",
            argmax="heap",
        )
        assert engine.argmax == "heap"
        assert engine.kernel == DENSE_KERNEL


class TestProblemInstancePools:
    def test_pool_for_caches_per_representation(self, small_answers):
        from repro.core.problem import ProblemInstance

        instance = ProblemInstance(small_answers, k=4, L=8, D=1)
        int_pool = instance.pool_for("bitset")
        dense_pool = instance.pool_for("dense")
        assert int_pool.kernel != DENSE_KERNEL
        assert dense_pool.kernel == DENSE_KERNEL
        assert instance.pool_for("bitset") is int_pool
        assert instance.pool_for("dense") is dense_pool
        # The python kernel reuses whatever already exists.
        assert instance.pool_for("python") in (int_pool, dense_pool)

    def test_solve_with_dense_kernel(self, small_answers):
        from repro.core.problem import ProblemInstance

        instance = ProblemInstance(small_answers, k=4, L=8, D=1)
        fast = instance.solve("bottom-up", kernel="dense")
        slow = instance.solve("bottom-up", kernel="bitset")
        assert fast.patterns() == slow.patterns()


class TestFrontierWidthCounters:
    def test_heap_records_pops(self, small_answers):
        pool = ClusterPool(small_answers, L=10)
        solution = bottom_up(pool, 3, 1, argmax="heap")
        stats = solution.stats
        # Build rounds evaluate without popping, so pops and evals are
        # not ordered in general; the counters just have to move.
        assert stats["argmax_pops"] > 0.0
        assert stats["argmax_pops_max"] >= 1.0
        assert stats["argmax_pops"] >= stats["argmax_pops_max"]
        assert stats["argmax_pops_mean"] == pytest.approx(
            stats["argmax_pops"] / stats["argmax_rounds"]
        )

    def test_scan_records_zero_pops(self, small_answers):
        pool = ClusterPool(small_answers, L=10)
        solution = bottom_up(pool, 3, 1, argmax="scan")
        assert solution.stats["argmax_pops"] == 0.0
        assert solution.stats["argmax_pops_max"] == 0.0
        assert solution.stats["argmax_pops_mean"] == 0.0

    def test_counters_ride_the_wire_format(self, small_answers):
        from repro.service import Engine
        from repro.service.api import SummaryRequest

        engine = Engine()
        engine.register_dataset("ds", small_answers)
        response = engine.submit(
            SummaryRequest(dataset="ds", k=3, L=8, D=1,
                           algorithm="bottom-up")
        )
        for key in ("argmax_pops", "argmax_pops_max", "argmax_pops_mean"):
            assert key in response.phase_seconds


class TestServiceDenseKernel:
    def test_summary_reports_dense_and_splits_pool_cache(self, small_answers):
        from repro.service import Engine
        from repro.service.api import SummaryRequest

        engine = Engine()
        engine.register_dataset("ds", small_answers)
        base = dict(dataset="ds", k=3, L=8, D=1, algorithm="bottom-up")
        bitset = engine.submit(SummaryRequest(**base))
        dense_response = engine.submit(
            SummaryRequest(**base, options={"kernel": "dense"})
        )
        assert bitset.kernel == "bitset"
        assert dense_response.kernel == "dense"
        assert dense_response.cache_hit is False  # dense pool is its own
        assert dense_response.objective == pytest.approx(bitset.objective)

    def test_auto_kernel_resolves_on_the_wire(self, small_answers):
        from repro.service import Engine
        from repro.service.api import SummaryRequest

        engine = Engine()
        engine.register_dataset("ds", small_answers)
        response = engine.submit(
            SummaryRequest(dataset="ds", k=3, L=8, D=1,
                           algorithm="bottom-up",
                           options={"kernel": "auto"})
        )
        # Small n: the policy lands on the default kernel.
        assert response.kernel == BITSET_KERNEL

    def test_explore_accepts_dense(self, small_answers):
        from repro.service import Engine
        from repro.service.api import ExploreRequest

        engine = Engine()
        engine.register_dataset("ds", small_answers)
        response = engine.submit(
            ExploreRequest(dataset="ds", k=3, L=8, D=1, k_range=(2, 5),
                           d_values=(0, 1), kernel="dense")
        )
        assert response.kernel == "dense"
