"""Tests for MergeEngine: Merge semantics, invariants, delta judgment."""

from __future__ import annotations

import pytest

from repro.core.cluster import covers, distance, lca
from repro.core.merge import MergeEngine
from repro.core.semilattice import ClusterPool
from tests.conftest import random_answer_set


def _engine(answers, L, use_delta=True):
    pool = ClusterPool(answers, L=L)
    return pool, MergeEngine(
        pool, (pool.singleton(i) for i in range(L)), use_delta=use_delta
    )


class TestMergeSemantics:
    def test_merge_replaces_pair_with_lca(self, small_answers):
        pool, engine = _engine(small_answers, L=4)
        clusters = engine.clusters()
        c1, c2 = clusters[0], clusters[1]
        merged = engine.merge(c1, c2)
        assert merged.pattern == lca(c1.pattern, c2.pattern)
        patterns = {c.pattern for c in engine.clusters()}
        assert c1.pattern not in patterns
        assert c2.pattern not in patterns
        assert merged.pattern in patterns

    def test_merge_removes_swallowed_clusters(self, small_answers):
        pool, engine = _engine(small_answers, L=6)
        # Merge everything pairwise toward the root; no cluster covered by
        # the merged one may survive.
        while engine.size > 1:
            clusters = engine.clusters()
            merged = engine.merge(clusters[0], clusters[1])
            for cluster in engine.clusters():
                if cluster.pattern != merged.pattern:
                    assert not covers(merged.pattern, cluster.pattern)

    def test_merge_requires_membership(self, small_answers):
        pool, engine = _engine(small_answers, L=3)
        foreign = pool.singleton(10)
        with pytest.raises(ValueError):
            engine.merge(foreign, engine.clusters()[0])

    def test_coverage_never_shrinks(self, small_answers):
        pool, engine = _engine(small_answers, L=6)
        covered_before = set()
        for i in range(6):
            covered_before |= pool.singleton(i).covered
        while engine.size > 1:
            clusters = engine.clusters()
            engine.merge(clusters[0], clusters[1])
            assert covered_before <= {
                i for i in range(small_answers.n) if engine.is_covered(i)
            }

    def test_min_distance_never_decreases(self, small_answers):
        # The Proposition 4.2 invariant, observed on live merges.
        pool, engine = _engine(small_answers, L=8)
        previous = engine.min_pairwise_distance()
        while engine.size > 1:
            clusters = engine.clusters()
            engine.merge(clusters[0], clusters[-1])
            current = engine.min_pairwise_distance()
            assert current >= previous
            previous = current

    def test_avg_matches_recomputation(self, small_answers):
        pool, engine = _engine(small_answers, L=6)
        while engine.size > 2:
            c1, c2 = engine.best_pair(engine.all_pairs())
            engine.merge(c1, c2)
            snapshot = engine.snapshot()
            assert engine.avg() == pytest.approx(
                small_answers.avg_of(snapshot.covered)
            )

    def test_merge_into_external_cluster(self, small_answers):
        pool, engine = _engine(small_answers, L=3)
        incoming = pool.singleton(5)
        target = engine.clusters()[0]
        merged = engine.merge_into(target, incoming)
        assert covers(merged.pattern, incoming.pattern)
        assert covers(merged.pattern, target.pattern)

    def test_add_deduplicates(self, small_answers):
        pool, engine = _engine(small_answers, L=3)
        size = engine.size
        engine.add(engine.clusters()[0])
        assert engine.size == size


class TestBestPair:
    def test_best_pair_maximizes_merged_avg(self, small_answers):
        pool, engine = _engine(small_answers, L=6)
        pairs = engine.all_pairs()
        best = engine.best_pair(pairs)
        best_avg, _ = engine.evaluate_pair(*best)
        for pair in pairs:
            avg, _ = engine.evaluate_pair(*pair)
            assert best_avg >= avg - 1e-12

    def test_best_pair_empty_raises(self, small_answers):
        pool, engine = _engine(small_answers, L=3)
        with pytest.raises(ValueError):
            engine.best_pair([])

    def test_violating_pairs_filter(self, small_answers):
        pool, engine = _engine(small_answers, L=8)
        for D in range(small_answers.m + 1):
            pairs = engine.violating_pairs(D)
            for c1, c2 in pairs:
                assert distance(c1.pattern, c2.pattern) < D


class TestDeltaJudgment:
    def test_delta_and_naive_agree_on_every_evaluation(self):
        answers = random_answer_set(n=60, m=4, domain=3, seed=5)
        pool = ClusterPool(answers, L=10)
        fast = MergeEngine(pool, (pool.singleton(i) for i in range(10)))
        slow = MergeEngine(
            pool, (pool.singleton(i) for i in range(10)), use_delta=False
        )
        while fast.size > 2:
            fast_pairs = fast.all_pairs()
            slow_pairs = slow.all_pairs()
            assert [
                (a.pattern, b.pattern) for a, b in fast_pairs
            ] == [(a.pattern, b.pattern) for a, b in slow_pairs]
            for fast_pair, slow_pair in zip(fast_pairs, slow_pairs):
                fast_avg, _ = fast.evaluate_pair(*fast_pair)
                slow_avg, _ = slow.evaluate_pair(*slow_pair)
                assert fast_avg == pytest.approx(slow_avg)
            f1, f2 = fast.best_pair(fast_pairs)
            s1, s2 = slow.best_pair(slow_pairs)
            assert (f1.pattern, f2.pattern) == (s1.pattern, s2.pattern)
            fast.merge(f1, f2)
            slow.merge(s1, s2)

    def test_delta_cache_survives_interleaved_rounds(self, small_answers):
        # Evaluate, merge, evaluate again: the one-round-stale refresh path.
        pool, engine = _engine(small_answers, L=8)
        pairs = engine.all_pairs()
        candidate = pool.cluster(
            lca(pairs[0][0].pattern, pairs[0][1].pattern)
        )
        first = engine.evaluate_candidate(candidate)
        assert first > 0
        c1, c2 = engine.best_pair(pairs)
        engine.merge(c1, c2)
        again = engine.evaluate_candidate(candidate)
        expected_union = set(candidate.covered) | {
            i for i in range(small_answers.n) if engine.is_covered(i)
        }
        assert again == pytest.approx(small_answers.avg_of(expected_union))

    def test_clone_is_independent(self, small_answers):
        pool, engine = _engine(small_answers, L=6)
        twin = engine.clone()
        c1, c2 = engine.best_pair(engine.all_pairs())
        engine.merge(c1, c2)
        assert twin.size == 6
        assert engine.size < 6
        # The clone can continue independently.
        t1, t2 = twin.best_pair(twin.all_pairs())
        twin.merge(t1, t2)
        assert twin.size == 5
