"""The observability layer: trace trees, the ring buffer, structured
logs, the unified telemetry registry, and their integration through the
dispatcher, scheduler, and both concurrent transports.

The two contracts that matter most:

* **disarmed is invisible** — with tracing off, responses (including a
  request that *asks* for a trace) are byte-identical to the golden wire
  file, and the ``trace`` envelope field never changes coalescing keys;
* **armed is attributable** — a seeded latency fault at the
  ``scheduler.worker`` site must show up in the slowest-N ring buffer
  with the delay on the correct span, retrievable over both TCP (the
  ``trace`` admin kind) and HTTP (``POST /v2/admin/trace``), and the
  structured log line for that request must carry the same trace_id.
"""

from __future__ import annotations

import io
import json
import threading
import time

import http.client

import pytest

from tests.conftest import paper_like_answers, zero_timings
from repro.common import faults
from repro.obs import (
    RequestTrace,
    StructuredLogger,
    Telemetry,
    TelemetryRegistry,
    TraceBuffer,
    TraceIdGenerator,
    annotate,
    current_trace,
    record_span,
    span,
    trace_scope,
)
from repro.service.engine import Engine
from repro.service.serve import Dispatcher
from repro.server.scheduler import ShardedScheduler

pytestmark = pytest.mark.tier1

GOLDEN = json.loads(
    (__import__("pathlib").Path(__file__).parent / "golden"
     / "summary_response.json").read_text()
)

SUMMARY_REQUEST = {
    "schema_version": 2, "kind": "summary", "dataset": "paper",
    "k": 2, "L": 4, "D": 1, "algorithm": "bottom-up",
    "include_elements": True,
}


@pytest.fixture(autouse=True)
def disarm_faults():
    faults.clear()
    yield
    faults.clear()


@pytest.fixture
def engine() -> Engine:
    e = Engine()
    e.register_dataset("paper", paper_like_answers())
    return e


def armed_telemetry(**kwargs) -> Telemetry:
    kwargs.setdefault("tracing", True)
    return Telemetry(**kwargs)


# -- tracing primitives -------------------------------------------------------


class TestSpans:
    def test_span_without_installed_trace_is_a_noop(self):
        assert current_trace() is None
        with span("engine.solve") as node:
            assert node is None
        record_span("engine.pool_build", 0.01)  # must not raise
        annotate("orphan", True)

    def test_spans_nest_under_the_installed_trace(self):
        trace = RequestTrace("t-1", kind="summary")
        with trace_scope(trace):
            assert current_trace() is trace
            with span("scheduler.worker", shard=0):
                with span("engine.request"):
                    with span("engine.solve", kernel="bitset"):
                        pass
                record_span("engine.serialize", 0.002)
        assert current_trace() is None
        trace.finish("ok")
        tree = trace.to_dict()
        worker = tree["spans"][0]
        assert worker["name"] == "scheduler.worker"
        assert worker["attributes"] == {"shard": 0}
        request = worker["children"][0]
        names = [child["name"] for child in request["children"]]
        assert names == ["engine.solve"]
        # record_span lands under the open worker span, after the
        # engine.request child.
        assert [c["name"] for c in worker["children"]] == [
            "engine.request", "engine.serialize",
        ]

    def test_record_span_backdates_start_by_elapsed(self):
        trace = RequestTrace("t-2")
        with trace_scope(trace):
            record_span("engine.pool_build", 0.05, cache_hit=False)
        node = trace.find_span("engine.pool_build")
        assert node.seconds == pytest.approx(0.05, abs=0.01)
        assert node.attributes == {"cache_hit": False}

    def test_trace_scope_nests_and_restores(self):
        outer, inner = RequestTrace("outer"), RequestTrace("inner")
        with trace_scope(outer):
            with trace_scope(inner):
                assert current_trace() is inner
            assert current_trace() is outer
        assert current_trace() is None

    def test_trace_scope_none_is_supported(self):
        with trace_scope(None):
            assert current_trace() is None

    def test_finish_is_idempotent(self):
        trace = RequestTrace("t-3")
        trace.finish("ok")
        first = trace.duration_seconds
        time.sleep(0.002)
        trace.finish("late-error")
        assert trace.status == "ok"
        assert trace.duration_seconds == first

    def test_add_span_from_explicit_instants(self):
        trace = RequestTrace("t-4")
        now = time.perf_counter()
        trace.add_span("scheduler.queue", now - 0.25, now, shard=3)
        node = trace.find_span("scheduler.queue")
        assert node.seconds == pytest.approx(0.25, abs=0.01)
        assert node.attributes["shard"] == 3

    def test_annotations_survive_into_the_tree(self):
        trace = RequestTrace("t-5")
        trace.annotate("coalesced", True)
        with trace_scope(trace):
            annotate("deadline_shed", "queued")
        trace.finish("ok")
        tree = trace.to_dict()
        assert tree["annotations"] == {
            "coalesced": True, "deadline_shed": "queued",
        }

    def test_spans_from_two_threads_share_one_tree(self):
        trace = RequestTrace("t-6")

        def worker():
            with trace_scope(trace):
                with span("scheduler.worker"):
                    pass

        thread = threading.Thread(target=worker)
        with trace_scope(trace):
            with span("edge.dispatch"):
                thread.start()
                thread.join()
        names = {s["name"] for s in trace.to_dict()["spans"]}
        # The worker thread had its own empty span stack, so its span is
        # a root sibling, not a child of the edge span.
        assert names == {"edge.dispatch", "scheduler.worker"}


class TestTraceIds:
    def test_deterministic_sequence(self):
        generator = TraceIdGenerator(seed=7)
        assert generator.next_id() == "trace-0007-000001"
        assert generator.next_id() == "trace-0007-000002"
        assert TraceIdGenerator(seed=7).next_id() == "trace-0007-000001"


class TestTraceBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(0)

    def _trace(self, trace_id: str, seconds: float) -> dict:
        return {"trace_id": trace_id, "duration_seconds": seconds}

    def test_recent_evicts_oldest_slowest_keeps_max(self):
        buffer = TraceBuffer(capacity=3)
        for index, seconds in enumerate([0.5, 0.1, 0.9, 0.2, 0.3]):
            buffer.record(self._trace("t%d" % index, seconds))
        snap = buffer.snapshot()
        assert snap["recorded"] == 5
        assert snap["capacity"] == 3
        assert [t["trace_id"] for t in snap["recent"]] == ["t2", "t3", "t4"]
        # Slowest three of the five, slowest first — t0 (0.5) survives
        # even though recency evicted it.
        assert [t["trace_id"] for t in snap["slowest"]] == ["t2", "t0", "t4"]
        assert len(buffer) == 3

    def test_equal_durations_tiebreak_on_arrival(self):
        buffer = TraceBuffer(capacity=2)
        buffer.record(self._trace("a", 0.1))
        buffer.record(self._trace("b", 0.1))
        buffer.record(self._trace("c", 0.1))  # not strictly slower: kept out
        assert [t["trace_id"] for t in buffer.snapshot()["slowest"]] == [
            "a", "b",
        ]


# -- structured logging -------------------------------------------------------


class TestStructuredLogger:
    def test_request_record_shape(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink)
        trace = RequestTrace("t-log", kind="summary", user="op")
        trace.finish("ok")
        logger.request(trace.to_dict())
        record = json.loads(sink.getvalue())
        assert record["event"] == "request"
        assert record["trace_id"] == "t-log"
        assert record["user"] == "op"
        assert record["kind"] == "summary"
        assert record["status"] == "ok"
        assert record["spans"] == []
        assert logger.emitted == 1

    def test_event_records_and_nonjsonable_coercion(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink)
        logger.event("quarantine", shard=1, error=ValueError("boom"))
        record = json.loads(sink.getvalue())
        assert record["event"] == "quarantine"
        assert record["shard"] == 1
        assert "boom" in record["error"]

    def test_closed_sink_never_raises(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink)
        sink.close()
        logger.event("drain", transport="tcp")  # swallowed, not raised
        assert logger.emitted == 1


# -- telemetry + registry -----------------------------------------------------


class TestTelemetry:
    def test_disarmed_begin_trace_returns_none(self):
        telemetry = Telemetry()
        assert telemetry.begin_trace("summary") is None
        assert telemetry.describe()["armed"] is False

    def test_armed_roundtrip_records_and_logs(self):
        sink = io.StringIO()
        telemetry = armed_telemetry(logger=StructuredLogger(sink))
        trace = telemetry.begin_trace("summary", user="op")
        tree = telemetry.finish_trace(trace, "ok")
        assert tree["trace_id"] == "trace-0000-000001"
        assert telemetry.traces()["recorded"] == 1
        logged = json.loads(sink.getvalue())
        assert logged["trace_id"] == tree["trace_id"]

    def test_request_id_overrides_generator(self):
        telemetry = armed_telemetry()
        trace = telemetry.begin_trace("summary", request_id="client-id-9")
        assert trace.trace_id == "client-id-9"

    def test_event_without_logger_is_dropped(self):
        Telemetry().event("drain", transport="tcp")  # no logger: no raise


class TestTelemetryRegistry:
    def test_sections_and_snapshot(self):
        registry = TelemetryRegistry()
        registry.register("quota", lambda: {
            "granted": 5, "rejected": 2, "users": 3,
        })
        assert registry.registered() == ["quota"]
        assert registry.section("quota")["granted"] == 5
        assert registry.section("missing") is None
        assert registry.snapshot() == {
            "quota": {"granted": 5, "rejected": 2, "users": 3},
        }

    def test_prometheus_extra_gauge_names_are_stable(self):
        registry = TelemetryRegistry()
        registry.register("quota", lambda: {
            "granted": 5, "rejected": 2, "users": 3,
        })
        registry.register("auth", lambda: {"rejected": 4})
        extra = registry.prometheus_extra()
        assert extra == {
            "quota_granted": 5, "quota_rejected": 2, "quota_users": 3,
            "auth_rejected": 4,
        }

    def test_traces_recorded_gauge_only_when_armed(self):
        disarmed = TelemetryRegistry(Telemetry())
        assert "traces_recorded" not in disarmed.prometheus_extra()
        armed = TelemetryRegistry(armed_telemetry())
        assert armed.prometheus_extra()["traces_recorded"] == 0

    def test_server_stats_tracing_key_only_when_armed(self):
        base = {"transport": "tcp"}
        assert "tracing" not in TelemetryRegistry().server_stats(base)
        assert "tracing" not in (
            TelemetryRegistry(Telemetry()).server_stats(base)
        )
        stats = TelemetryRegistry(armed_telemetry()).server_stats(base)
        assert stats["tracing"]["armed"] is True
        assert stats["transport"] == "tcp"


# -- dispatcher integration ---------------------------------------------------


def _canonical(response: dict) -> str:
    return json.dumps(zero_timings(response), sort_keys=True)


class TestDispatcherDisarmed:
    def test_trace_flag_leaves_response_byte_identical(self):
        def cold_engine():
            e = Engine()
            e.register_dataset("paper", paper_like_answers())
            return e

        # Two cold engines so cache_hit flags agree; only the envelope
        # flag differs between the requests.
        plain = Dispatcher(cold_engine()).dispatch_payload(
            dict(SUMMARY_REQUEST)
        ).response
        flagged = Dispatcher(cold_engine()).dispatch_payload(
            {**SUMMARY_REQUEST, "trace": True}
        ).response
        assert "trace" not in flagged
        assert _canonical(flagged) == _canonical(plain)
        assert zero_timings(plain) == GOLDEN

    def test_trace_flag_must_be_boolean(self, engine):
        response = Dispatcher(engine).dispatch_payload(
            {**SUMMARY_REQUEST, "trace": "yes"}
        ).response
        assert response["kind"] == "error"
        assert response["error_type"] == "SchemaError"
        assert "trace must be a boolean" in response["message"]

    def test_trace_admin_kind_reports_disarmed_shape(self, engine):
        response = Dispatcher(engine).dispatch_payload(
            {"schema_version": 2, "kind": "trace"}
        ).response
        assert response == {
            "schema_version": 2, "kind": "trace", "armed": False,
            "capacity": 0, "recorded": 0, "recent": [], "slowest": [],
        }

    def test_stats_has_no_tracing_key(self, engine):
        response = Dispatcher(engine).dispatch_payload(
            {"schema_version": 2, "kind": "stats"}
        ).response
        assert "tracing" not in response.get("server", {})


class TestDispatcherArmed:
    def test_inline_trace_is_opt_in(self, engine):
        dispatcher = Dispatcher(engine, telemetry=armed_telemetry())
        # Cold request first, flagged, so it compares against the golden
        # file (which pins cache_hit false).
        flagged = dispatcher.dispatch_payload(
            {**SUMMARY_REQUEST, "trace": True}
        ).response
        silent = dispatcher.dispatch_payload(dict(SUMMARY_REQUEST)).response
        assert "trace" not in silent
        tree = flagged["trace"]
        assert tree["trace_id"] == "trace-0000-000001"
        assert tree["status"] == "ok"
        assert tree["kind"] == "summary"
        assert [s["name"] for s in tree["spans"]] == ["engine.request"]
        child_names = [
            c["name"] for c in tree["spans"][0]["children"]
        ]
        assert "engine.pool_build" in child_names
        assert "engine.solve" in child_names
        assert "engine.serialize" in child_names
        # Modulo the trace key, the armed response is the golden one.
        stripped = {k: v for k, v in flagged.items() if k != "trace"}
        assert zero_timings(stripped) == GOLDEN

    def test_solver_counters_ride_as_span_attributes(self, engine):
        dispatcher = Dispatcher(engine, telemetry=armed_telemetry())
        response = dispatcher.dispatch_payload(
            {**SUMMARY_REQUEST, "trace": True}
        ).response
        solve = next(
            c for c in response["trace"]["spans"][0]["children"]
            if c["name"] == "engine.solve"
        )
        assert solve["attributes"]["algorithm"] == "bottom-up"
        assert "argmax_rounds" in solve["attributes"]
        assert "kernel" in solve["attributes"]

    def test_error_requests_are_traced_with_error_status(self, engine):
        telemetry = armed_telemetry()
        dispatcher = Dispatcher(engine, telemetry=telemetry)
        response = dispatcher.dispatch_payload({
            "schema_version": 2, "kind": "summary",
            "dataset": "missing", "k": 2, "L": 4, "D": 1,
        }).response
        assert response["kind"] == "error"
        snap = telemetry.traces()
        assert snap["recorded"] == 1
        assert snap["recent"][0]["status"] == response["error_type"]

    def test_trace_admin_kind_serves_the_buffer(self, engine):
        telemetry = armed_telemetry()
        dispatcher = Dispatcher(engine, telemetry=telemetry)
        dispatcher.dispatch_payload(dict(SUMMARY_REQUEST))
        response = dispatcher.dispatch_payload(
            {"schema_version": 2, "kind": "trace"}
        ).response
        assert response["armed"] is True
        assert response["recorded"] == 1
        assert response["recent"][0]["trace_id"] == "trace-0000-000001"
        assert response["slowest"][0]["trace_id"] == "trace-0000-000001"

    def test_admin_kinds_are_not_traced(self, engine):
        telemetry = armed_telemetry()
        dispatcher = Dispatcher(engine, telemetry=telemetry)
        dispatcher.dispatch_payload({"schema_version": 2, "kind": "ping"})
        dispatcher.dispatch_payload({"schema_version": 2, "kind": "stats"})
        assert telemetry.traces()["recorded"] == 0

    def test_trace_admin_kind_is_auth_gated(self, engine):
        from repro.web.auth import AuthService

        dispatcher = Dispatcher(
            engine,
            auth=AuthService({"secret": "op"}),
            telemetry=armed_telemetry(),
        )
        denied = dispatcher.dispatch_payload(
            {"schema_version": 2, "kind": "trace"}
        ).response
        assert denied["error_type"] == "AuthError"
        granted = dispatcher.dispatch_payload(
            {"schema_version": 2, "kind": "trace", "auth": "secret"}
        ).response
        assert granted["armed"] is True

    def test_stats_grows_tracing_section_when_armed(self, engine):
        from repro.server.tcp import BackgroundServer, TCPServer

        telemetry = armed_telemetry()
        server = TCPServer(engine, telemetry=telemetry)
        with BackgroundServer(server) as handle:
            from repro.server.client import LineClient

            client = LineClient(handle.host, handle.port, timeout=60.0)
            try:
                client.request(dict(SUMMARY_REQUEST))
                stats = client.request(
                    {"schema_version": 2, "kind": "stats"}
                )
            finally:
                client.close()
        tracing = stats["server"]["tracing"]
        assert tracing["armed"] is True
        assert tracing["recorded"] == 1


class TestSchedulerTracing:
    def test_queue_and_worker_spans_with_coalesce_linkage(self, engine):
        telemetry = armed_telemetry()
        release = threading.Event()

        def gated_submit(payload):
            release.wait(timeout=30.0)
            return engine.submit_dict(payload)

        scheduler = ShardedScheduler(
            gated_submit, shards=1, workers_per_shard=1,
            telemetry=telemetry,
        )
        try:
            dispatcher = Dispatcher(
                engine, submit=scheduler.submit, telemetry=telemetry
            )
            leader_future = dispatcher.dispatch_payload(
                {**SUMMARY_REQUEST, "trace": True}
            ).response
            follower_future = dispatcher.dispatch_payload(
                {**SUMMARY_REQUEST, "trace": True}
            ).response
            release.set()
            leader = leader_future.result(timeout=30.0)
            follower = follower_future.result(timeout=30.0)
        finally:
            release.set()
            scheduler.stop()
        leader_tree, follower_tree = leader["trace"], follower["trace"]
        assert leader_tree["trace_id"] != follower_tree["trace_id"]
        # The leader computed: queue wait and worker compute both spanned.
        names = [s["name"] for s in leader_tree["spans"]]
        assert "scheduler.queue" in names
        assert "scheduler.worker" in names
        worker = next(
            s for s in leader_tree["spans"]
            if s["name"] == "scheduler.worker"
        )
        assert worker["children"][0]["name"] == "engine.request"
        assert "coalesced" not in leader_tree["annotations"]
        # The follower waited on the leader's flight: no spans of its
        # own, but a durable link to the trace that did the work.
        assert follower_tree["annotations"]["coalesced"] is True
        assert follower_tree["annotations"]["leader_trace_id"] == (
            leader_tree["trace_id"]
        )
        # Both responses carry identical payloads modulo the trace key.
        assert _canonical(
            {k: v for k, v in leader.items() if k != "trace"}
        ) == _canonical(
            {k: v for k, v in follower.items() if k != "trace"}
        )


# -- the slow-request investigation (acceptance criterion) --------------------


class TestSlowRequestInvestigation:
    def test_latency_fault_localizes_to_scheduler_worker(self, engine):
        """One shared Telemetry, both concurrent transports: a seeded
        latency fault at ``scheduler.worker`` must surface in the
        slowest-N with the delay on that span, via the TCP ``trace``
        admin kind *and* ``POST /v2/admin/trace``, and the structured
        log must carry the same trace_id."""
        from repro.server.client import LineClient
        from repro.server.tcp import BackgroundServer, TCPServer
        from repro.web.http import BackgroundWebServer, WebServer

        sink = io.StringIO()
        telemetry = armed_telemetry(logger=StructuredLogger(sink))
        tcp = TCPServer(engine, shards=1, telemetry=telemetry)
        web = BackgroundWebServer(
            WebServer(engine, port=0, telemetry=telemetry)
        ).start()
        try:
            with BackgroundServer(tcp) as handle:
                client = LineClient(handle.host, handle.port, timeout=60.0)
                try:
                    # First request eats a 200 ms injected stall inside
                    # the worker; the second runs clean for contrast.
                    faults.arm(
                        "scheduler.worker", "latency", param=200, times=1,
                    )
                    slow = client.request(dict(SUMMARY_REQUEST))
                    fast = client.request({
                        **SUMMARY_REQUEST, "k": 3, "D": 0,
                    })
                    assert slow["kind"] == "summary_response"
                    assert fast["kind"] == "summary_response"
                    over_tcp = client.request(
                        {"schema_version": 2, "kind": "trace"}
                    )
                finally:
                    client.close()
            connection = http.client.HTTPConnection(
                web.host, web.port, timeout=60.0
            )
            try:
                connection.request(
                    "POST", "/v2/admin/trace", body=b"{}",
                    headers={"Content-Type": "application/json"},
                )
                over_http = json.loads(connection.getresponse().read())
            finally:
                connection.close()
        finally:
            web.stop()
        # Both transports serve the same shared ring buffer.
        assert over_tcp["armed"] is True
        assert over_tcp["recorded"] == 2
        slowest = over_tcp["slowest"][0]
        assert slowest["duration_seconds"] >= 0.2
        worker = next(
            s for s in slowest["spans"] if s["name"] == "scheduler.worker"
        )
        queue = next(
            s for s in slowest["spans"] if s["name"] == "scheduler.queue"
        )
        # The delay is attributed to the worker window (the fault site
        # sits inside it), not to queue wait.
        assert worker["duration_seconds"] >= 0.2
        assert queue["duration_seconds"] < 0.2
        assert over_http["slowest"][0]["trace_id"] == slowest["trace_id"]
        assert over_http["recorded"] == over_tcp["recorded"]
        # The structured log's completion record carries the trace_id.
        records = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        completions = [r for r in records if r["event"] == "request"]
        assert slowest["trace_id"] in {
            r["trace_id"] for r in completions
        }
        slow_record = next(
            r for r in completions
            if r["trace_id"] == slowest["trace_id"]
        )
        assert slow_record["status"] == "ok"
        assert slow_record["duration_seconds"] >= 0.2


# -- HTTP request ids ---------------------------------------------------------


class TestHttpRequestIds:
    def test_x_request_id_becomes_the_trace_id(self, engine):
        from repro.web.http import BackgroundWebServer, WebServer

        telemetry = armed_telemetry()
        web = BackgroundWebServer(
            WebServer(engine, port=0, telemetry=telemetry)
        ).start()
        try:
            connection = http.client.HTTPConnection(
                web.host, web.port, timeout=60.0
            )
            try:
                connection.request(
                    "POST", "/v2/summary",
                    body=json.dumps({**SUMMARY_REQUEST, "trace": True}),
                    headers={
                        "Content-Type": "application/json",
                        "X-Request-Id": "req-abc-123",
                    },
                )
                first = json.loads(connection.getresponse().read())
                # A garbage header falls back to the generator; a later
                # request on the same (reused) handler thread must not
                # inherit the previous id.
                connection.request(
                    "POST", "/v2/summary",
                    body=json.dumps({**SUMMARY_REQUEST, "trace": True}),
                    headers={
                        "Content-Type": "application/json",
                        "X-Request-Id": "bad id\twith control",
                    },
                )
                second = json.loads(connection.getresponse().read())
            finally:
                connection.close()
        finally:
            web.stop()
        assert first["trace"]["trace_id"] == "req-abc-123"
        assert second["trace"]["trace_id"].startswith("trace-")

    def test_clean_request_id_rules(self):
        from repro.web.http import _clean_request_id

        assert _clean_request_id("req-1") == "req-1"
        assert _clean_request_id("  padded  ") == "padded"
        assert _clean_request_id(None) is None
        assert _clean_request_id("") is None
        assert _clean_request_id("a" * 200) is None
        assert _clean_request_id("has space") is None
        assert _clean_request_id("ctrl\x01char") is None


# -- scenario rollups ---------------------------------------------------------


class TestScenarioSpanRollup:
    def _trace(self, kind, duration, queue, compute, coalesced=False):
        spans = []
        if queue:
            spans.append({
                "name": "scheduler.queue", "duration_seconds": queue,
                "children": [],
            })
        if compute:
            spans.append({
                "name": "scheduler.worker", "duration_seconds": compute,
                "children": [],
            })
        return {
            "kind": kind,
            "duration_seconds": duration,
            "annotations": {"coalesced": True} if coalesced else {},
            "spans": spans,
        }

    def test_split_and_overhead_percentile(self):
        from repro.scenarios.runner import span_rollup

        rollup = span_rollup([
            self._trace("summary", 1.0, queue=0.2, compute=0.8),
            self._trace("summary", 1.0, queue=0.5, compute=0.5),
            self._trace("explore", 0.5, queue=0.1, compute=0.4),
        ])
        assert rollup["summary"]["traces"] == 2
        assert rollup["summary"]["queue_seconds"] == pytest.approx(0.7)
        assert rollup["summary"]["compute_seconds"] == pytest.approx(1.3)
        assert rollup["summary"]["overhead_p95"] == pytest.approx(0.5)
        assert rollup["explore"]["overhead_p95"] == pytest.approx(0.2)

    def test_coalesced_followers_excluded_from_overhead(self):
        from repro.scenarios.runner import span_rollup

        rollup = span_rollup([
            self._trace("summary", 1.0, queue=0.0, compute=0.9),
            self._trace("summary", 1.0, queue=0.0, compute=0.0,
                        coalesced=True),
        ])
        # The follower still counts in the split totals but its 100%
        # "overhead" (it never computes) must not poison the percentile.
        assert rollup["summary"]["traces"] == 2
        assert rollup["summary"]["overhead_p95"] == pytest.approx(
            0.1, abs=1e-9
        )

    def test_stdio_traces_fall_back_to_engine_request(self):
        from repro.scenarios.runner import span_rollup

        rollup = span_rollup([{
            "kind": "summary", "duration_seconds": 1.0,
            "annotations": {},
            "spans": [{
                "name": "engine.request", "duration_seconds": 0.75,
                "children": [],
            }],
        }])
        assert rollup["summary"]["compute_seconds"] == pytest.approx(0.75)
        assert rollup["summary"]["overhead_p95"] == pytest.approx(0.25)

    def test_max_p95_overhead_floor(self):
        from repro.scenarios.report import evaluate_floors

        report = {
            "spec": {"floors": {"max_p95_overhead": 0.5}},
            "spans": {"summary": {"overhead_p95": 0.8}},
        }
        violations = evaluate_floors(report)
        assert len(violations) == 1
        assert "overhead" in violations[0]
        report["spans"]["summary"]["overhead_p95"] = 0.3
        assert evaluate_floors(report) == []
