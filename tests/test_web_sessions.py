"""Tests for the durable session store: atomicity, corruption, LRU, service."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.common.errors import (
    InvalidParameterError,
    SchemaError,
    UnknownSessionError,
)
from repro.service import Engine
from repro.service.serve import Dispatcher
from repro.web import SessionRecord, SessionService, SessionStore
from tests.conftest import paper_like_answers

BASE = {"schema_version": 2, "kind": "summary", "dataset": "paper",
        "k": 2, "L": 4, "D": 1}


def make_record(name="expl", user="alice", **base_overrides):
    return SessionRecord(
        name=name, user=user, base=dict(BASE, **base_overrides),
        created_at=1.0, updated_at=1.0,
    )


def make_service(tmp_path, **store_kwargs):
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    store = SessionStore(tmp_path / "sessions", **store_kwargs)
    return SessionService(store, Dispatcher(engine)), store


class TestSessionStore:
    def test_save_load_roundtrip(self, tmp_path):
        store = SessionStore(tmp_path)
        record = make_record()
        store.save(record)
        fresh = SessionStore(tmp_path)  # cold cache: reads the file
        loaded = fresh.load("alice", "expl")
        assert loaded is not None
        assert loaded.to_dict() == record.to_dict()

    def test_missing_session_is_none(self, tmp_path):
        store = SessionStore(tmp_path)
        assert store.load("alice", "nope") is None
        assert store.stats()["corrupted"] == 0

    def test_save_is_atomic_no_temp_litter(self, tmp_path):
        store = SessionStore(tmp_path)
        for step in range(5):
            record = make_record(k=2 + step % 3)
            store.save(record)
        directory = tmp_path / "alice"
        assert sorted(p.name for p in directory.iterdir()) == ["expl.json"]
        # The on-disk bytes are always a complete, parseable record.
        payload = json.loads((directory / "expl.json").read_text())
        assert payload["name"] == "expl"

    def test_corrupted_file_served_as_not_found_and_counted(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save(make_record())
        path = tmp_path / "alice" / "expl.json"
        path.write_text("{torn write")
        fresh = SessionStore(tmp_path)
        assert fresh.load("alice", "expl") is None
        assert fresh.stats()["corrupted"] == 1

    def test_wrong_shape_counts_as_corrupted(self, tmp_path):
        store = SessionStore(tmp_path)
        path = tmp_path / "alice"
        path.mkdir()
        (path / "expl.json").write_text('{"name": "expl"}')  # missing fields
        assert store.load("alice", "expl") is None
        assert store.stats()["corrupted"] == 1
        (path / "list.json").write_text('[1, 2]')  # not even an object
        assert store.load("alice", "list") is None
        assert store.stats()["corrupted"] == 2

    def test_lru_cache_is_bounded(self, tmp_path):
        store = SessionStore(tmp_path, cache_size=2)
        for index in range(4):
            store.save(make_record(name="s%d" % index))
        assert store.stats()["cached"] == 2
        # Evicted entries still load — from disk.
        assert store.load("alice", "s0") is not None

    def test_delete(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save(make_record())
        assert store.delete("alice", "expl") is True
        assert store.load("alice", "expl") is None
        assert store.delete("alice", "expl") is False

    def test_list_ignores_dotfiles(self, tmp_path):
        store = SessionStore(tmp_path)
        store.save(make_record(name="b"))
        store.save(make_record(name="a"))
        (tmp_path / "alice" / ".hidden.json").write_text("{}")
        assert store.list("alice") == ["a", "b"]
        assert store.list("nobody") == []

    def test_path_traversal_names_rejected(self, tmp_path):
        store = SessionStore(tmp_path)
        with pytest.raises(SchemaError):
            store.load("alice", "../../etc/passwd")
        with pytest.raises(SchemaError):
            store.load("..", "expl")


class TestSessionRecord:
    def test_from_dict_rejects_malformed(self):
        with pytest.raises(SchemaError):
            SessionRecord.from_dict("not a dict")
        with pytest.raises(SchemaError):
            SessionRecord.from_dict({"name": "x"})
        with pytest.raises(SchemaError):
            SessionRecord.from_dict({
                "name": "x", "user": "u", "base": "not-a-dict",
                "steps": [], "created_at": 0, "updated_at": 0,
            })


class TestSessionService:
    def test_create_requires_analytic_base(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(SchemaError):
            service.create("alice", "expl", {"kind": "ping"})
        with pytest.raises(SchemaError):
            service.create("alice", "expl", dict(BASE, kind="shutdown"))
        with pytest.raises(SchemaError):
            service.create("alice", "expl", "not a dict")
        with pytest.raises(SchemaError):
            service.create(
                "alice", "expl",
                {"kind": "summary"},  # no dataset
            )

    def test_create_then_duplicate(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.create("alice", "expl", dict(BASE))
        with pytest.raises(InvalidParameterError):
            service.create("alice", "expl", dict(BASE))

    def test_step_advances_only_on_success(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.create("alice", "expl", dict(BASE))
        good = service.step("alice", "expl", {"k": 3})
        assert good["kind"] == "summary_response"
        assert good["k"] == 3
        bad = service.step("alice", "expl", {"k": "three"})
        assert bad["kind"] == "error"
        record = service.get("alice", "expl")
        assert record.base["k"] == 3
        assert len(record.steps) == 1

    def test_step_none_override_unsets_key(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.create(
            "alice", "expl", dict(BASE, algorithm="bottom-up")
        )
        service.step("alice", "expl", {"algorithm": None})
        assert "algorithm" not in service.get("alice", "expl").base

    def test_step_cannot_change_to_non_analytic_kind(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.create("alice", "expl", dict(BASE))
        with pytest.raises(SchemaError):
            service.step("alice", "expl", {"kind": "shutdown"})

    def test_unknown_session_raises(self, tmp_path):
        service, _ = make_service(tmp_path)
        with pytest.raises(UnknownSessionError):
            service.get("alice", "nope")
        with pytest.raises(UnknownSessionError):
            service.step("alice", "nope", {})
        with pytest.raises(UnknownSessionError):
            service.delete("alice", "nope")

    def test_concurrent_steps_serialize(self, tmp_path):
        """Parallel steps on one session never lose an update: every
        step lands in the history exactly once."""
        service, _ = make_service(tmp_path)
        service.create("alice", "expl", dict(BASE))
        errors: list[Exception] = []

        def drill(k: int):
            try:
                service.step("alice", "expl", {"k": k})
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=drill, args=(2 + index % 3,))
            for index in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        record = service.get("alice", "expl")
        assert len(record.steps) == 6

    def test_crash_between_saves_keeps_previous_version(self, tmp_path):
        """Simulated torn save: os.replace never ran, so the original
        file still loads."""
        store = SessionStore(tmp_path)
        record = make_record()
        store.save(record)
        # A crashed writer leaves a temp file behind; it must be ignored
        # by list() and load() alike.
        litter = tmp_path / "alice" / ".expl-crash.tmp"
        litter.write_text("{half a reco")
        fresh = SessionStore(tmp_path)
        assert fresh.load("alice", "expl").base == record.base
        assert fresh.list("alice") == ["expl"]
        os.unlink(litter)
