"""Tests for the centered interval tree, incl. hypothesis vs naive scan."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import InvalidParameterError
from repro.interactive.interval_tree import Interval, IntervalTree


class TestInterval:
    def test_contains_endpoints(self):
        interval = Interval(2, 5, "x")
        assert interval.contains(2)
        assert interval.contains(5)
        assert not interval.contains(1)
        assert not interval.contains(6)

    def test_inverted_interval_rejected(self):
        with pytest.raises(InvalidParameterError):
            Interval(5, 2, "x")

    def test_point_interval(self):
        assert Interval(3, 3, "x").contains(3)


class TestIntervalTree:
    def test_empty_tree(self):
        tree = IntervalTree([])
        assert len(tree) == 0
        assert tree.stab(5) == []

    def test_single_interval(self):
        tree = IntervalTree([Interval(1, 10, "a")])
        assert tree.stab_payloads(5) == ["a"]
        assert tree.stab_payloads(11) == []

    def test_disjoint_intervals(self):
        tree = IntervalTree(
            [Interval(0, 2, "a"), Interval(5, 7, "b"), Interval(9, 9, "c")]
        )
        assert tree.stab_payloads(1) == ["a"]
        assert tree.stab_payloads(6) == ["b"]
        assert tree.stab_payloads(9) == ["c"]
        assert tree.stab_payloads(4) == []

    def test_nested_intervals(self):
        tree = IntervalTree(
            [Interval(0, 10, "outer"), Interval(3, 5, "inner")]
        )
        assert set(tree.stab_payloads(4)) == {"outer", "inner"}
        assert tree.stab_payloads(8) == ["outer"]

    def test_depth_logarithmic(self):
        intervals = [Interval(i, i + 2, i) for i in range(0, 512, 1)]
        tree = IntervalTree(intervals)
        assert tree.depth() <= 12  # ~log2(513) + slack

    def test_intervals_accessor(self):
        items = [Interval(1, 2, "a"), Interval(0, 9, "b")]
        tree = IntervalTree(items)
        assert tree.intervals() == items


interval_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=50),
    ).map(lambda pair: (min(pair), max(pair))),
    min_size=0,
    max_size=40,
)


@given(interval_lists, st.integers(min_value=-5, max_value=55))
def test_stab_matches_naive_scan(raw, point):
    intervals = [
        Interval(low, high, index) for index, (low, high) in enumerate(raw)
    ]
    tree = IntervalTree(intervals)
    expected = sorted(
        iv.payload for iv in intervals if iv.low <= point <= iv.high
    )
    assert sorted(tree.stab_payloads(point)) == expected


@given(interval_lists)
def test_every_interval_stabbable_at_endpoints(raw):
    intervals = [
        Interval(low, high, index) for index, (low, high) in enumerate(raw)
    ]
    tree = IntervalTree(intervals)
    for interval in intervals:
        assert interval.payload in tree.stab_payloads(interval.low)
        assert interval.payload in tree.stab_payloads(interval.high)
