"""Property tests for the lazy upper-bound heap argmax.

The tentpole contract: ``argmax="heap"`` and ``argmax="scan"`` produce
*bit-identical* solutions.  On dyadic-rational values every partial sum is
exact in binary floating point, so the tests can demand exact equality of
patterns and objectives — any unsound bound (a pruned group that could
still have won or tied) shows up as a different merge trajectory.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.bottom_up import bottom_up, bottom_up_level_start
from repro.core.fixed_order import fixed_order
from repro.core.hybrid import hybrid
from repro.core.merge import (
    ARGMAX_MODES,
    HEAP_ARGMAX,
    MergeEngine,
    SCAN_ARGMAX,
    resolve_argmax,
)
from repro.core.semilattice import ClusterPool
from repro.interactive.precompute import SolutionStore
from tests.conftest import random_answer_set
from tests.test_algorithm_properties import dyadic_instances


@settings(max_examples=60, deadline=None)
@given(dyadic_instances())
def test_heap_and_scan_bit_identical_bottom_up(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    by_heap = bottom_up(pool, k, D, argmax="heap")
    by_scan = bottom_up(pool, k, D, argmax="scan")
    assert by_heap.patterns() == by_scan.patterns()
    assert by_heap.avg == by_scan.avg
    assert by_heap.stats["argmax_heap"] == 1.0
    assert by_scan.stats["argmax_heap"] == 0.0


@settings(max_examples=40, deadline=None)
@given(dyadic_instances())
def test_heap_and_scan_bit_identical_hybrid_and_variants(instance):
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    for runner in (
        lambda am: hybrid(pool, k, D, argmax=am),
        lambda am: bottom_up_level_start(pool, k, D, argmax=am),
        lambda am: fixed_order(pool, k, D, argmax=am),
        lambda am: bottom_up(pool, k, D, use_delta=False, argmax=am),
    ):
        by_heap = runner("heap")
        by_scan = runner("scan")
        assert by_heap.patterns() == by_scan.patterns()
        assert by_heap.avg == by_scan.avg


@settings(max_examples=30, deadline=None)
@given(dyadic_instances())
def test_heap_matches_python_kernel_scan(instance):
    """Transitively: heap (bitset) == scan (bitset) == python kernel."""
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    by_heap = bottom_up(pool, k, D, kernel="bitset", argmax="heap")
    by_python = bottom_up(pool, k, D, kernel="python")
    assert by_heap.patterns() == by_python.patterns()


@settings(max_examples=20, deadline=None)
@given(dyadic_instances())
def test_heap_and_scan_identical_precompute_sweeps(instance):
    """The (k, D)-sweep — many argmax rounds from one cloned engine per D —
    retrieves identical solutions and objective tables in both modes."""
    answers, k, L, D = instance
    pool = ClusterPool(answers, L=L)
    k_range = (1, max(2, min(k, 5)))
    d_values = tuple(sorted({0, D}))
    by_heap = SolutionStore(pool, k_range, d_values, argmax="heap")
    by_scan = SolutionStore(pool, k_range, d_values, argmax="scan")
    for d_value in d_values:
        for k_value in range(k_range[0], k_range[1] + 1):
            assert (
                by_heap.objective(k_value, d_value)
                == by_scan.objective(k_value, d_value)
            )
            assert (
                by_heap.retrieve(k_value, d_value).patterns()
                == by_scan.retrieve(k_value, d_value).patterns()
            )


class TestArgmaxResolution:
    def test_auto_resolves_to_heap_on_bitset_nonnegative(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=1)
        assert resolve_argmax(None, "bitset", answers) == HEAP_ARGMAX
        assert resolve_argmax("auto", "bitset", answers) == HEAP_ARGMAX

    def test_auto_falls_back_to_scan_on_python_kernel(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=1)
        assert resolve_argmax(None, "python", answers) == SCAN_ARGMAX

    def test_auto_falls_back_to_scan_on_negative_values(self):
        answers = AnswerSet(
            [(0, 0), (0, 1), (1, 0)], [2.0, -1.0, 1.0]
        )
        assert resolve_argmax(None, "bitset", answers) == SCAN_ARGMAX
        pool = ClusterPool(answers, L=2)
        engine = MergeEngine(pool, (pool.singleton(i) for i in range(2)))
        assert engine.argmax == SCAN_ARGMAX

    def test_explicit_heap_rejected_on_python_kernel(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=1)
        with pytest.raises(InvalidParameterError, match="bitset"):
            resolve_argmax("heap", "python", answers)

    def test_explicit_heap_rejected_on_negative_values(self):
        answers = AnswerSet([(0, 0), (0, 1)], [2.0, -1.0])
        with pytest.raises(InvalidParameterError, match="non-negative"):
            resolve_argmax("heap", "bitset", answers)

    def test_unknown_mode_rejected(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=1)
        with pytest.raises(InvalidParameterError, match="argmax"):
            resolve_argmax("bogus", "bitset", answers)
        assert set(ARGMAX_MODES) == {"auto", "heap", "scan"}


class TestArgmaxStats:
    def test_heap_evaluates_fewer_groups_than_scan(self):
        answers = random_answer_set(n=400, m=4, domain=6, seed=9)
        pool = ClusterPool(answers, L=40)
        by_heap = bottom_up(pool, 5, 2, argmax="heap")
        by_scan = bottom_up(pool, 5, 2, argmax="scan")
        assert by_heap.patterns() == by_scan.patterns()
        # The scan evaluates every candidate group it reports; the heap
        # must do strictly less work on a non-trivial instance.
        assert by_scan.stats["argmax_evals"] == by_scan.stats["argmax_groups"]
        assert by_heap.stats["argmax_evals"] < by_scan.stats["argmax_evals"]

    def test_service_reports_argmax_counters(self):
        from repro.service import Engine, SummaryRequest

        answers = random_answer_set(n=60, m=4, domain=4, seed=2)
        engine = Engine()
        engine.register_dataset("d", answers)
        response = engine.submit(SummaryRequest(
            dataset="d", k=4, L=10, D=1, algorithm="bottom-up",
            options={"argmax": "scan"},
        ))
        assert response.phase_seconds["argmax_heap"] == 0.0
        assert response.phase_seconds["argmax_rounds"] >= 1.0
        warm = engine.submit(SummaryRequest(
            dataset="d", k=4, L=10, D=1, algorithm="bottom-up",
        ))
        assert warm.phase_seconds["argmax_heap"] == 1.0
        assert warm.objective == response.objective
