"""Tests for per-user quotas: window refill, races, isolation, costs."""

from __future__ import annotations

import threading

import pytest

from repro.common.errors import InvalidParameterError, QuotaExceeded
from repro.web import QuotaService, parse_quota_spec


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestQuotaService:
    def test_charges_until_empty_then_429(self):
        quota = QuotaService(3, 60.0, clock=FakeClock())
        assert quota.charge("alice") == 2
        assert quota.charge("alice") == 1
        assert quota.charge("alice") == 0
        with pytest.raises(QuotaExceeded):
            quota.charge("alice")
        stats = quota.stats()
        assert (stats["granted"], stats["rejected"]) == (3, 1)

    def test_refill_across_reset_boundary(self):
        """A drained bucket snaps back to capacity exactly when the clock
        crosses the window boundary — not a second before."""
        clock = FakeClock(10.0)
        quota = QuotaService(2, 60.0, clock=clock)
        quota.charge("alice")
        quota.charge("alice")
        clock.now = 59.999  # same window: still empty
        with pytest.raises(QuotaExceeded):
            quota.charge("alice")
        assert quota.remaining("alice") == 0
        clock.now = 60.0  # boundary: full bucket
        assert quota.remaining("alice") == 2
        assert quota.charge("alice") == 1

    def test_rejection_leaves_bucket_untouched(self):
        quota = QuotaService(2, 60.0, clock=FakeClock(),
                             costs={"summary": 3, "explore": 1})
        with pytest.raises(QuotaExceeded):
            quota.charge("alice", "summary")  # cost 3 > capacity 2
        # The failed charge spent nothing: two explores still fit.
        assert quota.charge("alice", "explore") == 1
        assert quota.charge("alice", "explore") == 0

    def test_per_user_isolation(self):
        quota = QuotaService(1, 60.0, clock=FakeClock())
        quota.charge("alice")
        with pytest.raises(QuotaExceeded):
            quota.charge("alice")
        # Bob's bucket is untouched by Alice's exhaustion.
        assert quota.charge("bob") == 0

    def test_concurrent_race_for_last_token(self):
        """Many threads racing one remaining token: exactly one wins."""
        quota = QuotaService(1, 3600.0, clock=FakeClock())
        barrier = threading.Barrier(8)
        outcomes: list[bool] = []
        lock = threading.Lock()

        def contend():
            barrier.wait()
            try:
                quota.charge("alice")
                won = True
            except QuotaExceeded:
                won = False
            with lock:
                outcomes.append(won)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 1
        assert len(outcomes) == 8
        stats = quota.stats()
        assert (stats["granted"], stats["rejected"]) == (1, 7)

    def test_unknown_kind_costs_one(self):
        quota = QuotaService(5, 60.0, clock=FakeClock(),
                             costs={"summary": 2})
        assert quota.charge("alice", "guidance") == 4
        assert quota.charge("alice", "summary") == 2
        assert quota.charge("alice", None) == 1

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            QuotaService(0, 60.0)
        with pytest.raises(InvalidParameterError):
            QuotaService(1, 0.0)


class TestParseQuotaSpec:
    def test_valid(self):
        assert parse_quota_spec("60/60") == (60, 60.0)
        assert parse_quota_spec("100/1.5") == (100, 1.5)

    @pytest.mark.parametrize("bad", ["60", "a/60", "60/b", "/", ""])
    def test_invalid(self, bad):
        with pytest.raises(InvalidParameterError):
            parse_quota_spec(bad)
