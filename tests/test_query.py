"""Tests for the relational substrate: relations, joins, aggregation."""

from __future__ import annotations

import pytest

from repro.common.errors import QueryError, SchemaError
from repro.query.aggregate import AggregateQuery, run_aggregate
from repro.query.relation import Database, Relation


@pytest.fixture
def people() -> Relation:
    return Relation(
        "people",
        ("name", "dept", "age", "salary"),
        [
            ("ann", "eng", 31, 120.0),
            ("bob", "eng", 45, 110.0),
            ("cat", "ops", 29, 90.0),
            ("dan", "ops", 35, 95.0),
            ("eve", "eng", 31, 130.0),
        ],
    )


class TestRelation:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "a"))

    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "b"), [(1,)])

    def test_unknown_column(self, people):
        with pytest.raises(SchemaError):
            people.column_index("nope")

    def test_select_predicate(self, people):
        young = people.select(lambda r: r["age"] < 32)
        assert len(young) == 3

    def test_where_equal(self, people):
        eng = people.where_equal("dept", "eng")
        assert {row[0] for row in eng.rows} == {"ann", "bob", "eve"}

    def test_project(self, people):
        names = people.project(["name"])
        assert names.columns == ("name",)
        assert len(names) == 5

    def test_rename(self, people):
        renamed = people.rename({"dept": "department"})
        assert "department" in renamed.columns
        assert "dept" not in renamed.columns

    def test_derive(self, people):
        derived = people.derive("age_group", lambda r: (r["age"] // 10) * 10)
        assert derived.columns[-1] == "age_group"
        assert derived.rows[0][-1] == 30

    def test_derive_existing_column_rejected(self, people):
        with pytest.raises(SchemaError):
            people.derive("age", lambda r: 0)

    def test_distinct_values(self, people):
        assert people.distinct_values("dept") == ["'eng'", "'ops'"] or \
            people.distinct_values("dept") == ["eng", "ops"]

    def test_join(self, people):
        departments = Relation(
            "departments",
            ("dept_name", "floor"),
            [("eng", 2), ("ops", 3)],
        )
        joined = people.join(departments, on=[("dept", "dept_name")])
        assert len(joined) == 5
        assert "floor" in joined.columns
        assert "dept_name" not in joined.columns

    def test_join_duplicate_columns_rejected(self, people):
        other = Relation("other", ("name", "dept"), [("x", "eng")])
        with pytest.raises(SchemaError):
            people.join(other, on=[("dept", "dept")])

    def test_join_empty_on_rejected(self, people):
        with pytest.raises(SchemaError):
            people.join(people.rename({"name": "n2", "dept": "d2",
                                       "age": "a2", "salary": "s2"}), on=[])

    def test_head(self, people):
        assert len(people.head(2)) == 2


class TestDatabase:
    def test_add_get(self, people):
        db = Database()
        db.add(people)
        assert db.get("people") is people
        assert "people" in db
        assert db.names() == ["people"]

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Database().get("missing")


class TestAggregation:
    def test_group_by_avg(self, people):
        query = AggregateQuery(group_by=("dept",), aggregate="avg",
                               target="salary")
        result = run_aggregate(people, query)
        as_dict = dict(zip([g[0] for g in result.groups], result.values))
        assert as_dict["eng"] == pytest.approx(120.0)
        assert as_dict["ops"] == pytest.approx(92.5)

    def test_order_desc_default(self, people):
        query = AggregateQuery(group_by=("dept",), aggregate="avg",
                               target="salary")
        result = run_aggregate(people, query)
        assert result.values == sorted(result.values, reverse=True)

    def test_order_asc(self, people):
        query = AggregateQuery(group_by=("dept",), aggregate="avg",
                               target="salary", descending=False)
        result = run_aggregate(people, query)
        assert result.values == sorted(result.values)

    def test_having_count(self, people):
        query = AggregateQuery(group_by=("age",), aggregate="avg",
                               target="salary", having_count_gt=1)
        result = run_aggregate(people, query)
        assert result.groups == [(31,)]

    def test_where_filters(self, people):
        query = AggregateQuery(
            group_by=("dept",), aggregate="count", target=None,
            where=(("age", ">", 30),),
        )
        result = run_aggregate(people, query)
        as_dict = dict(zip([g[0] for g in result.groups], result.values))
        assert as_dict == {"eng": 3.0, "ops": 1.0}

    def test_limit(self, people):
        query = AggregateQuery(group_by=("name",), aggregate="avg",
                               target="salary", limit=2)
        result = run_aggregate(people, query)
        assert result.n == 2

    def test_sum_min_max_median(self, people):
        for aggregate, expected_eng in [
            ("sum", 360.0), ("min", 110.0), ("max", 130.0), ("median", 120.0),
        ]:
            query = AggregateQuery(group_by=("dept",), aggregate=aggregate,
                                   target="salary")
            result = run_aggregate(people, query)
            as_dict = dict(zip([g[0] for g in result.groups], result.values))
            assert as_dict["eng"] == pytest.approx(expected_eng), aggregate

    def test_to_answer_set(self, people):
        query = AggregateQuery(group_by=("dept", "age"), aggregate="avg",
                               target="salary")
        answers = run_aggregate(people, query).to_answer_set()
        assert answers.m == 2
        assert answers.values == sorted(answers.values, reverse=True)

    def test_to_relation(self, people):
        query = AggregateQuery(group_by=("dept",), aggregate="avg",
                               target="salary")
        relation = run_aggregate(people, query).to_relation()
        assert relation.columns == ("dept", "val")

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(QueryError):
            AggregateQuery(group_by=("a",), aggregate="stdev", target="x")

    def test_missing_target_rejected(self):
        with pytest.raises(QueryError):
            AggregateQuery(group_by=("a",), aggregate="avg", target=None)

    def test_empty_group_by_rejected(self):
        with pytest.raises(QueryError):
            AggregateQuery(group_by=(), aggregate="avg", target="x")

    def test_unknown_where_column_rejected(self, people):
        query = AggregateQuery(
            group_by=("dept",), aggregate="avg", target="salary",
            where=(("ghost", "=", 1),),
        )
        with pytest.raises(SchemaError):
            run_aggregate(people, query)
