"""Tests for the user-study simulation (Section 8)."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.problem import summarize
from repro.datasets.loader import synthetic_answer_set
from repro.userstudy.metrics import (
    HIGH,
    LOW,
    TOP,
    categorize,
    mean_std,
    t_accuracy,
    th_accuracy,
)
from repro.userstudy.patterns import from_solution
from repro.userstudy.simulator import (
    SECTIONS,
    StudyArm,
    run_task_group,
    simulate_preferences,
)
from repro.userstudy.study import format_table, run_study


@pytest.fixture(scope="module")
def study_answers():
    # domain_size=4 keeps top elements similar enough that the distance
    # constraint binds, so the D=1 and D=3 arms genuinely differ.
    return synthetic_answer_set(300, m=5, domain_size=4, seed=3)


class TestMetrics:
    def test_categorize_boundaries(self, study_answers):
        labels = categorize(study_answers, L=20)
        average = study_answers.avg_all()
        assert labels[:20] == [TOP] * 20
        for rank in range(20, study_answers.n):
            expected = HIGH if study_answers.values[rank] >= average else LOW
            assert labels[rank] == expected

    def test_t_accuracy(self):
        truths = [TOP, TOP, HIGH, LOW]
        predictions = [TOP, HIGH, LOW, LOW]
        # positives: TOP.  TP=1 FN=1 TN=2 FP=0 -> 3/4.
        assert t_accuracy(truths, predictions) == pytest.approx(0.75)

    def test_th_accuracy(self):
        truths = [TOP, HIGH, LOW, LOW]
        predictions = [HIGH, LOW, LOW, TOP]
        # positives: TOP|HIGH.  TP=1 FN=1 TN=1 FP=1 -> 2/4.
        assert th_accuracy(truths, predictions) == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            t_accuracy([TOP], [])

    def test_mean_std(self):
        mean, std = mean_std([2.0, 4.0])
        assert mean == pytest.approx(3.0)
        assert std == pytest.approx(1.0)


class TestTaskGroup:
    @pytest.fixture(scope="class")
    def arm(self, study_answers):
        solution = summarize(study_answers, k=8, L=30, D=1)
        return StudyArm(
            name="ours",
            patterns=tuple(from_solution(solution, study_answers, 30)),
        )

    def test_all_sections_reported(self, study_answers, arm):
        result = run_task_group(study_answers, 30, arm, n_subjects=8, seed=5)
        assert set(result.sections) == set(SECTIONS)

    def test_deterministic_given_seed(self, study_answers, arm):
        a = run_task_group(study_answers, 30, arm, n_subjects=6, seed=9)
        b = run_task_group(study_answers, 30, arm, n_subjects=6, seed=9)
        for section in SECTIONS:
            assert a.sections[section] == b.sections[section]

    def test_members_section_most_accurate(self, study_answers, arm):
        result = run_task_group(study_answers, 30, arm, n_subjects=12, seed=5)
        members = result.sections["patterns+members"]
        patterns_only = result.sections["patterns-only"]
        assert members.t_accuracy_mean >= patterns_only.t_accuracy_mean - 0.05
        assert members.t_accuracy_mean > 0.85

    def test_memory_section_fastest(self, study_answers, arm):
        result = run_task_group(study_answers, 30, arm, n_subjects=12, seed=5)
        assert (
            result.sections["memory-only"].time_mean
            < result.sections["patterns-only"].time_mean
        )
        assert (
            result.sections["memory-only"].time_mean
            < result.sections["patterns+members"].time_mean
        )

    def test_learning_multiplier_scales_time(self, study_answers, arm):
        slow = run_task_group(
            study_answers, 30, arm, n_subjects=8, seed=5, time_multiplier=1.5
        )
        fast = run_task_group(
            study_answers, 30, arm, n_subjects=8, seed=5, time_multiplier=1.0
        )
        for section in SECTIONS:
            assert (
                slow.sections[section].time_mean
                > fast.sections[section].time_mean
            )

    def test_preferences_sum_to_subjects(self, study_answers, arm):
        a = run_task_group(study_answers, 30, arm, n_subjects=10, seed=1)
        b = run_task_group(study_answers, 30, arm, n_subjects=10, seed=2)
        left, right = simulate_preferences(a, b, n_subjects=10, seed=3)
        assert left + right == 10
        assert a.preferred_by == left
        assert b.preferred_by == right


class TestFullStudy:
    @pytest.fixture(scope="class")
    def study(self, study_answers):
        return run_study(study_answers, n_subjects=12, seed=2)

    def test_three_groups(self, study):
        names = [g.name for g in study.groups()]
        assert names == ["varying-method", "varying-k", "varying-D"]

    def test_our_method_beats_tree_on_th_accuracy(self, study):
        """The paper's headline: simple patterns separate high from low
        better than decision-tree predicates (patterns-only section)."""
        tree = study.varying_method.left.sections["patterns-only"]
        ours = study.varying_method.right.sections["patterns-only"]
        assert ours.th_accuracy_mean > tree.th_accuracy_mean

    def test_our_method_preferred_over_tree(self, study):
        assert (
            study.varying_method.right.preferred_by
            > study.varying_method.left.preferred_by
        )

    def test_bigger_k_slower_with_patterns(self, study):
        k5 = study.varying_k.left.sections["patterns-only"]
        k10 = study.varying_k.right.sections["patterns-only"]
        assert k10.time_mean > k5.time_mean

    def test_bigger_d_faster_patterns_only(self, study):
        d1 = study.varying_d.left.sections["patterns-only"]
        d3 = study.varying_d.right.sections["patterns-only"]
        assert d3.time_mean <= d1.time_mean * 1.1

    def test_format_table_layout(self, study):
        table = format_table(study, n_subjects=12)
        assert "patterns-only" in table
        assert "preferred" in table
        assert "decision-tree" in table

    def test_learning_sequence_variant_runs(self, study_answers):
        study = run_study(
            study_answers, n_subjects=6, seed=4, learning_sequence=True
        )
        assert study.varying_method.right.sections["patterns-only"].time_mean > 0
