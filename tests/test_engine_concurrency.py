"""Concurrent-engine stress tests: no duplicate builds, consistent counters.

The serving tier runs many scheduler worker threads over one shared
:class:`~repro.service.engine.Engine`; these tests pin down the engine's
concurrency contract directly (no sockets): racing identical requests
share exactly one pool/store build, cache counters stay consistent, and
builds for *different* keys proceed in parallel (per-key build locks, not
one global compute lock).
"""

from __future__ import annotations

import threading

import pytest

from repro.service import Engine, ExploreRequest, SummaryRequest
from repro.service.engine import _LRUCache
from tests.conftest import random_answer_set


class _SharedKey:
    """A cache key whose hash reports when a thread reaches the cache.

    ``__hash__`` runs inside the cache's first locked lookup, so the event
    firing proves the caller has *entered* ``get_or_build`` — the handle
    the determinism tests need to sequence two threads without sleeps.
    """

    def __init__(self, entered: threading.Event) -> None:
        self.entered = entered

    def __hash__(self) -> int:
        self.entered.set()
        return 42

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SharedKey)


class TestLRUCacheCoalescing:
    def test_waiter_on_inflight_build_counts_as_coalesced(self):
        """Deterministic single-flight: T2 arrives while T1 builds, waits,
        and is served T1's value — one miss, one coalesced hit."""
        cache: _LRUCache[str] = _LRUCache(4)
        release = threading.Event()
        t1_building = threading.Event()
        t2_entered = threading.Event()
        results = {}

        def leader():
            def build():
                t1_building.set()
                assert release.wait(10)
                return "built-once"

            results["t1"] = cache.get_or_build(_SharedKey(t2_entered), build)

        def follower():
            results["t2"] = cache.get_or_build(
                _SharedKey(t2_entered),
                lambda: pytest.fail("follower must never build"),
            )

        t1 = threading.Thread(target=leader)
        t1.start()
        assert t1_building.wait(10)  # T1 holds the build lock, mid-build
        t2_entered.clear()
        t2 = threading.Thread(target=follower)
        t2.start()
        # T2 hashed the key => it is inside get_or_build; the entry cannot
        # exist yet (T1 is still blocked), so T2 must take the wait path.
        assert t2_entered.wait(10)
        release.set()
        t1.join(10)
        t2.join(10)
        value_1, seconds_1, hit_1 = results["t1"]
        value_2, seconds_2, hit_2 = results["t2"]
        assert (value_1, hit_1) == ("built-once", False)
        assert (value_2, hit_2) == ("built-once", True)
        assert seconds_2 == 0.0
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 1
        assert stats.coalesced == 1

    def test_different_keys_build_in_parallel(self):
        """Per-key build locks: two cold keys must be buildable at the same
        time (a global compute lock would deadlock this rendezvous)."""
        cache: _LRUCache[str] = _LRUCache(4)
        in_build = [threading.Event(), threading.Event()]
        overlapped = []

        def build(index: int) -> str:
            in_build[index].set()
            # Wait to observe the *other* build running concurrently.
            overlapped.append(in_build[1 - index].wait(10))
            return "value-%d" % index

        threads = [
            threading.Thread(
                target=cache.get_or_build, args=("key-%d" % i,),
                kwargs={"build": (lambda i=i: build(i))},
            )
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(15)
        assert overlapped == [True, True]
        stats = cache.stats()
        assert stats.misses == 2
        assert stats.coalesced == 0


class TestEngineUnderRacingRequests:
    def test_racing_identical_summaries_share_one_pool_build(self):
        engine = Engine()
        engine.register_dataset(
            "race", random_answer_set(n=400, m=5, domain=5, seed=13)
        )
        request = SummaryRequest(dataset="race", k=4, L=40, D=1)
        threads_n = 12
        barrier = threading.Barrier(threads_n)
        responses = []
        lock = threading.Lock()

        def worker():
            barrier.wait(timeout=30)
            response = engine.submit(request)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert len(responses) == threads_n
        stats = engine.stats()
        # The hard contract: exactly one build, no duplicates, counters sum.
        assert stats.pools.misses == 1
        assert stats.pools.hits == threads_n - 1
        assert stats.pools.coalesced <= stats.pools.hits
        assert stats.requests == threads_n
        # Every thread saw the same solution content.
        assert len({r.objective for r in responses}) == 1
        assert len({r.clusters for r in responses}) == 1

    def test_racing_identical_explores_share_one_store_build(self):
        engine = Engine()
        engine.register_dataset(
            "race", random_answer_set(n=200, m=4, domain=5, seed=29)
        )
        request = ExploreRequest(
            dataset="race", k=4, L=25, D=1, k_range=(2, 6), d_values=(1, 2),
        )
        threads_n = 8
        barrier = threading.Barrier(threads_n)
        responses = []
        lock = threading.Lock()

        def worker():
            barrier.wait(timeout=30)
            response = engine.submit(request)
            with lock:
                responses.append(response)

        threads = [threading.Thread(target=worker) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert len(responses) == threads_n
        stats = engine.stats()
        assert stats.stores.misses == 1
        assert stats.stores.hits == threads_n - 1
        assert stats.pools.misses == 1
        assert len({r.objective for r in responses}) == 1

    def test_racing_distinct_keys_all_build_once(self):
        engine = Engine()
        engine.register_dataset(
            "race", random_answer_set(n=300, m=5, domain=5, seed=7)
        )
        l_values = (10, 15, 20, 25)
        barrier = threading.Barrier(len(l_values) * 2)
        errors = []

        def worker(L):
            try:
                barrier.wait(timeout=30)
                engine.submit(SummaryRequest(dataset="race", k=3, L=L, D=1))
            except Exception as error:  # pragma: no cover - debugging aid
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(L,))
            for L in l_values for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60)
        assert errors == []
        stats = engine.stats()
        assert stats.pools.misses == len(l_values)
        assert stats.pools.hits == len(l_values)
        assert stats.requests == len(l_values) * 2
