"""Tests for the restricted SQL parser (Appendix A.8 template)."""

from __future__ import annotations

import pytest

from repro.common.errors import QueryError
from repro.query.relation import Database, Relation
from repro.query.sql import execute_sql, parse_query, tokenize


@pytest.fixture
def ratings() -> Relation:
    return Relation(
        "ratings",
        ("genre", "gender", "rating", "adventure"),
        [
            ("action", "M", 4.0, 1),
            ("action", "F", 3.0, 1),
            ("drama", "M", 5.0, 0),
            ("drama", "F", 4.0, 0),
            ("action", "M", 2.0, 1),
        ],
    )


class TestTokenizer:
    def test_keywords_lowered(self):
        tokens = tokenize("SELECT x FROM t")
        assert tokens[0].kind == "keyword" and tokens[0].text == "select"

    def test_numbers_and_strings(self):
        tokens = tokenize("42 3.14 'it''s'")
        assert [t.kind for t in tokens] == ["number", "number", "string"]

    def test_operators(self):
        tokens = tokenize("<= >= != <> = < >")
        assert all(t.kind == "op" for t in tokens)

    def test_illegal_character(self):
        with pytest.raises(QueryError):
            tokenize("select ; from t")


class TestParser:
    def test_full_template(self):
        table, query = parse_query(
            "SELECT genre, gender, avg(rating) AS val FROM ratings "
            "WHERE adventure = 1 GROUP BY genre, gender "
            "HAVING count(*) > 1 ORDER BY val DESC LIMIT 10"
        )
        assert table == "ratings"
        assert query.group_by == ("genre", "gender")
        assert query.aggregate == "avg"
        assert query.target == "rating"
        assert query.where == (("adventure", "=", 1),)
        assert query.having_count_gt == 1
        assert query.descending is True
        assert query.limit == 10

    def test_minimal_template(self):
        table, query = parse_query(
            "SELECT g, avg(r) AS val FROM t GROUP BY g"
        )
        assert table == "t"
        assert query.having_count_gt == 0
        assert query.limit is None

    def test_count_star(self):
        _, query = parse_query(
            "SELECT g, count(*) AS val FROM t GROUP BY g"
        )
        assert query.aggregate == "count"
        assert query.target is None

    def test_order_asc(self):
        _, query = parse_query(
            "SELECT g, avg(r) AS val FROM t GROUP BY g ORDER BY val ASC"
        )
        assert query.descending is False

    def test_string_literal_predicate(self):
        _, query = parse_query(
            "SELECT g, avg(r) AS val FROM t WHERE name = 'it''s' GROUP BY g"
        )
        assert query.where == (("name", "=", "it's"),)

    def test_multiple_and_predicates(self):
        _, query = parse_query(
            "SELECT g, avg(r) AS val FROM t "
            "WHERE a >= 2 AND b != 'x' AND c < 1.5 GROUP BY g"
        )
        assert query.where == (
            ("a", ">=", 2), ("b", "!=", "x"), ("c", "<", 1.5)
        )

    @pytest.mark.parametrize("bad", [
        "SELECT avg(r) AS val FROM t GROUP BY g",      # no grouping column
        "SELECT g, avg(r) AS score FROM t GROUP BY g",  # alias must be val
        "SELECT g, avg(r) AS val FROM t GROUP BY h",    # group-by mismatch
        "SELECT g, stdev(r) AS val FROM t GROUP BY g",  # unknown aggregate
        "SELECT g, avg(r) AS val FROM t GROUP BY g HAVING sum(*) > 1",
        "SELECT g, avg(r) AS val FROM t GROUP BY g HAVING count(*) >= 1",
        "SELECT g, avg(r) AS val FROM t GROUP BY g ORDER BY g",
        "SELECT g, avg(r) AS val FROM t GROUP BY g LIMIT 2.5",
        "SELECT g, avg(r) AS val FROM t GROUP BY g trailing",
        "SELECT g, avg(*) AS val FROM t GROUP BY g",    # * only for count
        "SELECT g, avg(r) AS val WHERE a = 1 GROUP BY g",  # missing FROM
    ])
    def test_rejected_queries(self, bad):
        with pytest.raises(QueryError):
            parse_query(bad)


class TestExecution:
    def test_execute_against_relation(self, ratings):
        result = execute_sql(
            "SELECT genre, avg(rating) AS val FROM ratings "
            "WHERE adventure = 1 GROUP BY genre",
            ratings,
        )
        assert result.groups == [("action",)]
        assert result.values[0] == pytest.approx(3.0)

    def test_execute_against_database(self, ratings):
        db = Database()
        db.add(ratings)
        result = execute_sql(
            "SELECT gender, avg(rating) AS val FROM ratings GROUP BY gender",
            db,
        )
        assert result.n == 2

    def test_wrong_relation_name(self, ratings):
        with pytest.raises(QueryError):
            execute_sql(
                "SELECT g, avg(r) AS val FROM other GROUP BY g", ratings
            )

    def test_example_query_shape(self, ratings):
        # The Example 1.1 shape end to end.
        result = execute_sql(
            "SELECT genre, gender, avg(rating) AS val FROM ratings "
            "GROUP BY genre, gender HAVING count(*) > 1 ORDER BY val DESC",
            ratings,
        )
        answers = result.to_answer_set()
        assert answers.values == sorted(answers.values, reverse=True)
