"""Prometheus text-exposition conformance for :mod:`repro.server.metrics`.

The ``/metrics`` route is scraped by standard tooling, so the exposition
must hold the format's invariants, not just "look right": cumulative
buckets never decrease, ``+Inf`` equals ``_count``, ``_sum``/``_count``
agree with the observations, exactly one ``# TYPE`` line per family, and
label values survive a parse round-trip even when they contain
backslashes, quotes, or newlines (unescaped, those let one hostile label
value inject whole fake sample lines).
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.server.metrics import (
    BUCKET_BOUNDS,
    LatencyHistogram,
    ServerMetrics,
    label_suffix,
    prometheus_text,
    _escape_label,
)

pytestmark = pytest.mark.tier1

#: One exposition sample line: name, optional {labels}, value.  Label
#: values are escaped strings, so a ``}`` inside a value never ends the
#: label section.
_SAMPLE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})? (\S+)$'
)
#: One label pair inside a *well-escaped* suffix: the value may contain
#: any escaped char but no raw quote.
_LABEL = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse(text: str):
    """Parse an exposition into (types, samples) or fail the test."""
    types: dict[str, str] = {}
    samples = []
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, kind = rest.rsplit(" ", 1)
            assert name not in types, "duplicate # TYPE for %s" % name
            types[name] = kind
            continue
        match = _SAMPLE.match(line)
        assert match, "unparseable exposition line: %r" % line
        name, labels, value = match.groups()
        parsed_labels = dict(
            (k, _unescape(v))
            for k, v in _LABEL.findall(labels[1:-1] if labels else "")
        )
        samples.append((name, parsed_labels, float(value)))
    return types, samples


@pytest.fixture
def metrics() -> ServerMetrics:
    m = ServerMetrics()
    m.incr("responses", 7)
    m.incr("connections_opened", 2)
    for seconds in (0.0004, 0.003, 0.003, 0.08, 1.7, 45.0):
        m.observe("summary", seconds)
    m.observe("ping", 0.0001)
    return m


class TestExpositionConformance:
    def test_one_type_line_per_family(self, metrics):
        text = prometheus_text(metrics, {
            'shard_queue_depth{shard="0"}': 1,
            'shard_queue_depth{shard="1"}': 2,
            "scheduler_inflight": 3,
        })
        types, _ = _parse(text)  # _parse asserts TYPE uniqueness
        assert types["repro_shard_queue_depth"] == "gauge"
        assert types["repro_scheduler_inflight"] == "gauge"
        assert types["repro_request_latency_seconds"] == "histogram"
        assert types["repro_responses_total"] == "counter"

    def test_buckets_are_cumulative_and_inf_equals_count(self, metrics):
        _, samples = _parse(prometheus_text(metrics))
        for kind, expected_count in (("summary", 6), ("ping", 1)):
            buckets = [
                (labels["le"], value)
                for name, labels, value in samples
                if name == "repro_request_latency_seconds_bucket"
                and labels["kind"] == kind
            ]
            # Ordered by ascending bound, ending at +Inf.
            assert buckets[-1][0] == "+Inf"
            assert len(buckets) == len(BUCKET_BOUNDS) + 1
            counts = [value for _, value in buckets]
            assert counts == sorted(counts), "non-monotonic buckets"
            assert counts[-1] == expected_count
            count = next(
                value for name, labels, value in samples
                if name == "repro_request_latency_seconds_count"
                and labels["kind"] == kind
            )
            assert counts[-1] == count

    def test_sum_and_count_match_observations(self, metrics):
        _, samples = _parse(prometheus_text(metrics))
        total = next(
            value for name, labels, value in samples
            if name == "repro_request_latency_seconds_sum"
            and labels["kind"] == "summary"
        )
        assert total == pytest.approx(0.0004 + 0.003 + 0.003 + 0.08
                                      + 1.7 + 45.0)

    def test_counter_samples_and_naming(self, metrics):
        _, samples = _parse(prometheus_text(metrics))
        by_name = {name: value for name, _labels, value in samples
                   if not name.startswith("repro_request_latency")}
        assert by_name["repro_responses_total"] == 7
        assert by_name["repro_connections_opened_total"] == 2


class TestLabelEscaping:
    def test_escape_label_covers_the_three_escapes(self):
        assert _escape_label('a"b') == 'a\\"b'
        assert _escape_label("a\\b") == "a\\\\b"
        assert _escape_label("a\nb") == "a\\nb"
        assert _escape_label("plain") == "plain"

    def test_label_suffix_builds_escaped_sorted_pairs(self):
        assert label_suffix(shard=3) == '{shard="3"}'
        assert label_suffix(b="x", a='q"uote') == '{a="q\\"uote",b="x"}'

    def test_hostile_extra_label_value_round_trips(self):
        metrics = ServerMetrics()
        hostile = 'evil"} 9999\nfake_metric 1'
        text = prometheus_text(metrics, {
            'dataset_rows{name="%s"}' % hostile: 42,
        })
        types, samples = _parse(text)  # must stay parseable line-by-line
        assert types == {"repro_dataset_rows": "gauge"}
        [(name, labels, value)] = samples
        assert name == "repro_dataset_rows"
        assert value == 42
        assert labels["name"] == hostile  # byte round-trip after unescape

    def test_structured_label_suffix_round_trips(self):
        metrics = ServerMetrics()
        hostile = 'with "quotes", \\slashes\\ and\nnewlines'
        text = prometheus_text(metrics, {
            "dataset_rows%s" % label_suffix(name=hostile): 7,
        })
        _, samples = _parse(text)
        [(_name, labels, _value)] = samples
        assert labels["name"] == hostile

    def test_histogram_kind_labels_are_escaped(self):
        # TRACKED_KINDS bounds real kinds, but the escaping contract is
        # enforced at render time regardless of the key.
        metrics = ServerMetrics()
        metrics.observe("other", 0.01)
        text = prometheus_text(metrics)
        _, samples = _parse(text)
        kinds = {labels.get("kind") for _n, labels, _v in samples}
        assert kinds == {"other"}


class TestSummaryTornLockFix:
    def test_summary_quantiles_come_from_one_snapshot(self):
        """Hammer ``observe`` from a writer thread while reading
        summaries: every summary must be internally consistent
        (p50 <= p95 <= p99 <= max, count*mean == sum-ish) because all
        fields now derive from one locked export."""
        histogram = LatencyHistogram()
        stop = threading.Event()

        def writer():
            value = 0.0001
            while not stop.is_set():
                histogram.observe(value)
                value = (value * 7.9) % 20.0 + 0.0001

        thread = threading.Thread(target=writer, daemon=True)
        thread.start()
        try:
            for _ in range(300):
                summary = histogram.summary()
                assert summary["p50_seconds"] <= summary["p95_seconds"]
                assert summary["p95_seconds"] <= summary["p99_seconds"]
                assert summary["p99_seconds"] <= max(
                    summary["max_seconds"], BUCKET_BOUNDS[-1]
                )
                if summary["count"]:
                    assert summary["mean_seconds"] > 0.0
        finally:
            stop.set()
            thread.join(timeout=10.0)

    def test_summary_of_empty_histogram(self):
        assert LatencyHistogram().summary() == {
            "count": 0, "mean_seconds": 0.0, "max_seconds": 0.0,
            "p50_seconds": 0.0, "p95_seconds": 0.0, "p99_seconds": 0.0,
        }

    def test_quantiles_use_bucket_upper_bounds(self):
        histogram = LatencyHistogram()
        for _ in range(100):
            histogram.observe(0.003)  # falls in the (0.0025, 0.005] bucket
        summary = histogram.summary()
        assert summary["p50_seconds"] == 0.005
        assert summary["p99_seconds"] == 0.005
        histogram.observe(45.0)  # terminal unbounded bucket: exact max
        assert histogram.quantile(0.9999) == 45.0
