"""Every example script must run and produce its key output markers."""

from __future__ import annotations

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


def test_quickstart():
    output = run_example("quickstart.py")
    assert "aggregate query returned" in output
    assert "objective avg(O)" in output
    assert "rank" in output  # second layer shown


def test_movielens_exploration():
    output = run_example("movielens_exploration.py")
    assert "Figure 1b" in output
    assert "Figure 1c" in output
    assert "Figure 13" in output
    assert "knee points" in output


def test_interactive_session():
    output = run_example("interactive_session.py")
    assert "retrievals are interactive" in output
    assert "interval-tree storage" in output
    assert "flat k-regions" in output
    assert "cache_hit=True" in output  # the shared engine is warm


def test_service_api():
    output = run_example("service_api.py")
    assert "summary request" in output
    assert "kind=summary_response" in output
    assert "cache_hit=True" in output
    assert '"kind": "error"' in output
    assert "served 3 responses" in output


def test_baselines_comparison():
    output = run_example("baselines_comparison.py")
    for marker in (
        "our framework", "smart drill-down", "diversified top-k",
        "DisC diversity", "MMR",
    ):
        assert marker in output


def test_hierarchy_ranges():
    output = run_example("hierarchy_ranges.py")
    assert "generalized clusters" in output
    assert "join(1991, 1993) = 1990-1994" in output


@pytest.mark.slow
def test_tpcds_scalability():
    output = run_example("tpcds_scalability.py")
    assert "scalability" in output
    assert "precompute" in output


def test_user_study_example():
    output = run_example("user_study.py")
    assert "Table 1" in output
    assert "preferred" in output
