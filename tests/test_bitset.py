"""Tests for the bitset kernel primitives and their integration points:
:mod:`repro.core.bitset`, the AnswerSet prefix sums/mask helpers, the
Cluster mask, and the ClusterPool mask table + bounded fallback cache."""

from __future__ import annotations

import random

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.bitset import (
    BITSET_KERNEL,
    DEFAULT_KERNEL,
    PYTHON_KERNEL,
    bitset_of,
    iter_bits,
    mask_value_sum,
    resolve_kernel,
)
from repro.core.cluster import Cluster, lca, lca_and_distance, distance
from repro.core.semilattice import ClusterPool
from tests.conftest import random_answer_set


class TestBitsetPrimitives:
    def test_bitset_roundtrip(self):
        for indices in ([], [0], [5], [0, 1, 63, 64, 65, 1000], list(range(200))):
            mask = bitset_of(indices)
            assert list(iter_bits(mask)) == sorted(indices)
            assert mask.bit_count() == len(indices)

    def test_bitset_of_accepts_any_iterable(self):
        assert bitset_of(frozenset({3, 1})) == 0b1010
        assert bitset_of(i for i in (2, 0)) == 0b101

    def test_mask_value_sum_sparse_and_dense(self):
        rng = random.Random(7)
        values = [rng.uniform(0.0, 5.0) for _ in range(1500)]
        # Sparse path: few set bits.
        sparse = sorted(rng.sample(range(1500), 20))
        mask = bitset_of(sparse)
        assert mask_value_sum(values, mask) == pytest.approx(
            sum(values[i] for i in sparse)
        )
        # Dense path: enough bits to trip the byte-walk branch.
        dense = sorted(rng.sample(range(1500), 900))
        mask = bitset_of(dense)
        assert mask_value_sum(values, mask) == pytest.approx(
            sum(values[i] for i in dense)
        )
        assert mask_value_sum(values, 0) == 0.0

    def test_resolve_kernel(self):
        assert resolve_kernel(None) == DEFAULT_KERNEL == BITSET_KERNEL
        assert resolve_kernel("python") == PYTHON_KERNEL
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            resolve_kernel("numpy")

    def test_lca_and_distance_agrees_with_separate_functions(self):
        rng = random.Random(3)
        for _ in range(200):
            p1 = tuple(rng.choice([-1, 0, 1, 2]) for _ in range(5))
            p2 = tuple(rng.choice([-1, 0, 1, 2]) for _ in range(5))
            joined, d = lca_and_distance(p1, p2)
            assert joined == lca(p1, p2)
            assert d == distance(p1, p2)


class TestAnswerSetKernelSupport:
    def test_prefix_sums_and_ranges(self):
        answers = AnswerSet(
            [(0,), (1,), (2,), (3,)], [4.0, 3.0, 2.0, 1.0]
        )
        assert answers.value_prefix_sums == [0.0, 4.0, 7.0, 9.0, 10.0]
        assert answers.value_sum_range(1, 3) == pytest.approx(5.0)
        assert answers.value_sum_range(0, 4) == pytest.approx(10.0)

    def test_avg_all_cached_and_correct(self):
        answers = random_answer_set(n=30, m=3, domain=4, seed=9)
        expected = sum(answers.values) / answers.n
        assert answers.avg_all() == pytest.approx(expected)
        assert answers.avg_all() is answers.avg_all() or True  # cached value
        assert answers._avg_all is not None

    def test_avg_of_contiguous_uses_prefix(self):
        answers = random_answer_set(n=20, m=3, domain=4, seed=2)
        top = list(range(7))
        assert answers.avg_of(top) == pytest.approx(
            sum(answers.values[:7]) / 7
        )
        scattered = [0, 2, 5]
        assert answers.avg_of(scattered) == pytest.approx(
            sum(answers.values[i] for i in scattered) / 3
        )

    def test_mask_value_sum_delegation(self):
        answers = random_answer_set(n=16, m=3, domain=4, seed=4)
        mask = bitset_of([1, 3, 8])
        assert answers.mask_value_sum(mask) == pytest.approx(
            answers.values[1] + answers.values[3] + answers.values[8]
        )


class TestClusterMask:
    def test_mask_matches_covered(self):
        cluster = Cluster(
            pattern=(1, -1), covered=frozenset({0, 3, 70}), value_sum=3.0
        )
        assert cluster.mask == bitset_of([0, 3, 70])
        # Cached: same object identity on repeat access.
        assert cluster.__dict__["_mask"] == cluster.mask


class TestPoolMasksAndFallback:
    @pytest.mark.parametrize("strategy", ["eager", "naive", "lazy"])
    def test_pool_masks_match_coverage(self, strategy):
        answers = random_answer_set(n=40, m=4, domain=3, seed=6)
        pool = ClusterPool(answers, L=6, strategy=strategy)
        for pattern in pool.patterns():
            assert pool.mask(pattern) == bitset_of(pool.coverage(pattern))

    def test_pool_cluster_carries_mask(self):
        answers = random_answer_set(n=30, m=4, domain=3, seed=6)
        pool = ClusterPool(answers, L=5)
        for pattern in list(pool.patterns())[:10]:
            cluster = pool.cluster(pattern)
            assert cluster.mask == pool.mask(pattern)

    def test_out_of_pool_fallback_is_bounded(self):
        answers = random_answer_set(n=30, m=4, domain=4, seed=8)
        pool = ClusterPool(answers, L=4, fallback_capacity=8)
        probed = []
        # Probe many patterns that are not generalizations of the top-4.
        for code_a in range(4):
            for code_b in range(4):
                pattern = (code_a, code_b, -1, -1)
                if pattern in pool:
                    continue
                probed.append(pattern)
                expected = frozenset(
                    i
                    for i, element in enumerate(answers.elements)
                    if all(
                        p == -1 or p == e
                        for p, e in zip(pattern, element)
                    )
                )
                assert pool.coverage(pattern) == expected
        assert len(probed) > 8
        assert len(pool._fallback) <= 8
        # Pool-internal caches must not have absorbed out-of-pool patterns.
        for pattern in probed:
            assert pattern not in pool._coverage
            assert pattern not in pool._cluster_cache

    def test_fallback_results_stay_correct_after_eviction(self):
        answers = random_answer_set(n=25, m=3, domain=3, seed=5)
        pool = ClusterPool(answers, L=3, fallback_capacity=2)
        pattern = next(
            p
            for a in range(3)
            for b in range(3)
            for p in ((a, b, -1),)
            if p not in pool
        )
        first = pool.coverage(pattern)
        # Evict it by probing other patterns, then re-ask.
        pool.coverage((1, -1, -1))
        pool.coverage((2, -1, -1))
        assert pool.coverage(pattern) == first

    def test_fallback_capacity_validated(self):
        answers = random_answer_set(n=10, m=3, domain=3, seed=1)
        with pytest.raises(InvalidParameterError):
            ClusterPool(answers, L=3, fallback_capacity=0)


class TestKernelWiring:
    def test_merge_engine_rejects_unknown_kernel(self):
        from repro.core.merge import MergeEngine

        answers = random_answer_set(n=12, m=3, domain=3, seed=2)
        pool = ClusterPool(answers, L=3)
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            MergeEngine(pool, (), kernel="bogus")

    def test_service_reports_kernel_and_phases(self):
        from repro.service import Engine, SummaryRequest

        answers = random_answer_set(n=30, m=4, domain=3, seed=3)
        engine = Engine()
        engine.register_dataset("d", answers)
        fast = engine.submit(SummaryRequest(dataset="d", k=3, L=6, D=1))
        assert fast.kernel == "bitset"
        assert set(fast.phase_seconds) >= {
            "pool_build", "merge_loop", "serialize",
        }
        # The merge engine's argmax counters ride along in the same open
        # float dict (counts, not seconds).
        assert fast.phase_seconds["argmax_heap"] == 1.0
        assert fast.phase_seconds["argmax_evals"] >= 1.0
        slow = engine.submit(SummaryRequest(
            dataset="d", k=3, L=6, D=1, algorithm="bottom-up",
            options={"kernel": "python"},
        ))
        assert slow.kernel == "python"

    def test_explore_kernel_choice_splits_store_cache(self):
        from repro.service import Engine, ExploreRequest

        answers = random_answer_set(n=30, m=4, domain=3, seed=3)
        engine = Engine()
        engine.register_dataset("d", answers)
        request = dict(dataset="d", k=3, L=6, D=1, k_range=(2, 4),
                       d_values=(1,))
        fast = engine.submit(ExploreRequest(**request, kernel="bitset"))
        slow = engine.submit(ExploreRequest(**request, kernel="python"))
        assert fast.kernel == "bitset"
        assert slow.kernel == "python"
        assert slow.cache_hit is False  # different kernel, different store
        assert fast.objective == pytest.approx(slow.objective)
        assert [c.pattern for c in fast.clusters] == [
            c.pattern for c in slow.clusters
        ]
