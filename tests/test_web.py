"""Tests for the HTTP front door: routes, status codes, transport parity,
durable sessions, metrics, and graceful drain."""

from __future__ import annotations

import io
import json
import socket
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.server import BackgroundServer, LineClient, TCPServer
from repro.service import Engine, serve
from repro.web import (
    AuthService,
    BackgroundWebServer,
    QuotaService,
    WebServer,
    status_for,
)
from tests.conftest import (
    paper_like_answers,
    random_answer_set,
    zero_timings,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

SUMMARY = {
    "schema_version": 2, "kind": "summary", "dataset": "paper",
    "k": 2, "L": 4, "D": 1,
}


def make_engine() -> Engine:
    engine = Engine()
    engine.register_dataset("paper", paper_like_answers())
    engine.register_dataset(
        "other", random_answer_set(n=40, m=4, domain=4, seed=5)
    )
    return engine


@pytest.fixture
def web_server(tmp_path):
    handles = []

    def start(engine=None, *, session_dir=None, **kwargs):
        server = WebServer(
            engine or make_engine(),
            port=0,
            session_dir=str(session_dir or tmp_path / "sessions"),
            **kwargs,
        )
        handle = BackgroundWebServer(server).start()
        handles.append(handle)
        return handle

    yield start
    for handle in handles:
        handle.stop()


def http_call(handle, method, path, body=None, token=None, timeout=30):
    """One HTTP round trip -> (status, parsed JSON or text)."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        "http://%s:%d%s" % (handle.host, handle.port, path),
        data=data, method=method,
    )
    if token is not None:
        request.add_header("Authorization", "Bearer " + token)
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            raw = response.read()
            status = response.status
            content_type = response.headers.get("Content-Type", "")
    except urllib.error.HTTPError as error:
        raw = error.read()
        status = error.code
        content_type = error.headers.get("Content-Type", "")
    if content_type.startswith("application/json"):
        return status, json.loads(raw)
    return status, raw.decode("utf-8")


def http_raw(handle, method, path, body=None, token=None):
    """Round trip returning (status, raw body bytes) for byte comparisons."""
    data = None if body is None else json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        "http://%s:%d%s" % (handle.host, handle.port, path),
        data=data, method=method,
    )
    if token is not None:
        request.add_header("Authorization", "Bearer " + token)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


# -- status mapping -----------------------------------------------------------


class TestStatusMapping:
    def test_success_and_plain_errors(self):
        assert status_for({"kind": "summary_response"}) == 200
        assert status_for({"kind": "error", "error_type": "SchemaError"}) \
            == 400
        assert status_for("not a dict") == 200

    @pytest.mark.parametrize("error_type,status", [
        ("AuthError", 401), ("UnknownSessionError", 404),
        ("LineTooLong", 413), ("QuotaExceeded", 429), ("Overloaded", 503),
    ])
    def test_operational_errors(self, error_type, status):
        payload = {"kind": "error", "error_type": error_type}
        assert status_for(payload) == status


# -- basic routes -------------------------------------------------------------


class TestRoutes:
    def test_healthz_lists_datasets(self, web_server):
        handle = web_server()
        status, payload = http_call(handle, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["datasets"] == ["other", "paper"]
        assert payload["auth_required"] is False

    def test_summary_route_injects_kind(self, web_server):
        handle = web_server()
        body = {key: value for key, value in SUMMARY.items()
                if key != "kind"}
        status, payload = http_call(handle, "POST", "/v2/summary", body)
        assert status == 200
        assert payload["kind"] == "summary_response"
        assert payload["solution_size"] == 2

    def test_kind_route_mismatch_is_400(self, web_server):
        handle = web_server()
        status, payload = http_call(
            handle, "POST", "/v2/explore", dict(SUMMARY)
        )
        assert status == 400
        assert payload["error_type"] == "SchemaError"

    def test_admin_routes(self, web_server):
        handle = web_server()
        status, payload = http_call(handle, "POST", "/v2/admin/ping")
        assert (status, payload["kind"]) == (200, "pong")
        status, payload = http_call(handle, "POST", "/v2/admin/datasets")
        assert payload["datasets"] == ["other", "paper"]
        status, payload = http_call(handle, "POST", "/v2/admin/stats")
        assert payload["kind"] == "stats"
        assert payload["server"]["transport"] == "http"

    def test_admin_route_refuses_analytic_kinds(self, web_server):
        handle = web_server()
        status, payload = http_call(
            handle, "POST", "/v2/admin/summary", dict(SUMMARY)
        )
        assert status == 400

    def test_unknown_route_is_404(self, web_server):
        handle = web_server()
        status, payload = http_call(handle, "GET", "/nope")
        assert status == 404
        assert payload["kind"] == "error"

    def test_unknown_dataset_is_400(self, web_server):
        handle = web_server()
        status, payload = http_call(
            handle, "POST", "/v2/summary", dict(SUMMARY, dataset="nope")
        )
        assert status == 400
        assert payload["error_type"] == "InvalidParameterError"

    def test_malformed_json_body_is_400(self, web_server):
        handle = web_server()
        request = urllib.request.Request(
            "http://%s:%d/v2/summary" % (handle.host, handle.port),
            data=b"{broken", method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_oversized_body_is_413(self, web_server):
        handle = web_server(max_body_bytes=128)
        status, payload = http_call(
            handle, "POST", "/v2/summary",
            dict(SUMMARY, algorithm="z" * 500),
        )
        assert status == 413
        assert payload["error_type"] == "LineTooLong"
        # The connection-level rejection must not wedge the server.
        status, _ = http_call(handle, "GET", "/healthz")
        assert status == 200

    def test_load_csv_then_summary(self, web_server, tmp_path):
        path = tmp_path / "mini.csv"
        path.write_text(
            "era,grp,val\n1970s,student,4.5\n1980s,student,4.0\n"
            "1990s,writer,2.0\n"
        )
        handle = web_server()
        status, payload = http_call(
            handle, "POST", "/v2/admin/load_csv", {"path": str(path)}
        )
        assert (status, payload["kind"]) == (200, "dataset_loaded")
        status, payload = http_call(
            handle, "POST", "/v2/summary",
            {"schema_version": 2, "dataset": "mini", "k": 2, "L": 2, "D": 0},
        )
        assert payload["kind"] == "summary_response"


# -- auth & quota over HTTP ---------------------------------------------------


class TestHTTPAuthAndQuota:
    def test_auth_enforced_on_analytics_not_health(self, web_server):
        auth = AuthService({"tok-a": "alice"})
        handle = web_server(auth=auth)
        assert http_call(handle, "GET", "/healthz")[0] == 200
        assert http_call(handle, "GET", "/metrics")[0] == 200
        status, payload = http_call(
            handle, "POST", "/v2/summary", dict(SUMMARY)
        )
        assert status == 401
        assert payload["error_type"] == "AuthError"
        status, payload = http_call(
            handle, "POST", "/v2/summary", dict(SUMMARY), token="tok-a"
        )
        assert status == 200

    def test_quota_is_per_user(self, web_server):
        auth = AuthService({"tok-a": "alice", "tok-b": "bob"})
        quota = QuotaService(2, 3600.0)
        handle = web_server(auth=auth, quota=quota)
        for _ in range(2):
            status, _ = http_call(
                handle, "POST", "/v2/summary", dict(SUMMARY), token="tok-a"
            )
            assert status == 200
        status, payload = http_call(
            handle, "POST", "/v2/summary", dict(SUMMARY), token="tok-a"
        )
        assert status == 429
        assert payload["error_type"] == "QuotaExceeded"
        # Alice running dry must not affect Bob.
        status, _ = http_call(
            handle, "POST", "/v2/summary", dict(SUMMARY), token="tok-b"
        )
        assert status == 200

    def test_admin_kinds_are_not_quota_charged(self, web_server):
        quota = QuotaService(1, 3600.0)
        handle = web_server(quota=quota)
        for _ in range(3):
            status, _ = http_call(handle, "POST", "/v2/admin/ping")
            assert status == 200


# -- transport parity ---------------------------------------------------------


PARITY_REQUESTS = [
    {"kind": "ping"},
    dict(SUMMARY, include_elements=True, algorithm="bottom-up"),
    {"schema_version": 2, "kind": "explore", "dataset": "paper",
     "k": 3, "L": 4, "D": 1, "k_range": [2, 4], "d_values": [1, 2]},
    {"schema_version": 2, "kind": "guidance", "dataset": "paper",
     "L": 4, "k_range": [2, 4], "d_values": [1]},
    {"kind": "datasets"},
    {"kind": "frobnicate"},
    {"schema_version": 2, "kind": "summary", "dataset": "nope", "k": 1},
]


def _route_for(request: dict) -> str:
    kind = request.get("kind")
    if kind in ("summary", "explore", "guidance"):
        return "/v2/%s" % kind
    return "/v2/admin/%s" % kind


class TestTransportParity:
    def test_three_way_byte_parity(self, web_server):
        """The same requests over stdio, TCP, and HTTP produce
        byte-identical response payloads (timings zeroed)."""
        lines = "".join(
            json.dumps(request, sort_keys=True) + "\n"
            for request in PARITY_REQUESTS
        )
        stdio_out = io.StringIO()
        serve(io.StringIO(lines), stdio_out, engine=make_engine())
        stdio_responses = [
            json.dumps(zero_timings(json.loads(line)), sort_keys=True)
            for line in stdio_out.getvalue().splitlines()
        ]

        tcp_handle = BackgroundServer(
            TCPServer(make_engine(), port=0)
        ).start()
        try:
            with LineClient(tcp_handle.host, tcp_handle.port) as client:
                client.send_raw(lines.encode("utf-8"))
                tcp_responses = [
                    json.dumps(zero_timings(client.recv()), sort_keys=True)
                    for _ in PARITY_REQUESTS
                ]
        finally:
            tcp_handle.stop()

        web_handle = web_server(make_engine())
        http_responses = []
        for request in PARITY_REQUESTS:
            _, raw = http_raw(
                web_handle, "POST", _route_for(request), dict(request)
            )
            assert raw.endswith(b"\n")
            http_responses.append(json.dumps(
                zero_timings(json.loads(raw)), sort_keys=True
            ))

        assert stdio_responses == tcp_responses == http_responses

    def test_http_body_matches_golden_file(self, web_server):
        handle = web_server()
        _, raw = http_raw(
            handle, "POST", "/v2/summary",
            dict(SUMMARY, include_elements=True, algorithm="bottom-up"),
        )
        payload = zero_timings(json.loads(raw))
        golden = json.loads(
            (GOLDEN_DIR / "summary_response.json").read_text()
        )
        assert payload == golden

    def test_auth_rejection_bytes_match_tcp(self, web_server):
        """The 401 payload over HTTP is the same object TCP writes for a
        bad ``auth`` envelope field — only the envelope differs."""
        auth = AuthService({"tok-a": "alice"})
        web_handle = web_server(auth=auth)
        status, raw = http_raw(
            web_handle, "POST", "/v2/summary", dict(SUMMARY),
            token="wrong-token",
        )
        assert status == 401

        tcp_handle = BackgroundServer(
            TCPServer(make_engine(), port=0, auth=AuthService(
                {"tok-a": "alice"}
            ))
        ).start()
        try:
            with LineClient(tcp_handle.host, tcp_handle.port) as client:
                tcp_response = client.request(
                    dict(SUMMARY, auth="wrong-token")
                )
        finally:
            tcp_handle.stop()
        assert json.loads(raw) == tcp_response


# -- durable sessions over HTTP ----------------------------------------------


BASE = {"schema_version": 2, "kind": "summary", "dataset": "paper",
        "k": 2, "L": 4, "D": 1, "include_elements": True}


class TestHTTPSessions:
    def test_create_step_get_delete(self, web_server):
        handle = web_server()
        status, record = http_call(
            handle, "POST", "/v2/sessions",
            {"name": "expl", "base": dict(BASE)},
        )
        assert status == 200
        assert record["name"] == "expl"
        assert record["steps"] == []

        status, payload = http_call(
            handle, "POST", "/v2/sessions/expl/step", {"k": 3}
        )
        assert status == 200
        assert payload["kind"] == "summary_response"
        assert payload["k"] == 3

        status, record = http_call(handle, "GET", "/v2/sessions/expl")
        assert record["base"]["k"] == 3
        assert len(record["steps"]) == 1

        status, listing = http_call(handle, "GET", "/v2/sessions")
        assert listing["sessions"] == ["expl"]

        status, _ = http_call(handle, "DELETE", "/v2/sessions/expl")
        assert status == 200
        status, _ = http_call(handle, "GET", "/v2/sessions/expl")
        assert status == 404

    def test_duplicate_create_is_rejected(self, web_server):
        handle = web_server()
        body = {"name": "expl", "base": dict(BASE)}
        assert http_call(handle, "POST", "/v2/sessions", body)[0] == 200
        status, payload = http_call(handle, "POST", "/v2/sessions", body)
        assert status == 400
        assert "already exists" in payload["message"]

    def test_failed_step_leaves_session_unchanged(self, web_server):
        handle = web_server()
        http_call(handle, "POST", "/v2/sessions",
                  {"name": "expl", "base": dict(BASE)})
        status, payload = http_call(
            handle, "POST", "/v2/sessions/expl/step", {"k": "three"}
        )
        assert status == 400
        _, record = http_call(handle, "GET", "/v2/sessions/expl")
        assert record["base"]["k"] == 2
        assert record["steps"] == []

    def test_sessions_are_scoped_per_user(self, web_server):
        auth = AuthService({"tok-a": "alice", "tok-b": "bob"})
        handle = web_server(auth=auth)
        http_call(handle, "POST", "/v2/sessions",
                  {"name": "mine", "base": dict(BASE)}, token="tok-a")
        status, _ = http_call(
            handle, "GET", "/v2/sessions/mine", token="tok-b"
        )
        assert status == 404
        _, listing = http_call(
            handle, "GET", "/v2/sessions", token="tok-b"
        )
        assert listing["sessions"] == []

    def test_session_survives_server_restart(self, web_server, tmp_path):
        """Create -> drill -> restart -> resume by name: the next step
        answers byte-identically to a server that never restarted."""
        store = tmp_path / "durable"
        first = web_server(session_dir=store)
        http_call(first, "POST", "/v2/sessions",
                  {"name": "expl", "base": dict(BASE)})
        http_call(first, "POST", "/v2/sessions/expl/step", {"k": 3})
        assert first.stop(timeout=30)

        # Control: same session history on a server that stays up.
        control = web_server(session_dir=tmp_path / "control")
        http_call(control, "POST", "/v2/sessions",
                  {"name": "expl", "base": dict(BASE)})
        http_call(control, "POST", "/v2/sessions/expl/step", {"k": 3})
        _, control_raw = http_raw(
            control, "POST", "/v2/sessions/expl/step", {"D": 2}
        )

        second = web_server(session_dir=store)  # fresh engine, same store
        _, resumed_record = http_call(second, "GET", "/v2/sessions/expl")
        assert resumed_record["base"]["k"] == 3
        _, resumed_raw = http_raw(
            second, "POST", "/v2/sessions/expl/step", {"D": 2}
        )
        resumed = zero_timings(json.loads(resumed_raw))
        expected = zero_timings(json.loads(control_raw))
        # A restarted engine is cold where the control is warm; the
        # cache flag is the one legitimate difference.
        resumed["cache_hit"] = expected["cache_hit"] = False
        assert resumed == expected


# -- metrics ------------------------------------------------------------------


class TestMetricsRoute:
    def test_prometheus_scrape(self, web_server):
        quota = QuotaService(100, 3600.0)
        handle = web_server(quota=quota)
        http_call(handle, "POST", "/v2/summary", dict(SUMMARY))
        http_call(handle, "POST", "/v2/admin/ping")
        status, text = http_call(handle, "GET", "/metrics")
        assert status == 200
        assert isinstance(text, str)
        lines = text.splitlines()
        assert "# TYPE repro_responses_total counter" in lines
        assert "# TYPE repro_request_latency_seconds histogram" in lines
        assert any(
            line.startswith(
                'repro_request_latency_seconds_bucket{kind="summary"'
            )
            for line in lines
        )
        assert any(
            line.startswith('repro_request_latency_seconds_bucket')
            and 'le="+Inf"' in line for line in lines
        )
        assert "repro_quota_granted 1" in lines
        assert any(
            line.startswith("repro_shard_queue_depth{") for line in lines
        )
        # Every non-comment line is "name[{labels}] value".
        for line in lines:
            if line.startswith("#") or not line:
                continue
            name, _, value = line.rpartition(" ")
            assert name
            float(value)

    def test_http_status_counters(self, web_server):
        handle = web_server()
        http_call(handle, "POST", "/v2/summary", dict(SUMMARY))
        http_call(handle, "POST", "/v2/summary",
                  dict(SUMMARY, dataset="nope"))
        _, text = http_call(handle, "GET", "/metrics")
        assert "repro_http_200_total" in text
        assert "repro_http_400_total" in text


# -- shutdown & drain ---------------------------------------------------------


class TestShutdown:
    def test_server_scope_shutdown_stops_listening(self, web_server):
        handle = web_server()
        status, payload = http_call(
            handle, "POST", "/v2/admin/shutdown", {"scope": "server"}
        )
        assert (status, payload["kind"]) == (200, "shutdown_ack")
        assert handle.stop(timeout=30)
        with pytest.raises(OSError):
            socket.create_connection(
                (handle.host, handle.server.bound_port), timeout=0.5
            )

    def test_session_scope_shutdown_keeps_serving(self, web_server):
        handle = web_server()
        status, payload = http_call(
            handle, "POST", "/v2/admin/shutdown", {}
        )
        assert payload["scope"] == "session"
        assert http_call(handle, "GET", "/healthz")[0] == 200


class TestTCPDrain:
    def test_inflight_requests_answered_before_shutdown(self):
        """A server-scope shutdown drains queued analytics: a request
        admitted before the shutdown still gets its real response."""
        import threading

        server = TCPServer(make_engine(), port=0, shards=1,
                           workers_per_shard=1)
        handle = BackgroundServer(server).start()
        slow = {"schema_version": 2, "kind": "summary", "dataset": "other",
                "k": 4, "L": 30, "D": 1}
        results = {}

        def drive():
            with LineClient(handle.host, handle.port) as client:
                results["slow"] = client.request(slow)

        worker = threading.Thread(target=drive)
        worker.start()
        try:
            with LineClient(handle.host, handle.port) as admin:
                ack = admin.request({"kind": "shutdown", "scope": "server"})
                assert ack["kind"] == "shutdown_ack"
            worker.join(30)
            assert not worker.is_alive()
            assert results["slow"]["kind"] == "summary_response"
        finally:
            handle.stop()
