"""Tests for the pluggable algorithm registry and its deprecation shims."""

from __future__ import annotations

import warnings

import pytest

from repro.common.errors import InvalidParameterError
from repro.core.problem import ALGORITHMS, ProblemInstance, summarize
from repro.core.registry import (
    AlgorithmInfo,
    algorithm_infos,
    algorithm_names,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
    validate_algorithm_kwargs,
)
from tests.conftest import random_answer_set

PAPER_ALGORITHMS = {
    "bottom-up", "bottom-up-level", "bottom-up-pairwise", "fixed-order",
    "random-fixed-order", "kmeans-fixed-order", "hybrid", "brute-force",
    "lower-bound",
}


class TestRegistryContents:
    def test_all_paper_algorithms_registered(self):
        assert PAPER_ALGORITHMS <= set(algorithm_names())

    def test_names_sorted(self):
        names = algorithm_names()
        assert names == sorted(names)

    def test_infos_carry_metadata(self):
        for info in algorithm_infos():
            assert isinstance(info, AlgorithmInfo)
            assert info.name
            assert info.cost in ("exact", "greedy", "heuristic", "bound")
            assert callable(info.runner)

    def test_exactness_classes(self):
        assert get_algorithm("brute-force").cost == "exact"
        assert get_algorithm("hybrid").cost == "greedy"
        assert get_algorithm("lower-bound").cost == "bound"
        assert get_algorithm("random-fixed-order").cost == "heuristic"

    def test_describe_is_json_friendly(self):
        import json

        for info in algorithm_infos():
            payload = info.describe()
            assert json.loads(json.dumps(payload)) == payload
            assert "runner" not in payload


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_algorithm("hybrid")(lambda instance: None)

    def test_replace_allows_override(self):
        original = get_algorithm("hybrid")
        sentinel = lambda instance: None  # noqa: E731
        try:
            register_algorithm(
                "hybrid", cost="greedy", replace=True
            )(sentinel)
            assert get_algorithm("hybrid").runner is sentinel
        finally:
            register_algorithm(
                "hybrid",
                cost=original.cost,
                complexity=original.complexity,
                kwargs=original.kwargs,
                summary=original.summary,
                replace=True,
            )(original.runner)

    def test_register_and_unregister_plugin(self):
        @register_algorithm("test-plugin", cost="heuristic",
                            kwargs=("knob",), summary="for this test")
        def run_plugin(instance, knob=0):
            from repro.core.brute_force import lower_bound

            return lower_bound(instance.pool)

        try:
            assert "test-plugin" in algorithm_names()
            answers = random_answer_set(n=20, m=3, domain=3, seed=5)
            solution = ProblemInstance(answers, k=2, L=4, D=0).solve(
                "test-plugin", knob=1
            )
            assert solution.size == 1
        finally:
            unregister_algorithm("test-plugin")
        assert "test-plugin" not in algorithm_names()

    def test_unknown_cost_class_rejected(self):
        with pytest.raises(InvalidParameterError, match="cost"):
            register_algorithm("bad-cost", cost="magic")

    def test_unknown_algorithm_error_lists_names(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            get_algorithm("nope")
        message = str(excinfo.value)
        assert "nope" in message
        assert "hybrid" in message


class TestKwargsValidation:
    def test_known_kwargs_accepted(self):
        info = validate_algorithm_kwargs(
            "hybrid", {"pool_factor": 2, "use_delta": False}
        )
        assert info.name == "hybrid"

    def test_unknown_kwarg_rejected_with_supported_list(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            validate_algorithm_kwargs("hybrid", {"pool_factr": 2})
        message = str(excinfo.value)
        assert "pool_factr" in message
        assert "pool_factor" in message

    def test_solve_rejects_unknown_kwarg_before_running(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=5)
        instance = ProblemInstance(answers, k=2, L=4, D=0)
        with pytest.raises(InvalidParameterError, match="unsupported"):
            instance.solve("bottom-up", bogus=True)

    def test_declared_kwargs_actually_run(self):
        answers = random_answer_set(n=25, m=4, domain=3, seed=9)
        for name, options in [
            ("bottom-up", {"use_delta": False}),
            ("fixed-order", {"size_budget": 6}),
            ("hybrid", {"pool_factor": 2}),
            ("random-fixed-order", {"seed": 3}),
            ("kmeans-fixed-order", {"seed": 3, "max_iterations": 5}),
        ]:
            instance = ProblemInstance(answers, k=3, L=6, D=1)
            solution = instance.solve(name, **options)
            assert solution.size >= 1


class TestDeprecationShims:
    def test_algorithms_mapping_warns(self):
        with pytest.warns(DeprecationWarning, match="ALGORITHMS"):
            runner = ALGORITHMS["hybrid"]
        assert callable(runner)

    def test_algorithms_iterates_registry(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert set(ALGORITHMS) == set(algorithm_names())
            assert "hybrid" in ALGORITHMS
            assert len(ALGORITHMS) == len(algorithm_names())

    def test_summarize_warns_but_works(self):
        answers = random_answer_set(n=20, m=3, domain=3, seed=5)
        with pytest.warns(DeprecationWarning, match="summarize"):
            solution = summarize(answers, k=2, L=4, D=1)
        assert solution.size <= 2


class TestProblemInstanceDefaults:
    def test_k_none_defaults_to_n(self):
        answers = random_answer_set(n=15, m=3, domain=3, seed=1)
        instance = ProblemInstance(answers, k=None, L=4, D=0)
        assert instance.k == answers.n

    def test_L_none_defaults_to_k(self):
        answers = random_answer_set(n=15, m=3, domain=3, seed=1)
        instance = ProblemInstance(answers, k=5, L=None, D=0)
        assert instance.L == 5

    def test_both_none_cover_everything(self):
        answers = random_answer_set(n=15, m=3, domain=3, seed=1)
        instance = ProblemInstance(answers, D=0)
        assert (instance.k, instance.L) == (answers.n, answers.n)

    def test_L_zero_still_normalized_to_one(self):
        answers = random_answer_set(n=15, m=3, domain=3, seed=1)
        instance = ProblemInstance(answers, k=3, L=0, D=1)
        assert instance.L == 1

    def test_validation_still_rejects_bad_values(self):
        answers = random_answer_set(n=15, m=3, domain=3, seed=1)
        with pytest.raises(InvalidParameterError):
            ProblemInstance(answers, k=0, L=4, D=0)
        with pytest.raises(InvalidParameterError):
            ProblemInstance(answers, k=3, L=-1, D=0)
        with pytest.raises(InvalidParameterError):
            ProblemInstance(answers, k=3, L=4, D=answers.m + 1)

    def test_defaults_solve_end_to_end(self):
        answers = random_answer_set(n=15, m=3, domain=3, seed=1)
        solution = ProblemInstance(answers, k=4).solve("hybrid")
        assert solution.size <= 4
