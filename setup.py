"""Setuptools shim.

The reproduction environment is offline and has no ``wheel`` package, so
PEP-517 editable installs (``pip install -e .``) cannot build a wheel.  This
shim lets ``python setup.py develop`` provide the equivalent editable
install; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
