"""The unified telemetry registry: one snapshot for every signal.

Before this module the serving tier's signals were scattered: transport
counters and latency histograms lived in
:class:`~repro.server.metrics.ServerMetrics`, engine cache hit rates in
:class:`~repro.service.engine.CacheStats`, resilience gauges in
:meth:`~repro.server.scheduler.ShardedScheduler.stats`, quota/auth
counters in their services — and each consumer (``/metrics``, the
``stats`` admin kind) hand-assembled its own subset.

:class:`TelemetryRegistry` inverts that: each source registers a
snapshot callable once under a section name, and every consumer renders
from the same registry — ``/metrics`` via :meth:`prometheus_extra`
(gauge names are stable; they are part of the scrape contract), the
``stats`` admin kind's ``"server"`` section via :meth:`server_stats`,
and ad-hoc introspection via :meth:`snapshot`.

:class:`Telemetry` is the tracing/logging half: the armed flag, the
deterministic trace-id generator, the bounded ring buffer behind the
``trace`` admin kind, and the optional structured logger.  One instance
is shared by every transport of a server process, so a request traced at
the TCP edge and one traced at the HTTP edge land in the same buffer.

>>> registry = TelemetryRegistry()
>>> registry.register("quota", lambda: {"granted": 3, "rejected": 1,
...                                     "users": 2})
>>> registry.prometheus_extra()["quota_rejected"]
1
>>> registry.server_stats({"transport": "tcp"})["quota"]["granted"]
3
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional

from repro.obs.logging import StructuredLogger
from repro.obs.tracing import RequestTrace, TraceBuffer, TraceIdGenerator

__all__ = ["Telemetry", "TelemetryRegistry"]

#: Default bound on the trace ring buffer (N most recent + N slowest).
DEFAULT_TRACE_BUFFER = 32


class Telemetry:
    """Tracing + structured logging for one server process.

    Parameters
    ----------
    tracing:
        The armed flag.  Disarmed (the default), :meth:`begin_trace`
        returns ``None`` and every downstream span is a no-op flag
        check — wire bytes are identical to a build without this module.
    trace_buffer:
        Capacity of the slowest-N / most-recent-N ring buffer served by
        the ``trace`` admin kind and ``/v2/admin/trace``.
    logger:
        Optional :class:`~repro.obs.logging.StructuredLogger`; when set,
        every finished trace emits one ``request`` record and lifecycle
        hooks emit ``event`` records.  A logger implies nothing about
        tracing — ``repro-serve --log-json`` arms both.
    id_seed:
        Seed for the deterministic trace-id generator.
    """

    def __init__(
        self,
        *,
        tracing: bool = False,
        trace_buffer: int = DEFAULT_TRACE_BUFFER,
        logger: Optional[StructuredLogger] = None,
        id_seed: int = 0,
    ) -> None:
        self.tracing = bool(tracing)
        self.logger = logger
        self.ids = TraceIdGenerator(id_seed)
        self.buffer = TraceBuffer(trace_buffer)

    # -- request traces ------------------------------------------------------

    def begin_trace(
        self,
        kind: str,
        user: str = "anonymous",
        request_id: Optional[str] = None,
    ) -> Optional[RequestTrace]:
        """Start a trace for one request, or ``None`` when disarmed.

        *request_id* is a caller-supplied id (HTTP ``X-Request-Id``);
        absent, the seeded generator produces a deterministic one.
        """
        if not self.tracing:
            return None
        trace_id = request_id if request_id else self.ids.next_id()
        return RequestTrace(trace_id, kind=kind, user=user)

    def finish_trace(
        self, trace: RequestTrace, status: str
    ) -> dict[str, Any]:
        """Freeze *trace*, record it in the ring buffer, log it, and
        return its JSON tree (the inline-trace response payload)."""
        trace.finish(status)
        tree = trace.to_dict()
        self.buffer.record(tree)
        if self.logger is not None:
            self.logger.request(tree)
        return tree

    def traces(self) -> dict[str, Any]:
        """The ring buffer's snapshot (``trace`` admin kind body)."""
        return self.buffer.snapshot()

    # -- lifecycle events ----------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """Log a lifecycle event; silently dropped without a logger."""
        if self.logger is not None:
            self.logger.event(name, **fields)

    def describe(self) -> dict[str, Any]:
        """Summary facts for stats surfaces (never the traces themselves)."""
        return {
            "armed": self.tracing,
            "buffer_capacity": self.buffer.capacity,
            "recorded": self.buffer.snapshot()["recorded"],
            "logging": self.logger is not None,
        }


class TelemetryRegistry:
    """Named snapshot sources unified behind one read surface.

    Sources are zero-argument callables registered under section names
    the consumers know: ``metrics`` (ServerMetrics snapshot),
    ``scheduler``, ``engine`` (an
    :class:`~repro.service.engine.EngineStats`), ``dispatcher``
    (rejection counters), ``quota``, ``auth``, ``sessions``.  A section
    that is not registered is simply absent from every rendering — the
    TCP tier has no session store, so its stats never grow a
    ``sessions`` key.
    """

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._sources: dict[str, Callable[[], Any]] = {}

    def register(self, name: str, source: Callable[[], Any]) -> None:
        with self._lock:
            self._sources[name] = source

    def registered(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    def section(self, name: str) -> Any:
        """One section's current snapshot, or ``None`` if unregistered."""
        with self._lock:
            source = self._sources.get(name)
        return source() if source is not None else None

    def snapshot(self) -> dict[str, Any]:
        """Every registered section, snapshotted now."""
        with self._lock:
            sources = dict(self._sources)
        result = {name: source() for name, source in sorted(sources.items())}
        if self.telemetry is not None:
            result["telemetry"] = self.telemetry.describe()
        return result

    # -- consumers -----------------------------------------------------------

    def prometheus_extra(self) -> dict[str, float]:
        """The ``extra`` gauge map for ``/metrics``.

        Gauge names are part of the scrape contract — dashboards key on
        them — so this method is the single place they are defined.
        """
        extra: dict[str, float] = {}
        scheduler = self.section("scheduler")
        if scheduler is not None:
            extra["scheduler_inflight"] = scheduler["inflight"]
            extra["scheduler_overloaded"] = scheduler["overloaded"]
            extra["scheduler_worker_restarts"] = scheduler["worker_restarts"]
            extra["scheduler_workers_leaked"] = scheduler["workers_leaked"]
            extra["scheduler_deadline_shed"] = scheduler["deadline_shed"]
            extra["scheduler_deadline_exceeded"] = (
                scheduler["deadline_exceeded"]
            )
            extra["scheduler_poisoned"] = scheduler["poisoned"]
            extra["scheduler_quarantined"] = scheduler["quarantined"]
            for index, depth in enumerate(scheduler["queue_depths"]):
                extra['shard_queue_depth{shard="%d"}' % index] = depth
            flight = scheduler["singleflight"]
            extra["singleflight_leaders"] = flight["leaders"]
            extra["singleflight_coalesced"] = flight["coalesced"]
        dispatcher = self.section("dispatcher")
        if dispatcher is not None:
            extra["dispatcher_deadline_exceeded"] = dispatcher["deadline"]
        quota = self.section("quota")
        if quota is not None:
            extra["quota_granted"] = quota["granted"]
            extra["quota_rejected"] = quota["rejected"]
            extra["quota_users"] = quota["users"]
        auth = self.section("auth")
        if auth is not None:
            extra["auth_rejected"] = auth["rejected"]
        sessions = self.section("sessions")
        if sessions is not None:
            extra["sessions_corrupted"] = sessions["corrupted"]
            extra["sessions_cached"] = sessions["cached"]
        durability = self.section("durability")
        if durability is not None:
            extra["wal_records"] = durability["wal_records"]
            extra["wal_bytes"] = durability["wal_bytes"]
            extra["wal_truncated"] = durability["wal_truncated"]
            extra["recovery_seconds"] = durability["recovery_seconds"]
            extra["wal_compactions"] = durability["compactions"]
            extra["wal_write_failures"] = durability["write_failures"]
        engine = self.section("engine")
        if engine is not None:
            extra["engine_pool_hits"] = engine.pools.hits
            extra["engine_pool_misses"] = engine.pools.misses
            extra["engine_store_hits"] = engine.stores.hits
            extra["engine_store_misses"] = engine.stores.misses
        if self.telemetry is not None and self.telemetry.tracing:
            extra["traces_recorded"] = (
                self.telemetry.buffer.snapshot()["recorded"]
            )
        return extra

    def server_stats(self, base: dict[str, Any]) -> dict[str, Any]:
        """The ``"server"`` stats section: *base* (the transport's own
        identity facts) merged with every registered service section.

        Key shapes match the pre-registry hand-assembled dicts exactly;
        a ``tracing`` key appears only on an armed server, so disarmed
        stats responses stay byte-identical.
        """
        stats = dict(base)
        for name in ("sessions", "auth", "quota", "durability", "lifecycle"):
            value = self.section(name)
            if value is not None:
                stats[name] = value
        metrics = self.section("metrics")
        if metrics is not None:
            stats.update(metrics)
        scheduler = self.section("scheduler")
        if scheduler is not None:
            stats["scheduler"] = scheduler
        if self.telemetry is not None and self.telemetry.tracing:
            stats["tracing"] = self.telemetry.describe()
        return stats
