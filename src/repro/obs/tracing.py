"""Per-request trace trees: a thread-local span stack over monotonic time.

Every request that enters an *armed* server becomes a
:class:`RequestTrace` — a ``trace_id`` plus a tree of named
:class:`Span`\\ s with monotonic timings — created at the transport edge
(the HTTP front door honors ``X-Request-Id``; otherwise ids derive from
a seeded counter so tests stay reproducible) and threaded through the
dispatcher, the sharded scheduler (queue-wait vs compute split), the
engine (cache hit/miss, pool/store build), and the merge kernel's
``phase_seconds`` counters, which ride as span attributes.

The design mirrors :mod:`repro.common.budget`: the trace travels with
the request object across threads, and whichever thread is doing the
work installs it as *current* via :func:`trace_scope` so deep layers can
open spans with :func:`span` without threading a parameter through every
call signature.  With no trace installed — the disarmed default — both
:func:`span` and :func:`record_span` are a single thread-local attribute
read, so production code paths carry no measurable cost and no
behavioral drift (wire bytes stay golden-identical).

Span naming convention (dotted ``layer.phase``, see
``docs/OBSERVABILITY.md``):

``scheduler.queue``      time between enqueue and dequeue on a shard
``scheduler.worker``     the worker's compute window (fault sites included)
``engine.request``       parse + solve + serialize inside the engine
``engine.pool_build``    cluster-pool initialization (attr: cache_hit)
``engine.store_build``   precompute-sweep construction (attr: cache_hit)
``engine.solve``         the algorithm run (attrs: argmax_* counters)
``engine.serialize``     response DTO construction

Usage::

    >>> trace = RequestTrace("trace-0000-000001", kind="summary")
    >>> with trace_scope(trace):
    ...     with span("engine.request"):
    ...         with span("engine.solve", kernel="bitset"):
    ...             pass
    >>> trace.finish("ok")
    >>> tree = trace.to_dict()
    >>> [s["name"] for s in tree["spans"]]
    ['engine.request']
    >>> [s["name"] for s in tree["spans"][0]["children"]]
    ['engine.solve']
    >>> tree["spans"][0]["children"][0]["attributes"]["kernel"]
    'bitset'
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional

__all__ = [
    "RequestTrace",
    "Span",
    "TraceBuffer",
    "TraceIdGenerator",
    "current_trace",
    "record_span",
    "span",
    "trace_scope",
]


class Span:
    """One timed node of a trace tree (monotonic start/end + attributes)."""

    __slots__ = ("name", "start", "end", "attributes", "children")

    def __init__(self, name: str, start: float) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: dict[str, Any] = {}
        self.children: list["Span"] = []

    @property
    def seconds(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return max(0.0, end - self.start)

    def to_dict(self, origin: float) -> dict[str, Any]:
        """JSON shape, offsets relative to the trace's *origin* instant."""
        return {
            "name": self.name,
            "start_seconds": max(0.0, self.start - origin),
            "duration_seconds": self.seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict(origin) for child in self.children],
        }


class RequestTrace:
    """The trace of one request: an id, a span tree, and annotations.

    Spans are appended by whichever thread currently holds the trace
    (transport thread at the edge, shard worker during compute) — the
    handoff is sequential, but a lock guards mutation anyway so a late
    annotation from a supervision path can never corrupt the tree.
    """

    __slots__ = (
        "trace_id", "kind", "user", "started", "wall_time", "status",
        "annotations", "_root_spans", "_lock", "_finished_seconds",
    )

    def __init__(
        self,
        trace_id: str,
        kind: str = "unknown",
        user: str = "anonymous",
    ) -> None:
        self.trace_id = trace_id
        self.kind = kind
        self.user = user
        self.started = time.perf_counter()
        self.wall_time = time.time()
        self.status: Optional[str] = None
        self.annotations: dict[str, Any] = {}
        self._root_spans: list[Span] = []
        self._lock = threading.Lock()
        self._finished_seconds: Optional[float] = None

    # -- span recording ------------------------------------------------------

    def attach(self, spans: "list[Span]") -> None:
        with self._lock:
            self._root_spans.extend(spans)

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        **attributes: Any,
    ) -> Span:
        """Record a span from explicit monotonic instants (the scheduler
        uses this for queue-wait: the span *ends* where measurement
        resumed, on a different thread than it started)."""
        node = Span(name, start)
        node.end = end
        node.attributes.update(attributes)
        with self._lock:
            if parent is not None:
                parent.children.append(node)
            else:
                self._root_spans.append(node)
        return node

    def annotate(self, key: str, value: Any) -> None:
        """Attach one request-level fact (shed/retry/coalesce/fault)."""
        with self._lock:
            self.annotations[key] = value

    # -- lifecycle -----------------------------------------------------------

    def finish(self, status: str) -> None:
        """Freeze the trace: record terminal status and total duration."""
        with self._lock:
            if self._finished_seconds is None:
                self._finished_seconds = time.perf_counter() - self.started
                self.status = status

    @property
    def duration_seconds(self) -> float:
        if self._finished_seconds is not None:
            return self._finished_seconds
        return time.perf_counter() - self.started

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            spans = [node.to_dict(self.started) for node in self._root_spans]
            return {
                "trace_id": self.trace_id,
                "kind": self.kind,
                "user": self.user,
                "status": self.status,
                "wall_time": self.wall_time,
                "duration_seconds": self.duration_seconds,
                "annotations": dict(self.annotations),
                "spans": spans,
            }

    # -- convenience lookups (tests, scenario rollups) -----------------------

    def find_span(self, name: str) -> Optional[Span]:
        """Depth-first search for the first span called *name*."""
        with self._lock:
            stack = list(reversed(self._root_spans))
        while stack:
            node = stack.pop()
            if node.name == name:
                return node
            stack.extend(reversed(node.children))
        return None


# -- thread-local current trace ------------------------------------------------

_local = threading.local()


class _Installed:
    """The per-thread view of a trace: the trace plus this thread's open
    span stack (spans opened here nest here; the tree is shared)."""

    __slots__ = ("trace", "stack")

    def __init__(self, trace: RequestTrace) -> None:
        self.trace = trace
        self.stack: list[Span] = []


def current_trace() -> Optional[RequestTrace]:
    """The trace installed on this thread, if any."""
    installed = getattr(_local, "installed", None)
    return installed.trace if installed is not None else None


@contextmanager
def trace_scope(trace: Optional[RequestTrace]) -> Iterator[None]:
    """Install *trace* as this thread's current trace for the scope.

    ``trace_scope(None)`` is a supported no-op (mirroring
    :func:`repro.common.budget.budget_scope`) so call sites need no
    conditional.  Scopes nest; the previous trace is restored on exit.
    """
    if trace is None:
        yield
        return
    previous = getattr(_local, "installed", None)
    _local.installed = _Installed(trace)
    try:
        yield
    finally:
        _local.installed = previous


@contextmanager
def span(name: str, **attributes: Any) -> Iterator[Optional[Span]]:
    """Open a timed span under this thread's current trace.

    With no trace installed this is one thread-local read and a
    ``yield None`` — cheap enough for per-request hot paths.  The span
    nests under whatever span this thread currently has open.
    """
    installed = getattr(_local, "installed", None)
    if installed is None:
        yield None
        return
    node = Span(name, time.perf_counter())
    if attributes:
        node.attributes.update(attributes)
    stack = installed.stack
    if stack:
        with installed.trace._lock:
            stack[-1].children.append(node)
    else:
        with installed.trace._lock:
            installed.trace._root_spans.append(node)
    stack.append(node)
    try:
        yield node
    finally:
        node.end = time.perf_counter()
        stack.pop()


def record_span(name: str, seconds: float, **attributes: Any) -> None:
    """Record an already-elapsed phase as a span ending *now*.

    The engine uses this to surface work whose timing it already
    measured (cache-aware pool/store builds) without restructuring the
    build path.  No-op when no trace is installed.
    """
    installed = getattr(_local, "installed", None)
    if installed is None:
        return
    end = time.perf_counter()
    node = Span(name, end - max(0.0, seconds))
    node.end = end
    node.attributes.update(attributes)
    stack = installed.stack
    with installed.trace._lock:
        if stack:
            stack[-1].children.append(node)
        else:
            installed.trace._root_spans.append(node)


def annotate(key: str, value: Any) -> None:
    """Annotate this thread's current trace; no-op when none installed."""
    installed = getattr(_local, "installed", None)
    if installed is not None:
        installed.trace.annotate(key, value)


# -- trace ids -----------------------------------------------------------------


class TraceIdGenerator:
    """Deterministic request ids from a seeded counter.

    Distributed tracing normally wants random ids; this repo wants
    *reproducible* ones — the same test run produces the same ids — so
    the id is ``trace-<seed:04x>-<counter:06d>``.  Transport edges that
    receive a caller-supplied id (HTTP ``X-Request-Id``) bypass the
    generator entirely.

    >>> generator = TraceIdGenerator(seed=0)
    >>> generator.next_id()
    'trace-0000-000001'
    >>> generator.next_id()
    'trace-0000-000002'
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._counter = itertools.count(1)

    def next_id(self) -> str:
        return "trace-%04x-%06d" % (self.seed & 0xFFFF, next(self._counter))


# -- the ring buffer -----------------------------------------------------------


class TraceBuffer:
    """Bounded retention of finished traces: N most recent + N slowest.

    ``record`` is O(log N) under one lock (a deque for recency, a
    min-heap for the slowest set), so a hot server pays a few hundred
    nanoseconds per request to keep an always-on flight recorder.  The
    ``trace`` admin kind and ``/v2/admin/trace`` serve :meth:`snapshot`.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1, got %d" % capacity)
        self.capacity = capacity
        self._lock = threading.Lock()
        self._recent: deque[dict[str, Any]] = deque(maxlen=capacity)
        #: (duration, tiebreak, trace_dict) min-heap of the slowest N.
        self._slowest: list[tuple[float, int, dict[str, Any]]] = []
        self._tiebreak = itertools.count()
        self._recorded = 0

    def record(self, trace: dict[str, Any]) -> None:
        duration = float(trace.get("duration_seconds", 0.0))
        with self._lock:
            self._recorded += 1
            self._recent.append(trace)
            entry = (duration, next(self._tiebreak), trace)
            if len(self._slowest) < self.capacity:
                heapq.heappush(self._slowest, entry)
            elif duration > self._slowest[0][0]:
                heapq.heapreplace(self._slowest, entry)

    def snapshot(self) -> dict[str, Any]:
        """``recent`` oldest-to-newest, ``slowest`` slowest-first."""
        with self._lock:
            recent = list(self._recent)
            slowest = [
                entry[2]
                for entry in sorted(
                    self._slowest, key=lambda e: (-e[0], e[1])
                )
            ]
            return {
                "capacity": self.capacity,
                "recorded": self._recorded,
                "recent": recent,
                "slowest": slowest,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._recent)
