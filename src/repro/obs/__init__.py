"""Observability for the serving stack: tracing, structured logs, registry.

Three modules, one story (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.tracing` — per-request trace trees over a thread-local
  span stack (``span("scheduler.queue")``, ``span("engine.pool_build")``,
  …), deterministic trace ids, and the bounded slowest/most-recent ring
  buffer.
* :mod:`repro.obs.logging` — JSON-lines structured logging: one
  completion record per request plus lifecycle events.
* :mod:`repro.obs.registry` — :class:`Telemetry` (the armed flag, id
  generator, buffer, logger) and :class:`TelemetryRegistry` (every
  metrics source unified behind ``/metrics`` and the ``stats`` /
  ``trace`` admin kinds).

Everything here is off by default: a server built without a
:class:`Telemetry` (or with one that is disarmed) takes a single flag
check per request and produces byte-identical wire output.
"""

from repro.obs.logging import StructuredLogger, open_log_sink
from repro.obs.registry import Telemetry, TelemetryRegistry
from repro.obs.tracing import (
    RequestTrace,
    Span,
    TraceBuffer,
    TraceIdGenerator,
    annotate,
    current_trace,
    record_span,
    span,
    trace_scope,
)

__all__ = [
    "RequestTrace",
    "Span",
    "StructuredLogger",
    "Telemetry",
    "TelemetryRegistry",
    "TraceBuffer",
    "TraceIdGenerator",
    "annotate",
    "current_trace",
    "open_log_sink",
    "record_span",
    "span",
    "trace_scope",
]
