"""Structured JSON-lines logging for the serving stack.

One line per event, one JSON object per line — the format every log
pipeline (jq, Loki, BigQuery) ingests without a parser.  Two event
families:

* **request** — exactly one completion record per analytic request:
  trace_id, user, kind, status, duration, the span tree, and any
  shed/retry/fault annotations.  Emitted by the dispatcher when the
  request's future resolves.
* **lifecycle** — server events worth a forensic timeline: worker
  restart, shard quarantine, drain start/finish.  Emitted by the
  scheduler supervisor and the transport shutdown paths.

Armed via ``repro-serve --log-json [FILE]`` (bare flag logs to stderr).
Every record carries ``ts`` (wall clock, seconds) and ``event``.

>>> import io
>>> sink = io.StringIO()
>>> logger = StructuredLogger(sink)
>>> logger.event("worker_restart", shard=2, restarts=1)
>>> record = __import__("json").loads(sink.getvalue())
>>> record["event"], record["shard"]
('worker_restart', 2)
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import Any, IO, Optional

__all__ = ["StructuredLogger", "open_log_sink"]


def _jsonable(value: Any) -> Any:
    """Coerce a value to something json.dumps accepts, falling back to str."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


class StructuredLogger:
    """Thread-safe JSON-lines writer.

    Serialization happens outside the lock; only the single
    ``write`` + ``flush`` pair is serialized, so concurrent shard
    workers never interleave partial lines.
    """

    def __init__(self, stream: IO[str]) -> None:
        self._stream = stream
        self._lock = threading.Lock()
        self._emitted = 0

    @property
    def emitted(self) -> int:
        return self._emitted

    def _emit(self, record: dict[str, Any]) -> None:
        line = json.dumps(_jsonable(record), sort_keys=True)
        with self._lock:
            self._emitted += 1
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except ValueError:
                # Sink closed under us (shutdown race); logging must never
                # take down the request path.
                pass

    def request(self, trace: dict[str, Any]) -> None:
        """Emit the one completion record for a finished request trace."""
        record = {
            "event": "request",
            "ts": trace.get("wall_time", time.time()),
            "trace_id": trace.get("trace_id"),
            "user": trace.get("user"),
            "kind": trace.get("kind"),
            "status": trace.get("status"),
            "duration_seconds": trace.get("duration_seconds"),
            "annotations": trace.get("annotations", {}),
            "spans": trace.get("spans", []),
        }
        self._emit(record)

    def event(self, name: str, **fields: Any) -> None:
        """Emit a lifecycle event (worker_restart, quarantine, drain…)."""
        record = {"event": name, "ts": time.time()}
        record.update(fields)
        self._emit(record)


def open_log_sink(target: Optional[str]) -> IO[str]:
    """Resolve a ``--log-json`` argument to a text stream.

    ``None`` / ``"-"`` → stderr (the bare-flag default); anything else
    is an append-mode file path, line-buffered so ``tail -f`` works.
    """
    if target is None or target == "-":
        return sys.stderr
    return io.open(target, "a", encoding="utf-8", buffering=1)
