"""k-modes clustering for categorical tuples (Huang 1998 style).

This is the categorical analogue of k-means the paper invokes for its
``k-means-Fixed-Order`` variant (Section 5.2) and when discussing standard
clustering as a (non-)solution (Section 2).  Centroids are *modes*: the
attribute-wise most frequent value among a cluster's members; the metric is
the simple matching distance (Hamming distance over attributes), matching
the paper's element distance (Definition 3.1).

Implemented from scratch — the reproduction environment has no scikit-learn
— with deterministic seeded initialization.
"""

from __future__ import annotations

import random as _random
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import InvalidParameterError

Point = tuple[int, ...]


@dataclass(frozen=True)
class KModesResult:
    """Cluster assignment produced by :func:`kmodes`."""

    labels: tuple[int, ...]
    modes: tuple[Point, ...]
    cost: int
    iterations: int

    @property
    def k(self) -> int:
        return len(self.modes)


def hamming(p: Point, q: Point) -> int:
    """Number of attributes where *p* and *q* differ."""
    return sum(1 for a, b in zip(p, q) if a != b)


def _mode_of(members: Sequence[Point], m: int, rng: _random.Random) -> Point:
    """Attribute-wise most frequent value (ties broken by smallest code)."""
    mode = []
    for attr in range(m):
        counts = Counter(point[attr] for point in members)
        best_value = min(
            counts, key=lambda value: (-counts[value], value)
        )
        mode.append(best_value)
    return tuple(mode)


def kmodes(
    points: Sequence[Point],
    k: int,
    seed: int = 0,
    max_iterations: int = 50,
) -> KModesResult:
    """Cluster *points* into *k* groups by iterative mode refinement.

    Initialization picks k distinct points at random (seeded).  Iterations
    alternate assignment (nearest mode, ties to the lowest cluster id) and
    mode recomputation until labels stabilize or *max_iterations* is hit.
    Empty clusters are re-seeded with the point farthest from its mode.
    """
    if not points:
        raise InvalidParameterError("kmodes() needs at least one point")
    if not 1 <= k <= len(points):
        raise InvalidParameterError(
            "k=%d out of range [1, %d]" % (k, len(points))
        )
    m = len(points[0])
    rng = _random.Random(seed)
    distinct = sorted(set(points))
    if k > len(distinct):
        k = len(distinct)
    modes: list[Point] = rng.sample(distinct, k)
    labels: list[int] = [-1] * len(points)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        new_labels = []
        for point in points:
            best = min(
                range(k), key=lambda c: (hamming(point, modes[c]), c)
            )
            new_labels.append(best)
        # Re-seed empty clusters with the worst-assigned point.
        used = set(new_labels)
        for cluster_id in range(k):
            if cluster_id in used:
                continue
            worst = max(
                range(len(points)),
                key=lambda i: (hamming(points[i], modes[new_labels[i]]), i),
            )
            new_labels[worst] = cluster_id
            used.add(cluster_id)
        if new_labels == labels:
            break
        labels = new_labels
        for cluster_id in range(k):
            members = [
                points[i] for i, lab in enumerate(labels) if lab == cluster_id
            ]
            if members:
                modes[cluster_id] = _mode_of(members, m, rng)
    cost = sum(
        hamming(point, modes[label]) for point, label in zip(points, labels)
    )
    return KModesResult(
        labels=tuple(labels),
        modes=tuple(modes),
        cost=cost,
        iterations=iterations,
    )
