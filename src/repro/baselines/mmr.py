"""MMR-style lambda-parameterized diversification (Appendix A.5.4).

Maximal Marginal Relevance (Carbonell & Goldstein 1998; the max-sum variant
experimentally studied by Vieira et al., ICDE 2011) selects k elements
balancing relevance and diversity through a trade-off parameter lambda::

    next = argmax_t  (1 - lambda) * rel(t) + lambda * div(t, S)

where ``rel`` is the normalized value and ``div`` the normalized distance
to the already-selected set (min-distance form).  lambda = 0 reproduces the
plain top-k; lambda = 1 is pure dispersion (ties broken by value, so the
first pick is still the top element's peer group) — matching the behaviour
shown in the paper's comparison table for lambda in {0, 0.2, 0.5, 0.8, 1.0}.

This is a result *diversification* baseline: it returns elements, no
``*``-summaries, no coverage guarantee — which is the point of the
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import Pattern, distance


@dataclass(frozen=True)
class MmrPick:
    """One selected element with its selection-time MMR score."""

    rank: int
    element: Pattern
    score: float
    mmr_score: float


def mmr_select(
    answers: AnswerSet,
    k: int,
    lam: float,
    L: int | None = None,
) -> list[MmrPick]:
    """Greedy MMR selection of k elements from the top-L (or all of S)."""
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    if not 0.0 <= lam <= 1.0:
        raise InvalidParameterError("lambda=%r out of [0, 1]" % lam)
    scope = min(L if L is not None else answers.n, answers.n)
    values = answers.values[:scope]
    elements = answers.elements[:scope]
    v_lo, v_hi = min(values), max(values)
    v_span = (v_hi - v_lo) or 1.0
    m = answers.m

    def relevance(rank: int) -> float:
        return (values[rank] - v_lo) / v_span

    chosen: list[int] = []
    picks: list[MmrPick] = []
    available = list(range(scope))
    for _ in range(min(k, scope)):
        best_rank = None
        best_score = None
        for rank in available:
            if chosen:
                div = min(
                    distance(elements[rank], elements[other])
                    for other in chosen
                ) / m
            else:
                div = 0.0
            score = (1.0 - lam) * relevance(rank) + lam * div
            # Tie-break toward higher value, then lower rank: deterministic
            # and matches "first pick is the top element" at lambda = 1.
            key = (score, values[rank], -rank)
            if best_score is None or key > best_score:
                best_score = key
                best_rank = rank
        assert best_rank is not None
        chosen.append(best_rank)
        available.remove(best_rank)
        picks.append(
            MmrPick(
                rank=best_rank,
                element=elements[best_rank],
                score=values[best_rank],
                mmr_score=best_score[0],
            )
        )
    return picks
