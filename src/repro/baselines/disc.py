"""DisC diversity (Drosou & Pitoura; PVLDB 2012), adapted per Appendix A.5.3.

A *DisC diverse subset* S' of a set P satisfies: (coverage) every element of
P is within distance <= D of some element of S'; (dissimilarity) no two
elements of S' are within distance <= D of each other; and |S'| is to be
minimized.  There is no bound on |S'| and values are ignored — the two
properties the paper criticizes.

The greedy construction below (scan in descending value, keep any element
not yet covered by the chosen set's D-balls) yields a maximal independent
set in the D-similarity graph, which is simultaneously a dominating set —
i.e., a valid DisC diverse subset.  Scanning by value is the adaptation
that folds in relevance, as in the paper's comparison; an exact minimal
search is provided for tiny inputs.
"""

from __future__ import annotations

from itertools import combinations

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import distance
from repro.baselines.diversified_topk import Representative, _neighbourhood


def _is_disc_diverse(
    answers: AnswerSet, subset: list[int], scope: int, D: int
) -> bool:
    elements = answers.elements
    for a, b in combinations(subset, 2):
        if distance(elements[a], elements[b]) <= D:
            return False
    for rank in range(scope):
        if not any(
            distance(elements[rank], elements[chosen]) <= D
            for chosen in subset
        ):
            return False
    return True


def disc_greedy(
    answers: AnswerSet, D: int, L: int | None = None
) -> list[Representative]:
    """Greedy DisC diverse subset over the top-L (or all) elements."""
    if D < 0:
        raise InvalidParameterError("D=%d must be >= 0" % D)
    scope = min(L if L is not None else answers.n, answers.n)
    elements = answers.elements
    chosen: list[int] = []
    for rank in range(scope):
        if all(
            distance(elements[rank], elements[other]) > D for other in chosen
        ):
            chosen.append(rank)
    result = []
    for rank in chosen:
        size, avg = _neighbourhood(answers, rank, D + 1)
        result.append(
            Representative(
                rank=rank,
                element=elements[rank],
                score=answers.values[rank],
                neighbourhood_size=size,
                neighbourhood_avg=avg,
            )
        )
    return result


def disc_exact_minimum(
    answers: AnswerSet, D: int, L: int | None = None
) -> list[Representative]:
    """Smallest DisC diverse subset by exhaustive search (tiny inputs)."""
    scope = min(L if L is not None else answers.n, answers.n)
    if scope > 16:
        raise InvalidParameterError(
            "exact DisC search refused for L=%d > 16; use the greedy" % scope
        )
    for size in range(1, scope + 1):
        for subset in combinations(range(scope), size):
            if _is_disc_diverse(answers, list(subset), scope, D):
                result = []
                for rank in subset:
                    count, avg = _neighbourhood(answers, rank, D + 1)
                    result.append(
                        Representative(
                            rank=rank,
                            element=answers.elements[rank],
                            score=answers.values[rank],
                            neighbourhood_size=count,
                            neighbourhood_avg=avg,
                        )
                    )
                return result
    raise AssertionError("a singleton subset is always DisC diverse")
