"""Diversified top-k (Qin, Yu, Chang; PVLDB 2012), adapted per Appendix A.5.2.

Select at most k *elements* (not patterns) such that every chosen pair is
dissimilar — in our metric, at distance >= D — maximizing the **sum** of the
chosen elements' scores.  The paper runs it on the top-L elements to add a
coverage flavour, and reports for each chosen representative both its own
score and the average score of the elements within distance D-1 of it (the
implicit "cluster" around the representative), which is how it exposes the
baseline's weakness: representatives drag in low-valued neighbours and give
no ``*``-pattern summary.

Both an exact branch-and-bound (small L) and the standard greedy are
provided.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import Pattern, distance


@dataclass(frozen=True)
class Representative:
    """A chosen element with its implicit neighbourhood summary."""

    rank: int  # 0-based rank in S
    element: Pattern
    score: float
    neighbourhood_size: int
    neighbourhood_avg: float  # avg score of elements within distance D-1


def _neighbourhood(
    answers: AnswerSet, rank: int, D: int
) -> tuple[int, float]:
    element = answers.elements[rank]
    radius = max(D - 1, 0)
    members = [
        i
        for i in range(answers.n)
        if distance(element, answers.elements[i]) <= radius
    ]
    avg = sum(answers.values[i] for i in members) / len(members)
    return len(members), avg


def _to_representatives(
    answers: AnswerSet, chosen: list[int], D: int
) -> list[Representative]:
    result = []
    for rank in chosen:
        size, avg = _neighbourhood(answers, rank, D)
        result.append(
            Representative(
                rank=rank,
                element=answers.elements[rank],
                score=answers.values[rank],
                neighbourhood_size=size,
                neighbourhood_avg=avg,
            )
        )
    result.sort(key=lambda r: r.rank)
    return result


def diversified_topk_greedy(
    answers: AnswerSet, k: int, D: int, L: int | None = None
) -> list[Representative]:
    """Greedy: scan by descending value, keep elements far from the kept."""
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    scope = L if L is not None else answers.n
    chosen: list[int] = []
    for rank in range(min(scope, answers.n)):
        if len(chosen) >= k:
            break
        element = answers.elements[rank]
        if all(
            distance(element, answers.elements[other]) >= D
            for other in chosen
        ):
            chosen.append(rank)
    return _to_representatives(answers, chosen, D)


def diversified_topk_exact(
    answers: AnswerSet, k: int, D: int, L: int | None = None
) -> list[Representative]:
    """Exact max-sum selection by branch and bound (for small L).

    Elements are scanned in descending value; the bound adds the next
    (k - chosen) best remaining values, which is admissible because values
    are sorted.
    """
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    scope = min(L if L is not None else answers.n, answers.n)
    if scope > 40:
        raise InvalidParameterError(
            "exact search refused for L=%d > 40; use the greedy" % scope
        )
    values = answers.values
    elements = answers.elements
    best_sum = -1.0
    best: list[int] = []

    def bound(start: int, remaining: int) -> float:
        return sum(values[start:start + remaining])

    def search(start: int, chosen: list[int], total: float) -> None:
        nonlocal best_sum, best
        if total > best_sum:
            best_sum = total
            best = list(chosen)
        if len(chosen) >= k or start >= scope:
            return
        if total + bound(start, k - len(chosen)) <= best_sum:
            return
        for rank in range(start, scope):
            if total + bound(rank, k - len(chosen)) <= best_sum:
                break
            element = elements[rank]
            if all(
                distance(element, elements[other]) >= D for other in chosen
            ):
                chosen.append(rank)
                search(rank + 1, chosen, total + values[rank])
                chosen.pop()

    search(0, [], 0.0)
    return _to_representatives(answers, best, D)
