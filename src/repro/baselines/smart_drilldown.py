"""Smart drill-down (Joglekar, Garcia-Molina, Parameswaran; ICDE 2016).

The paper's Appendix A.5.1 compares against smart drill-down: find an
ordered set R of at most k rules (patterns with ``*``) maximizing::

    score(R) = sum_r MCount(r, R) * W(r)

where ``MCount(r, R)`` is the number of tuples covered by r but by no
earlier rule, and ``W(r)`` is the rule's number of non-star attributes
(more specific rules are "better").  To adapt it to valued tuples the paper
also evaluates a value-weighted variant that multiplies each term by
``val(r)``, the average value of the tuples r newly covers.

Both scoring modes are implemented with the greedy algorithm the original
paper shows to work well: repeatedly append the rule with maximum marginal
gain.  Candidate rules are the generalizations of the input elements (the
same pool construction the core uses), which contains every rule with
non-zero marginal count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import Pattern, level
from repro.core.semilattice import ClusterPool


@dataclass(frozen=True)
class DrillDownRule:
    """One output rule with its bookkeeping at selection time."""

    pattern: Pattern
    weight: int  # W(r): number of non-star attributes
    marginal_count: int  # MCount(r, R) when selected
    marginal_avg: float  # avg value of the newly covered tuples
    gain: float  # contribution to score(R)


def smart_drilldown(
    answers: AnswerSet,
    k: int,
    restrict_to_top: int | None = None,
    weighted_by_value: bool = True,
) -> list[DrillDownRule]:
    """Greedy smart drill-down over *answers*.

    *restrict_to_top* runs it on the top-L elements only (the paper
    evaluates both "on top-10 elements" and "on all elements").
    *weighted_by_value* selects the value-weighted scoring the paper uses
    for its comparison; with False the original count-based score is used.
    """
    if k < 1:
        raise InvalidParameterError("k=%d must be >= 1" % k)
    scope = restrict_to_top if restrict_to_top is not None else answers.n
    if not 1 <= scope <= answers.n:
        raise InvalidParameterError(
            "restrict_to_top=%r out of range [1, %d]" % (restrict_to_top, answers.n)
        )
    pool = ClusterPool(answers, L=scope, strategy="eager")
    in_scope = frozenset(range(scope))
    values = answers.values
    rules: list[DrillDownRule] = []
    covered: set[int] = set()
    candidates: list[Pattern] = list(pool.patterns())
    for _ in range(k):
        best: DrillDownRule | None = None
        for pattern in candidates:
            weight = len(pattern) - level(pattern)
            if weight == 0:
                continue  # the all-star rule has W = 0 and can never gain
            fresh = [
                i
                for i in pool.coverage(pattern)
                if i in in_scope and i not in covered
            ]
            if not fresh:
                continue
            marginal_avg = sum(values[i] for i in fresh) / len(fresh)
            gain = float(len(fresh) * weight)
            if weighted_by_value:
                gain *= marginal_avg
            candidate = DrillDownRule(
                pattern=pattern,
                weight=weight,
                marginal_count=len(fresh),
                marginal_avg=marginal_avg,
                gain=gain,
            )
            if (
                best is None
                or candidate.gain > best.gain + 1e-12
                or (
                    abs(candidate.gain - best.gain) <= 1e-12
                    and candidate.pattern < best.pattern
                )
            ):
                best = candidate
        if best is None:
            break
        rules.append(best)
        covered.update(
            i for i in pool.coverage(best.pattern) if i in in_scope
        )
    return rules


def drilldown_score(rules: Sequence[DrillDownRule]) -> float:
    """score(R): the sum of the selected rules' gains."""
    return sum(rule.gain for rule in rules)
