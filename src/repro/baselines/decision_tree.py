"""A from-scratch CART decision tree and the Section 8 summarizer adaption.

The user study compares the paper's cluster patterns against summaries
induced by a decision tree trained to separate the top-L tuples from the
rest: every "positive" leaf (top-L tuples in the majority) yields a
predicate pattern over the root-to-leaf path.  The original study used
scikit-learn, which is unavailable offline, so this module implements the
needed subset of CART directly:

* binary splits on categorical equality (``attr == value`` vs ``!=``) —
  the natural split for the paper's categorical group-by attributes;
* gini-impurity split selection, deterministic tie-breaks;
* depth control, with :func:`tune_tree` searching for the largest depth
  whose positive-leaf count stays <= k, "as close as possible to, but no
  greater than, k" (Section 8.1).

Tree patterns are *more complex* than cluster patterns: paths mix equality
and negation conditions, possibly several per attribute.  The user-study
simulator keys its reading-cost and recall models off
:meth:`TreePattern.complexity`, which counts conditions (negations extra),
operationalizing the paper's interpretability hypothesis.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.core.cluster import Pattern


@dataclass(frozen=True, order=True)
class Condition:
    """One path predicate: attribute `==` or `!=` a value code."""

    attribute: int
    operator: str  # "==" | "!="
    value: int

    def matches(self, element: Sequence[int]) -> bool:
        if self.operator == "==":
            return element[self.attribute] == self.value
        return element[self.attribute] != self.value


@dataclass(frozen=True)
class TreePattern:
    """A positive leaf's path: conjunction of conditions."""

    conditions: tuple[Condition, ...]
    positive_count: int
    negative_count: int
    avg_value: float

    def matches(self, element: Sequence[int]) -> bool:
        return all(condition.matches(element) for condition in self.conditions)

    @property
    def complexity(self) -> int:
        """Reading/memorability cost: conditions count, negations doubly.

        A cluster pattern's analogue is its number of non-star attributes;
        negated conditions ("occupation != student") carry extra cognitive
        load, per the hypothesis the user study tests.
        """
        return sum(
            1 if condition.operator == "==" else 2
            for condition in self.conditions
        )

    def describe(self, answers: AnswerSet) -> str:
        if not self.conditions:
            return "(always)"
        parts = []
        for condition in self.conditions:
            name = (
                answers.codec.attributes[condition.attribute]
                if answers.codec is not None
                else "A%d" % condition.attribute
            )
            value = (
                answers.codec.interner(condition.attribute).value(condition.value)
                if answers.codec is not None
                else condition.value
            )
            parts.append("%s %s %s" % (name, condition.operator, value))
        return " AND ".join(parts)


class _Node:
    __slots__ = ("condition", "left", "right", "indices", "is_leaf")

    def __init__(self, indices: list[int]) -> None:
        self.indices = indices
        self.condition: Condition | None = None
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.is_leaf = True


def _gini(positives: int, total: int) -> float:
    if total == 0:
        return 0.0
    p = positives / total
    return 2.0 * p * (1.0 - p)


class DecisionTreeClassifier:
    """Binary CART over integer-coded categorical features."""

    def __init__(self, max_depth: int = 5, min_samples_split: int = 2) -> None:
        if max_depth < 1:
            raise InvalidParameterError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise InvalidParameterError("min_samples_split must be >= 2")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self._root: _Node | None = None
        self._X: list[Pattern] = []
        self._y: list[bool] = []

    def fit(self, X: Sequence[Pattern], y: Sequence[bool]) -> "DecisionTreeClassifier":
        if len(X) != len(y):
            raise InvalidParameterError("X and y length mismatch")
        if not X:
            raise InvalidParameterError("cannot fit on an empty dataset")
        self._X = list(X)
        self._y = list(y)
        self._root = _Node(list(range(len(X))))
        self._split(self._root, depth=0)
        return self

    def _best_split(self, indices: list[int]) -> tuple[Condition, list[int], list[int]] | None:
        X, y = self._X, self._y
        total = len(indices)
        positives = sum(1 for i in indices if y[i])
        if positives == 0 or positives == total:
            return None
        parent_impurity = _gini(positives, total)
        m = len(X[0])
        best = None
        best_key = None
        for attribute in range(m):
            # One pass gathers per-value (count, positive) statistics.
            counts: Counter = Counter()
            positive_counts: Counter = Counter()
            for i in indices:
                value = X[i][attribute]
                counts[value] += 1
                if y[i]:
                    positive_counts[value] += 1
            if len(counts) < 2:
                continue
            for value in sorted(counts):
                left_total = counts[value]
                left_pos = positive_counts[value]
                right_total = total - left_total
                right_pos = positives - left_pos
                weighted = (
                    left_total * _gini(left_pos, left_total)
                    + right_total * _gini(right_pos, right_total)
                ) / total
                gain = parent_impurity - weighted
                key = (-gain, attribute, value)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (attribute, value, gain)
        if best is None or best[2] <= 1e-12:
            return None
        attribute, value, _ = best
        condition = Condition(attribute, "==", value)
        left = [i for i in indices if X[i][attribute] == value]
        right = [i for i in indices if X[i][attribute] != value]
        return condition, left, right

    def _split(self, node: _Node, depth: int) -> None:
        if depth >= self.max_depth or len(node.indices) < self.min_samples_split:
            return
        found = self._best_split(node.indices)
        if found is None:
            return
        condition, left_idx, right_idx = found
        node.condition = condition
        node.is_leaf = False
        node.left = _Node(left_idx)
        node.right = _Node(right_idx)
        self._split(node.left, depth + 1)
        self._split(node.right, depth + 1)

    def _leaf_for(self, element: Sequence[int]) -> _Node:
        if self._root is None:
            raise InvalidParameterError("classifier is not fitted")
        node = self._root
        while not node.is_leaf:
            assert node.condition is not None
            node = node.left if node.condition.matches(element) else node.right
            assert node is not None
        return node

    def predict(self, element: Sequence[int]) -> bool:
        """Majority label of the leaf the element falls into."""
        leaf = self._leaf_for(element)
        positives = sum(1 for i in leaf.indices if self._y[i])
        return positives * 2 > len(leaf.indices)

    def leaves(self) -> list[tuple[tuple[Condition, ...], list[int]]]:
        """All leaves as (path conditions, training indices)."""
        if self._root is None:
            raise InvalidParameterError("classifier is not fitted")
        result: list[tuple[tuple[Condition, ...], list[int]]] = []

        def walk(node: _Node, path: tuple[Condition, ...]) -> None:
            if node.is_leaf:
                result.append((path, node.indices))
                return
            assert node.condition is not None and node.left and node.right
            positive = node.condition
            negative = Condition(
                positive.attribute, "!=", positive.value
            )
            walk(node.left, path + (positive,))
            walk(node.right, path + (negative,))

        walk(self._root, ())
        return result

    def depth(self) -> int:
        """Actual depth of the fitted tree."""

        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)


def positive_leaf_patterns(
    tree: DecisionTreeClassifier,
    answers: AnswerSet,
    L: int,
) -> list[TreePattern]:
    """Extract patterns from leaves where top-L tuples are the majority."""
    patterns = []
    for path, indices in tree.leaves():
        positives = sum(1 for i in indices if i < L)
        negatives = len(indices) - positives
        if positives * 2 > len(indices) and positives > 0:
            avg = sum(answers.values[i] for i in indices) / len(indices)
            patterns.append(
                TreePattern(
                    conditions=path,
                    positive_count=positives,
                    negative_count=negatives,
                    avg_value=avg,
                )
            )
    patterns.sort(key=lambda p: (-p.avg_value, p.conditions))
    return patterns


def tune_tree(
    answers: AnswerSet,
    L: int,
    k: int,
    max_depth_limit: int = 12,
) -> tuple[DecisionTreeClassifier, list[TreePattern]]:
    """Fit trees of increasing depth; keep the deepest with <= k positive
    leaves (Section 8.1's tuning rule: as close to k as possible, not
    above)."""
    if not 1 <= L <= answers.n:
        raise InvalidParameterError("L=%d out of range [1, %d]" % (L, answers.n))
    X = answers.elements
    y = [i < L for i in range(answers.n)]
    best_tree = None
    best_patterns: list[TreePattern] = []
    for depth in range(1, max_depth_limit + 1):
        tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
        patterns = positive_leaf_patterns(tree, answers, L)
        if len(patterns) > k:
            break
        if len(patterns) >= len(best_patterns):
            best_tree = tree
            best_patterns = patterns
    if best_tree is None:
        best_tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        best_patterns = positive_leaf_patterns(best_tree, answers, L)[:k]
    return best_tree, best_patterns
