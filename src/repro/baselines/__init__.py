"""Baseline and comparison approaches (Section 2, Section 8, Appendix A.5).

Each module adapts a published alternative to the paper's setting so the
qualitative comparisons of Appendix A.5 and the user-study comparison of
Section 8 can be regenerated:

* :mod:`repro.baselines.smart_drilldown` — Joglekar et al., ICDE 2016.
* :mod:`repro.baselines.diversified_topk` — Qin et al., PVLDB 2012.
* :mod:`repro.baselines.disc` — Drosou & Pitoura, PVLDB 2012.
* :mod:`repro.baselines.mmr` — MMR-style max-sum diversification
  (Vieira et al., ICDE 2011).
* :mod:`repro.baselines.decision_tree` — from-scratch CART used as the
  adapted classifier of Section 8.
* :mod:`repro.baselines.kmodes` — categorical k-means substrate.
"""

from repro.baselines.kmodes import kmodes, KModesResult

__all__ = ["kmodes", "KModesResult"]
