"""Simulated user study (Section 8, Tables 1-2).

The original experiment measured 16 human subjects; this package replaces
them with a seeded cognitive model driven by the *actual* pattern sets the
two methods produce (see DESIGN.md substitution table and the
:mod:`repro.userstudy.simulator` docstring for the model).
"""

from repro.userstudy.metrics import (
    CATEGORIES,
    HIGH,
    LOW,
    TOP,
    categorize,
    mean_std,
    t_accuracy,
    th_accuracy,
)
from repro.userstudy.patterns import StudyPattern, from_solution, from_tree_patterns
from repro.userstudy.simulator import (
    ArmResult,
    CognitiveModel,
    SECTIONS,
    SectionResult,
    StudyArm,
    run_task_group,
    simulate_preferences,
)
from repro.userstudy.study import (
    StudyResult,
    TaskGroupResult,
    format_table,
    run_study,
)

__all__ = [
    "CATEGORIES",
    "HIGH",
    "LOW",
    "TOP",
    "categorize",
    "mean_std",
    "t_accuracy",
    "th_accuracy",
    "StudyPattern",
    "from_solution",
    "from_tree_patterns",
    "ArmResult",
    "CognitiveModel",
    "SECTIONS",
    "SectionResult",
    "StudyArm",
    "run_task_group",
    "simulate_preferences",
    "StudyResult",
    "TaskGroupResult",
    "format_table",
    "run_study",
]
