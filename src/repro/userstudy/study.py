"""The full Section 8 study: three task groups, two arms each (Table 1/2).

Task groups and parameters follow Section 8.2:

* **varying-method** — our Hybrid clusters vs. tuned decision tree;
  L=50, k=10, D=1.
* **varying-k** — k=5 vs. k=10; L=30, D=1.
* **varying-D** — D=1 vs. D=3; L=10, k=7.

:func:`run_study` simulates all groups over 16 subjects and returns a
structure mirroring Table 1; passing a *learning* sequence reproduces the
Appendix A.10 / Table 2 variant where one task-group order is analysed and
earlier groups carry a time overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.decision_tree import tune_tree
from repro.core.answers import AnswerSet
from repro.core.problem import ProblemInstance
from repro.userstudy.patterns import from_solution, from_tree_patterns
from repro.userstudy.simulator import (
    ArmResult,
    CognitiveModel,
    SECTIONS,
    StudyArm,
    run_task_group,
    simulate_preferences,
)


@dataclass(frozen=True)
class TaskGroupResult:
    """Both arms of one task group, with preference votes filled in."""

    name: str
    left: ArmResult
    right: ArmResult


@dataclass(frozen=True)
class StudyResult:
    varying_method: TaskGroupResult
    varying_k: TaskGroupResult
    varying_d: TaskGroupResult

    def groups(self) -> tuple[TaskGroupResult, ...]:
        return (self.varying_method, self.varying_k, self.varying_d)


def _our_arm(answers: AnswerSet, name: str, k: int, L: int, D: int) -> StudyArm:
    solution = ProblemInstance(answers, k=k, L=L, D=D).solve("hybrid")
    return StudyArm(
        name=name, patterns=tuple(from_solution(solution, answers, L))
    )


def _tree_arm(answers: AnswerSet, name: str, k: int, L: int) -> StudyArm:
    _, tree_patterns = tune_tree(answers, L=L, k=k)
    return StudyArm(
        name=name,
        patterns=tuple(from_tree_patterns(tree_patterns, answers, L)),
    )


def run_study(
    answers: AnswerSet,
    n_subjects: int = 16,
    seed: int = 0,
    model: CognitiveModel | None = None,
    learning_sequence: bool = False,
) -> StudyResult:
    """Simulate the full study on *answers*.

    With *learning_sequence* the varying-method group is performed first
    (time multiplier 1.2) and varying-D last (0.9), reproducing the
    Appendix A.10 analysis of one fixed sequence (Table 2).
    """
    multipliers = (1.2, 1.0, 0.9) if learning_sequence else (1.0, 1.0, 1.0)
    # varying-method: ours vs decision tree; L=50, k=10, D=1.
    ours = _our_arm(answers, "our-method", k=10, L=50, D=1)
    tree = _tree_arm(answers, "decision-tree", k=10, L=50)
    tree_result = run_task_group(
        answers, 50, tree, n_subjects, seed + 1, model, multipliers[0]
    )
    ours_result = run_task_group(
        answers, 50, ours, n_subjects, seed + 2, model, multipliers[0]
    )
    simulate_preferences(tree_result, ours_result, n_subjects, seed + 3)
    varying_method = TaskGroupResult("varying-method", tree_result, ours_result)
    # varying-k: k=5 vs k=10; L=30, D=1.
    arm_k5 = _our_arm(answers, "k=5", k=5, L=30, D=1)
    arm_k10 = _our_arm(answers, "k=10", k=10, L=30, D=1)
    k5_result = run_task_group(
        answers, 30, arm_k5, n_subjects, seed + 4, model, multipliers[1]
    )
    k10_result = run_task_group(
        answers, 30, arm_k10, n_subjects, seed + 5, model, multipliers[1]
    )
    simulate_preferences(k5_result, k10_result, n_subjects, seed + 6)
    varying_k = TaskGroupResult("varying-k", k5_result, k10_result)
    # varying-D: D=1 vs D=3; L=10, k=7.
    arm_d1 = _our_arm(answers, "D=1", k=7, L=10, D=1)
    arm_d3 = _our_arm(answers, "D=3", k=7, L=10, D=3)
    d1_result = run_task_group(
        answers, 10, arm_d1, n_subjects, seed + 7, model, multipliers[2]
    )
    d3_result = run_task_group(
        answers, 10, arm_d3, n_subjects, seed + 8, model, multipliers[2]
    )
    simulate_preferences(d1_result, d3_result, n_subjects, seed + 9)
    varying_d = TaskGroupResult("varying-D", d1_result, d3_result)
    return StudyResult(varying_method, varying_k, varying_d)


def format_table(result: StudyResult, n_subjects: int = 16) -> str:
    """Render the StudyResult in the layout of Table 1."""
    groups = result.groups()
    header_cells = []
    for group in groups:
        header_cells.append(group.left.arm.name)
        header_cells.append(group.right.arm.name)
    lines = []
    lines.append(
        "%-18s %-16s " % ("Section", "Metric")
        + " ".join("%-16s" % c for c in header_cells)
    )
    for section in SECTIONS:
        for metric in ("time", "T-accuracy", "TH-accuracy"):
            cells = []
            for group in groups:
                for arm_result in (group.left, group.right):
                    s = arm_result.sections[section]
                    if metric == "time":
                        cells.append("%.1f+-%.1f" % (s.time_mean, s.time_std))
                    elif metric == "T-accuracy":
                        cells.append(
                            "%.3f+-%.3f"
                            % (s.t_accuracy_mean, s.t_accuracy_std)
                        )
                    else:
                        cells.append(
                            "%.3f+-%.3f"
                            % (s.th_accuracy_mean, s.th_accuracy_std)
                        )
            lines.append(
                "%-18s %-16s " % (section, metric)
                + " ".join("%-16s" % c for c in cells)
            )
    preference_cells = []
    for group in groups:
        for arm_result in (group.left, group.right):
            preference_cells.append(
                "%.1f%%" % (100.0 * arm_result.preferred_by / n_subjects)
            )
    lines.append(
        "%-18s %-16s " % ("overall", "preferred")
        + " ".join("%-16s" % c for c in preference_cells)
    )
    return "\n".join(lines)
