"""Unified pattern abstraction for the user-study simulator.

Both methods under study present the subject with a set of patterns: the
paper's clusters (conjunctions of ``attr = value``; complexity = number of
non-star attributes) or decision-tree leaf paths (which may include
negations; see :class:`~repro.baselines.decision_tree.TreePattern`).  The
simulator only needs a common interface: does the pattern match a tuple,
how hard is it to read/remember (complexity), and what category a reader
would infer from the pattern's visible summary.

For the inference we precompute, per pattern, a **value-biased category
distribution** over its members: the probability a subject anchoring on the
pattern's advertised (high) average attributes a matching tuple to
category c.  Members are weighted ``exp(gamma * normalized_value)`` —
high-valued members dominate the impression a high-avg pattern leaves —
and the weights are summed per ground-truth category.  Pure patterns give
near-deterministic predictions; washed-out patterns (the failure mode of
over-general summaries) spread mass across categories, which is exactly
the accuracy cost the study measures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.decision_tree import TreePattern
from repro.common.interning import STAR
from repro.core.answers import AnswerSet
from repro.core.solution import Solution
from repro.userstudy.metrics import CATEGORIES, categorize

#: Strength of the value anchoring in the member-sampling model.
VALUE_BIAS_GAMMA = 2.5


@dataclass(frozen=True)
class StudyPattern:
    """A displayed pattern with everything the simulated subject can use."""

    description: str
    complexity: int
    covered: frozenset[int]
    category_probabilities: tuple[float, float, float]  # top, high, low
    avg_value: float

    def matches(self, rank: int) -> bool:
        return rank in self.covered


def _category_distribution(
    covered: frozenset[int], answers: AnswerSet, labels: list[str]
) -> tuple[float, float, float]:
    values = answers.values
    v_lo = min(values)
    v_hi = max(values)
    span = (v_hi - v_lo) or 1.0
    weights = {category: 0.0 for category in CATEGORIES}
    for rank in covered:
        weight = math.exp(VALUE_BIAS_GAMMA * (values[rank] - v_lo) / span)
        weights[labels[rank]] += weight
    total = sum(weights.values())
    return tuple(weights[c] / total for c in CATEGORIES)  # type: ignore[return-value]


def from_solution(
    solution: Solution, answers: AnswerSet, L: int
) -> list[StudyPattern]:
    """Study patterns from the paper-method clusters."""
    labels = categorize(answers, L)
    patterns = []
    for cluster in solution.clusters:
        complexity = sum(1 for v in cluster.pattern if v != STAR)
        covered = frozenset(cluster.covered)
        patterns.append(
            StudyPattern(
                description=str(cluster),
                complexity=max(1, complexity),
                covered=covered,
                category_probabilities=_category_distribution(
                    covered, answers, labels
                ),
                avg_value=cluster.avg,
            )
        )
    return patterns


def from_tree_patterns(
    tree_patterns: list[TreePattern], answers: AnswerSet, L: int
) -> list[StudyPattern]:
    """Study patterns from decision-tree positive leaves."""
    labels = categorize(answers, L)
    patterns = []
    for tree_pattern in tree_patterns:
        covered = frozenset(
            rank
            for rank in range(answers.n)
            if tree_pattern.matches(answers.elements[rank])
        )
        if not covered:
            continue
        patterns.append(
            StudyPattern(
                description="{%d conditions}" % len(tree_pattern.conditions),
                complexity=max(1, tree_pattern.complexity),
                covered=covered,
                category_probabilities=_category_distribution(
                    covered, answers, labels
                ),
                avg_value=sum(answers.values[i] for i in covered) / len(covered),
            )
        )
    return patterns
