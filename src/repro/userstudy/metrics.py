"""User-study metrics (Section 8.1): categories and the two accuracies.

Study questions ask a subject to classify a tuple into **top** (within the
top L of all tuples), **high** (value at or above the global average but
outside the top L), or **low** (below average).  Performance is scored with
the standard confusion-matrix accuracy ``(TP + TN) / (TP + FP + FN + TN)``
in two binarizations:

* **T-accuracy** — "positive" means *top*: can the subject spot top-L tuples?
* **TH-accuracy** — "positive" means *top or high*: can the subject separate
  the good from the bad?
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet

TOP = "top"
HIGH = "high"
LOW = "low"
CATEGORIES = (TOP, HIGH, LOW)


def categorize(answers: AnswerSet, L: int) -> list[str]:
    """Ground-truth category of every element (by rank)."""
    if not 1 <= L <= answers.n:
        raise InvalidParameterError("L=%d out of range [1, %d]" % (L, answers.n))
    average = answers.avg_all()
    labels = []
    for rank in range(answers.n):
        if rank < L:
            labels.append(TOP)
        elif answers.values[rank] >= average:
            labels.append(HIGH)
        else:
            labels.append(LOW)
    return labels


def _binary_accuracy(
    truths: Sequence[str],
    predictions: Sequence[str],
    positive: frozenset[str],
) -> float:
    if len(truths) != len(predictions):
        raise InvalidParameterError("truth/prediction length mismatch")
    if not truths:
        raise InvalidParameterError("no questions to score")
    correct = 0
    for truth, predicted in zip(truths, predictions):
        if (truth in positive) == (predicted in positive):
            correct += 1
    return correct / len(truths)


def t_accuracy(truths: Sequence[str], predictions: Sequence[str]) -> float:
    """Accuracy at discerning top tuples from the rest."""
    return _binary_accuracy(truths, predictions, frozenset({TOP}))


def th_accuracy(truths: Sequence[str], predictions: Sequence[str]) -> float:
    """Accuracy at discerning top+high tuples from low ones."""
    return _binary_accuracy(truths, predictions, frozenset({TOP, HIGH}))


def mean_std(samples: Sequence[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation, as Table 1 reports."""
    if not samples:
        raise InvalidParameterError("mean_std of an empty sample")
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    return mean, variance ** 0.5
