"""Seeded cognitive simulation of the Section 8 user study.

The original study measured 16 human subjects; an offline reproduction
cannot re-run humans, so (per the substitution policy in DESIGN.md) this
module simulates them with a simple, explicit cognitive model whose only
inputs are the *actual displayed artifacts* — the pattern sets produced by
the two methods — with noise terms driven by pattern complexity:

* **Inference** (all sections): for a matched tuple the subject samples a
  category from the best matching pattern's value-biased member
  distribution (probability matching, a standard human-judgement model);
  unmatched tuples fall back to the distribution of the uncovered region.
* **Patterns-only**: every pattern on screen is scanned (cost grows with
  its complexity) and is misread — treated as non-matching — with
  probability growing in complexity.
* **Memory-only**: each pattern is recalled with probability decaying in
  its complexity *and* in the number of competing patterns (interference);
  forgotten patterns cost retrieval struggle time but contribute nothing.
* **Patterns+members**: membership lists make inference near-perfect
  (small slip probability); time grows with the member rows examined for
  the matched patterns.

Every Table 1 trend the simulation reproduces (simple patterns are applied
faster, remembered better, and separate high from low; member access is
slow but accurate) is an emergent consequence of the complexity/coverage
differences between the two methods' outputs — the constants below set
scales, not outcomes.
"""

from __future__ import annotations

import math
import random as _random
from dataclasses import dataclass, field
from typing import Sequence

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet
from repro.userstudy.metrics import (
    CATEGORIES,
    categorize,
    mean_std,
    t_accuracy,
    th_accuracy,
)
from repro.userstudy.patterns import StudyPattern

SECTIONS = ("patterns-only", "memory-only", "patterns+members")


@dataclass(frozen=True)
class CognitiveModel:
    """The constants of the subject model (one place to audit them)."""

    # patterns-only
    read_base_seconds: float = 8.0
    read_scale: float = 0.65
    read_per_complexity: float = 0.2
    misread_per_complexity: float = 0.02
    # memory-only
    memory_base_seconds: float = 5.0
    memory_per_recalled_complexity: float = 0.12
    memory_struggle_seconds: float = 0.35
    recall_decay: float = 0.18  # P(recall) = exp(-decay*cx*(1+interference))
    recall_interference: float = 0.08  # per competing pattern
    # patterns+members
    member_base_seconds: float = 12.0
    member_scan_scale: float = 0.5  # fraction of the patterns-only scan
    member_sqrt_rows_seconds: float = 0.25
    member_slip_probability: float = 0.05
    # population variation
    subject_speed_std: float = 0.15
    subject_noise_std: float = 0.10


@dataclass(frozen=True)
class SectionResult:
    """Mean +/- std over subjects for one section (one Table 1 cell row)."""

    section: str
    time_mean: float
    time_std: float
    t_accuracy_mean: float
    t_accuracy_std: float
    th_accuracy_mean: float
    th_accuracy_std: float


@dataclass(frozen=True)
class StudyArm:
    """One setting under comparison (a column of Table 1)."""

    name: str
    patterns: tuple[StudyPattern, ...]


@dataclass
class ArmResult:
    arm: StudyArm
    sections: dict[str, SectionResult] = field(default_factory=dict)
    preferred_by: int = 0  # subjects who preferred this arm


def _sample_category(
    distribution: Sequence[float], rng: _random.Random
) -> str:
    roll = rng.random()
    cumulative = 0.0
    for category, probability in zip(CATEGORIES, distribution):
        cumulative += probability
        if roll <= cumulative:
            return category
    return CATEGORIES[-1]


def _uncovered_distribution(
    patterns: Sequence[StudyPattern], labels: Sequence[str], n: int
) -> tuple[float, float, float]:
    covered: set[int] = set()
    for pattern in patterns:
        covered.update(pattern.covered)
    counts = {category: 0 for category in CATEGORIES}
    for rank in range(n):
        if rank not in covered:
            counts[labels[rank]] += 1
    total = sum(counts.values())
    if total == 0:
        return (0.0, 0.0, 1.0)
    return tuple(counts[c] / total for c in CATEGORIES)  # type: ignore[return-value]


def _infer(
    rank: int,
    visible: Sequence[StudyPattern],
    fallback: Sequence[float],
    rng: _random.Random,
    model: CognitiveModel,
    misread: bool,
) -> str:
    """The subject's prediction given the currently usable patterns."""
    matched = []
    for pattern in visible:
        if misread:
            p_miss = min(
                0.5, model.misread_per_complexity * pattern.complexity
            )
            if rng.random() < p_miss:
                continue
        if pattern.matches(rank):
            matched.append(pattern)
    if matched:
        best = max(matched, key=lambda p: (p.avg_value, p.description))
        return _sample_category(best.category_probabilities, rng)
    return _sample_category(fallback, rng)


def _question_ranks(
    answers: AnswerSet, labels: Sequence[str], per_category: int,
    rng: _random.Random, exclude: set[int],
) -> list[int]:
    chosen: list[int] = []
    for category in CATEGORIES:
        eligible = [
            rank
            for rank in range(answers.n)
            if labels[rank] == category and rank not in exclude
        ]
        if len(eligible) < per_category:
            raise InvalidParameterError(
                "not enough %r tuples for the study (%d < %d)"
                % (category, len(eligible), per_category)
            )
        chosen.extend(rng.sample(eligible, per_category))
    rng.shuffle(chosen)
    return chosen


def run_task_group(
    answers: AnswerSet,
    L: int,
    arm: StudyArm,
    n_subjects: int = 16,
    seed: int = 0,
    model: CognitiveModel | None = None,
    time_multiplier: float = 1.0,
) -> ArmResult:
    """Simulate all three sections of one task group for one arm.

    *time_multiplier* models the learning effect (Appendix A.10): task
    groups performed earlier in a sequence take somewhat longer.
    """
    model = model or CognitiveModel()
    labels = categorize(answers, L)
    result = ArmResult(arm=arm)
    per_section: dict[str, list[tuple[float, float, float]]] = {
        section: [] for section in SECTIONS
    }
    patterns = list(arm.patterns)
    fallback = _uncovered_distribution(patterns, labels, answers.n)
    scan_cost = sum(
        1.0 + model.read_per_complexity * p.complexity for p in patterns
    )
    interference = 1.0 + model.recall_interference * len(patterns)
    for subject in range(n_subjects):
        rng = _random.Random((seed * 1_000_003 + subject) * 31 + 7)
        speed = max(0.5, rng.gauss(1.0, model.subject_speed_std))

        def jitter() -> float:
            return max(0.3, rng.gauss(1.0, model.subject_noise_std))

        # Section 1: patterns-only (6 questions, 2 per category).
        ranks = _question_ranks(answers, labels, 2, rng, exclude=set())
        truths = [labels[r] for r in ranks]
        predictions = [
            _infer(r, patterns, fallback, rng, model, misread=True)
            for r in ranks
        ]
        time_q = speed * time_multiplier * jitter() * (
            model.read_base_seconds + model.read_scale * scan_cost
        )
        per_section["patterns-only"].append(
            (time_q, t_accuracy(truths, predictions),
             th_accuracy(truths, predictions))
        )
        asked = set(ranks)
        # Section 2: memory-only (6 fresh questions).
        recalled = [
            p
            for p in patterns
            if rng.random()
            < math.exp(-model.recall_decay * p.complexity * interference)
        ]
        ranks2 = _question_ranks(answers, labels, 2, rng, exclude=asked)
        truths2 = [labels[r] for r in ranks2]
        predictions2 = [
            _infer(r, recalled, fallback, rng, model, misread=False)
            for r in ranks2
        ]
        recalled_complexity = sum(p.complexity for p in recalled)
        time_q2 = speed * time_multiplier * jitter() * (
            model.memory_base_seconds
            + model.memory_per_recalled_complexity * recalled_complexity
            + model.memory_struggle_seconds * (len(patterns) - len(recalled))
        )
        per_section["memory-only"].append(
            (time_q2, t_accuracy(truths2, predictions2),
             th_accuracy(truths2, predictions2))
        )
        # Section 3: patterns+members (8 questions re-drawn from the 12).
        pool = sorted(asked | set(ranks2))
        rng.shuffle(pool)
        ranks3 = pool[:8]
        truths3 = [labels[r] for r in ranks3]
        predictions3 = []
        rows_examined = 0
        for rank in ranks3:
            rows_examined += sum(
                len(p.covered) for p in patterns if p.matches(rank)
            )
            if rng.random() < model.member_slip_probability:
                wrong = [c for c in CATEGORIES if c != labels[rank]]
                predictions3.append(rng.choice(wrong))
            else:
                predictions3.append(labels[rank])
        time_q3 = speed * time_multiplier * jitter() * (
            model.member_base_seconds
            + model.member_scan_scale * model.read_scale * scan_cost
            + model.member_sqrt_rows_seconds
            * (rows_examined / len(ranks3)) ** 0.5
        )
        per_section["patterns+members"].append(
            (time_q3, t_accuracy(truths3, predictions3),
             th_accuracy(truths3, predictions3))
        )
    for section in SECTIONS:
        samples = per_section[section]
        time_mean, time_std = mean_std([s[0] for s in samples])
        t_mean, t_std = mean_std([s[1] for s in samples])
        th_mean, th_std = mean_std([s[2] for s in samples])
        result.sections[section] = SectionResult(
            section=section,
            time_mean=time_mean,
            time_std=time_std,
            t_accuracy_mean=t_mean,
            t_accuracy_std=t_std,
            th_accuracy_mean=th_mean,
            th_accuracy_std=th_std,
        )
    return result


def simulate_preferences(
    first: ArmResult,
    second: ArmResult,
    n_subjects: int = 16,
    seed: int = 0,
    simplicity_weight: float = 0.25,
) -> tuple[int, int]:
    """Subjects pick a preferred arm: accuracy-per-time with a simplicity
    tilt plus individual noise (Section 8.2's preference questions)."""
    rng = _random.Random(seed * 7_777_777 + 13)

    def utility(result: ArmResult) -> float:
        section = result.sections["patterns-only"]
        memory = result.sections["memory-only"]
        accuracy = (
            section.t_accuracy_mean
            + section.th_accuracy_mean
            + memory.t_accuracy_mean
            + memory.th_accuracy_mean
        ) / 4.0
        slowness = (section.time_mean + memory.time_mean) / 60.0
        complexity = sum(p.complexity for p in result.arm.patterns)
        return accuracy - 0.5 * slowness - simplicity_weight * complexity / 40.0

    u_first, u_second = utility(first), utility(second)
    first_votes = 0
    for _ in range(n_subjects):
        wobble = rng.gauss(0.0, 0.12)
        if u_first + wobble >= u_second:
            first_votes += 1
    first.preferred_by = first_votes
    second.preferred_by = n_subjects - first_votes
    return first_votes, n_subjects - first_votes
