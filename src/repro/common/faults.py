"""Deterministic fault injection for chaos tests and benchmarks.

Production code is sprinkled with *named fault sites* — single calls to
:func:`fault_point` at the places that fail in real deployments:

========================  ====================================================
site                      where it sits
========================  ====================================================
``engine.compute``        :meth:`repro.service.engine.Engine.submit`, before
                          any solve work
``scheduler.worker``      the shard worker loop, after dequeue and before
                          compute (a firing ``crash`` kills the worker thread)
``sessions.write``        :meth:`repro.web.sessions.SessionStore.save`, before
                          the temp-file write
``tcp.write``             the TCP connection handler, before writing a
                          response line to the socket
``wal.write``             :meth:`repro.durability.wal.WriteAheadLog.append`,
                          before the record write hits the log file
``wal.fsync``             same method, before ``os.fsync`` of the log file
========================  ====================================================

When nothing is armed, ``fault_point`` is a module-level boolean check —
the sites add no measurable cost and no behavioral drift (the golden
wire-parity tests run with faults disarmed).

Arming is deterministic: every rule rolls a seeded ``random.Random``,
so a chaos run with the same seed and the same request interleaving
fires the same faults.  Rules are armed three ways:

* programmatically (:func:`arm`, :func:`clear` — what tests use),
* via the ``REPRO_FAULTS`` environment variable at import time
  (``site=behavior[:probability[:param[:times]]]`` joined by ``;``, with
  ``REPRO_FAULTS_SEED`` seeding the RNG), e.g.::

      REPRO_FAULTS="scheduler.worker=crash:0.05;engine.compute=latency:1:25"

* remotely over the wire through the ``{"kind": "faults"}`` admin
  request (how ``bench_chaos.py`` arms a live server).

Behaviors:

``crash``
    raise :class:`FaultCrash` — a ``BaseException`` that sails through
    both the engine's ``except (ReproError, ...)`` belt and the worker's
    ``except Exception`` belt, simulating a worker death (segfault/OOM
    stand-in) rather than a handled error.
``error``
    raise :class:`~repro.common.errors.InjectedFault` (a ``ReproError``;
    surfaces as a typed error response).
``latency``
    sleep ``param`` milliseconds (a stall, not a failure).
``disconnect``
    raise :class:`ConnectionResetError` (for transport-layer sites).
``short-write``
    raise :class:`FaultShortWrite` — the disk-layer sites catch it, write
    only a prefix of the pending record (``param`` bytes; 0 = half), and
    surface the failure as an ``OSError``, producing exactly the torn
    tail a power cut mid-write leaves behind.
``enospc``
    raise ``OSError(errno.ENOSPC)`` — the disk filling up underneath a
    write or fsync.
"""

from __future__ import annotations

import errno
import os
import random
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.common.errors import InjectedFault, InvalidParameterError

__all__ = [
    "FAULT_SITES",
    "BEHAVIORS",
    "FaultCrash",
    "FaultShortWrite",
    "FaultRule",
    "arm",
    "arm_from_spec",
    "clear",
    "describe",
    "fault_point",
    "set_seed",
]

#: Every fault site compiled into the codebase.  Arming an unknown site
#: is an error — a typo'd chaos config should fail loudly, not silently
#: inject nothing.
FAULT_SITES = (
    "engine.compute",
    "scheduler.worker",
    "sessions.write",
    "tcp.write",
    "wal.write",
    "wal.fsync",
)

BEHAVIORS = (
    "crash", "error", "latency", "disconnect", "short-write", "enospc",
)


class FaultCrash(BaseException):
    """An injected worker death.

    Deliberately *not* an :class:`Exception`: the scheduler worker's
    ``except Exception`` error belt must not absorb it, so it propagates
    exactly like a real crash and exercises the supervision path.
    """


class FaultShortWrite(Exception):
    """An injected partial disk write.

    A plain :class:`Exception` on purpose — the WAL's write path catches
    it deliberately, persists only ``keep_bytes`` of the pending record
    (half the record when 0), and then fails the append with an
    ``OSError``.  Nothing else should ever see it.
    """

    def __init__(self, keep_bytes: int = 0) -> None:
        super().__init__("injected short write (keep %d bytes)" % keep_bytes)
        self.keep_bytes = int(keep_bytes)


class FaultRule:
    """One armed behavior at one site.

    Parameters
    ----------
    site:
        One of :data:`FAULT_SITES`.
    behavior:
        One of :data:`BEHAVIORS`.
    probability:
        Chance of firing per visit, rolled on the module's seeded RNG.
    param:
        Behavior parameter — latency milliseconds for ``latency``,
        unused otherwise.
    times:
        Maximum number of firings (``None`` = unlimited).  One-shot
        rules (``times=1``) make crash tests deterministic.
    """

    __slots__ = ("site", "behavior", "probability", "param", "times", "fired")

    def __init__(
        self,
        site: str,
        behavior: str,
        probability: float = 1.0,
        param: float = 0.0,
        times: Optional[int] = None,
    ) -> None:
        if site not in FAULT_SITES:
            raise InvalidParameterError(
                "unknown fault site %r (sites: %s)"
                % (site, ", ".join(FAULT_SITES))
            )
        if behavior not in BEHAVIORS:
            raise InvalidParameterError(
                "unknown fault behavior %r (behaviors: %s)"
                % (behavior, ", ".join(BEHAVIORS))
            )
        if not 0.0 <= probability <= 1.0:
            raise InvalidParameterError(
                "fault probability must be in [0, 1], got %r" % (probability,)
            )
        if times is not None and times < 1:
            raise InvalidParameterError(
                "fault times must be >= 1, got %r" % (times,)
            )
        self.site = site
        self.behavior = behavior
        self.probability = float(probability)
        self.param = float(param)
        self.times = times
        self.fired = 0

    def describe(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "behavior": self.behavior,
            "probability": self.probability,
            "param": self.param,
            "times": self.times,
            "fired": self.fired,
        }


_lock = threading.Lock()
_rules: Dict[str, FaultRule] = {}
_rng = random.Random(0)
#: Fast-path flag: fault_point() reads this without the lock.  Written
#: only under the lock; stale reads cost one extra lock round-trip at
#: worst (arming/clearing races are inherently racy anyway).
_armed = False


def set_seed(seed: int) -> None:
    """Re-seed the shared RNG (determinism across chaos runs)."""
    with _lock:
        _rng.seed(seed)

def arm(
    site: str,
    behavior: str,
    probability: float = 1.0,
    param: float = 0.0,
    times: Optional[int] = None,
) -> FaultRule:
    """Arm *behavior* at *site*, replacing any existing rule there."""
    global _armed
    rule = FaultRule(site, behavior, probability, param, times)
    with _lock:
        _rules[site] = rule
        _armed = True
    return rule


def clear(site: Optional[str] = None) -> None:
    """Disarm one site, or every site when *site* is None."""
    global _armed
    with _lock:
        if site is None:
            _rules.clear()
        else:
            _rules.pop(site, None)
        _armed = bool(_rules)


def describe() -> List[Dict[str, Any]]:
    """Snapshot of armed rules and their fire counts (admin ``faults``)."""
    with _lock:
        return [_rules[site].describe() for site in sorted(_rules)]


def fault_point(site: str) -> None:
    """A named fault site; a near-no-op unless chaos rules are armed."""
    if not _armed:
        return
    with _lock:
        rule = _rules.get(site)
        if rule is None:
            return
        if rule.times is not None and rule.fired >= rule.times:
            return
        if rule.probability < 1.0 and _rng.random() >= rule.probability:
            return
        rule.fired += 1
        behavior = rule.behavior
        param = rule.param
    # Act outside the lock: a latency sleep must not serialize every
    # other fault site behind it.
    if behavior == "latency":
        time.sleep(param / 1000.0)
    elif behavior == "error":
        raise InjectedFault("injected fault at site %r" % site)
    elif behavior == "crash":
        raise FaultCrash(site)
    elif behavior == "disconnect":
        raise ConnectionResetError("injected disconnect at site %r" % site)
    elif behavior == "short-write":
        raise FaultShortWrite(int(param))
    elif behavior == "enospc":
        raise OSError(
            errno.ENOSPC, "injected ENOSPC at site %r" % site
        )


def arm_from_spec(spec: str, seed: Optional[int] = None) -> List[FaultRule]:
    """Arm rules from a compact spec string (the ``REPRO_FAULTS`` syntax).

    ``site=behavior[:probability[:param[:times]]]`` entries joined by
    ``;``.  Examples::

        scheduler.worker=crash:0.05
        engine.compute=latency:0.2:50
        sessions.write=error:1:0:3

    >>> rules = arm_from_spec("engine.compute=latency:0.5:25", seed=7)
    >>> [(r.site, r.behavior, r.probability, r.param) for r in rules]
    [('engine.compute', 'latency', 0.5, 25.0)]
    >>> clear()
    """
    if seed is not None:
        set_seed(seed)
    rules: List[FaultRule] = []
    for entry in _split_entries(spec):
        site, separator, tail = entry.partition("=")
        if not separator:
            raise InvalidParameterError(
                "fault spec entry %r lacks 'site=behavior'" % entry
            )
        parts = tail.split(":")
        behavior = parts[0]
        try:
            probability = float(parts[1]) if len(parts) > 1 else 1.0
            param = float(parts[2]) if len(parts) > 2 else 0.0
            times = int(parts[3]) if len(parts) > 3 else None
        except ValueError:
            raise InvalidParameterError(
                "malformed fault spec entry %r "
                "(want site=behavior[:probability[:param[:times]]])" % entry
            ) from None
        rules.append(arm(site.strip(), behavior, probability, param, times))
    return rules


def _split_entries(spec: str) -> Iterable[str]:
    for entry in spec.replace(",", ";").split(";"):
        entry = entry.strip()
        if entry:
            yield entry


def _arm_from_environment() -> None:
    spec = os.environ.get("REPRO_FAULTS")
    if not spec:
        return
    seed_text = os.environ.get("REPRO_FAULTS_SEED")
    seed = int(seed_text) if seed_text else None
    arm_from_spec(spec, seed=seed)


_arm_from_environment()
