"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """An input parameter (k, L, D, ...) is out of its legal range."""


class InfeasibleError(ReproError):
    """No feasible solution exists for the requested constraints.

    Raised, e.g., when ``k < L`` and the greedy search cannot cover the
    top-L elements with ``k`` clusters under the distance constraint (the
    decision problem itself is NP-hard in that regime; see Theorem A.2 of
    the paper).
    """


class SchemaError(ReproError, ValueError):
    """A relation/schema-level inconsistency (unknown attribute, arity
    mismatch, duplicate column names, ...)."""


class QueryError(ReproError, ValueError):
    """A malformed query: SQL syntax errors or unsupported constructs."""


class LineTooLong(SchemaError):
    """A wire request line exceeded the configured ``max_line_bytes``.

    Served back as ``kind="error", error_type="LineTooLong"`` — the serve
    loop discards the oversized line instead of buffering it, so a hostile
    client cannot grow server memory with a single unbounded line.
    """


class Overloaded(ReproError):
    """A request was rejected by admission control (a shard queue is full).

    Served back as ``kind="error", error_type="Overloaded"``.  This is the
    server shedding load instead of queueing without bound; clients should
    back off and retry.
    """


class AuthError(ReproError):
    """A request failed authentication on a token-secured server.

    Served back as ``kind="error", error_type="AuthError"`` (HTTP 401).
    Raised for a missing token, an unknown/garbage token, and a revoked
    token alike — the message deliberately does not distinguish the
    last two, so probing the token space leaks nothing.
    """


class QuotaExceeded(ReproError):
    """A per-user quota bucket ran dry (HTTP 429).

    Unlike :class:`Overloaded` (a *server-wide* shard queue filling up),
    this is *per-user* admission control: one tenant exhausting its
    token bucket is rejected while every other tenant keeps being
    served.  The bucket refills at the next quota window.
    """


class UnknownSessionError(ReproError):
    """A named exploration session does not exist (HTTP 404).

    Also raised for session files that fail to load (corrupted JSON,
    missing fields): a session the server cannot read is served as
    "not found", never as a crash.
    """


class DeadlineExceeded(ReproError):
    """A request's deadline (``deadline_ms``) expired before it finished.

    Served back as ``kind="error", error_type="DeadlineExceeded"``
    (HTTP 504).  Raised cooperatively: long-running kernels poll a
    :class:`repro.common.budget.Budget` at checkpoints and abandon the
    work instead of burning CPU for a client that has given up.  Requests
    whose deadline expires while still queued are shed without ever
    reaching compute.
    """


class PoisonedRequest(ReproError):
    """A request repeatedly crashed the workers that picked it up.

    Served back as ``kind="error", error_type="PoisonedRequest"``
    (HTTP 500).  The scheduler retries a request whose worker died once;
    when the same request keeps killing workers it is quarantined and
    answered with this error instead of being retried forever.
    """


class ShuttingDown(ReproError):
    """A mutation arrived after a server-scope shutdown was acknowledged.

    Served back as ``kind="error", error_type="ShuttingDown"`` (HTTP 503).
    Once a ``shutdown`` with ``scope="server"`` has been acked, the
    write-ahead log gets its final flush+fsync during drain; letting an
    ``append_rows`` race past that point would grow the WAL after the
    flush and silently lose the rows on the next boot.  Clients should
    reconnect to the replacement server and retry.
    """


class InjectedFault(ReproError):
    """A deterministic fault-injection site fired with ``error`` behavior.

    Only ever raised when :mod:`repro.common.faults` is armed (chaos
    tests and ``bench_chaos.py``); production servers never construct it.
    """


class TransportError(ReproError):
    """Client-side: the connection to the server is no longer usable.

    Raised by :class:`repro.server.client.LineClient` when a socket
    timeout or OS-level error leaves the line framing undefined — the
    client closes the connection rather than let the next ``recv()``
    read a stale half-line.  Retry on a fresh connection.
    """
