"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidParameterError(ReproError, ValueError):
    """An input parameter (k, L, D, ...) is out of its legal range."""


class InfeasibleError(ReproError):
    """No feasible solution exists for the requested constraints.

    Raised, e.g., when ``k < L`` and the greedy search cannot cover the
    top-L elements with ``k`` clusters under the distance constraint (the
    decision problem itself is NP-hard in that regime; see Theorem A.2 of
    the paper).
    """


class SchemaError(ReproError, ValueError):
    """A relation/schema-level inconsistency (unknown attribute, arity
    mismatch, duplicate column names, ...)."""


class QueryError(ReproError, ValueError):
    """A malformed query: SQL syntax errors or unsupported constructs."""
