"""Request deadlines as cooperative cancellation tokens.

A :class:`Budget` is a wall-clock deadline plus a cancellation flag.  It
is created at the dispatch boundary (from the request's ``deadline_ms``
envelope field or the server's ``--request-timeout`` default) and rides
with the request: the scheduler checks it while the request is queued
(expired-in-queue requests are shed without touching compute), and the
engine installs it as the *current* budget for the worker thread so that
deep kernel loops — the merge engine's greedy rounds, cluster-pool
construction — can poll it without threading a parameter through every
call signature.

Cancellation is *cooperative*: nothing is interrupted preemptively.
Long-running loops call :func:`checkpoint` at natural round boundaries;
when the current budget has expired, the checkpoint raises
:class:`~repro.common.errors.DeadlineExceeded`, which the engine turns
into a typed error response.  The overshoot past the deadline is
therefore bounded by the longest stretch of work between two
checkpoints, not by the total cost of the request.

``checkpoint()`` with no budget installed is a single thread-local
attribute read — cheap enough to sit inside per-round loops without
moving benchmark numbers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.common.errors import DeadlineExceeded, InvalidParameterError

__all__ = [
    "Budget",
    "budget_scope",
    "checkpoint",
    "current_budget",
]


class Budget:
    """A deadline + cancellation token for one request.

    Parameters
    ----------
    deadline:
        Absolute :func:`time.monotonic` instant after which the work is
        abandoned, or ``None`` for an unbounded budget (cancellable but
        never expiring).
    deadline_ms:
        The original relative deadline in milliseconds, kept only for
        error messages.
    """

    __slots__ = ("deadline", "deadline_ms", "_cancelled")

    def __init__(
        self,
        deadline: Optional[float],
        deadline_ms: Optional[float] = None,
    ) -> None:
        self.deadline = deadline
        self.deadline_ms = deadline_ms
        self._cancelled = False

    @classmethod
    def from_deadline_ms(cls, deadline_ms: float) -> "Budget":
        """A budget expiring ``deadline_ms`` milliseconds from now."""
        if deadline_ms <= 0:
            raise InvalidParameterError(
                "deadline_ms must be > 0, got %r" % (deadline_ms,)
            )
        return cls(
            time.monotonic() + deadline_ms / 1000.0, deadline_ms=deadline_ms
        )

    def cancel(self) -> None:
        """Mark the budget spent regardless of the clock.

        The next :meth:`checkpoint` (on whichever thread holds the
        budget) raises; there is no preemption.
        """
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self) -> bool:
        """True once the deadline has passed or the budget was cancelled."""
        if self._cancelled:
            return True
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until expiry (never negative); None when unbounded."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def checkpoint(self) -> None:
        """Raise :class:`DeadlineExceeded` if this budget has expired."""
        if self.expired():
            if self._cancelled and self.deadline is None:
                raise DeadlineExceeded("request cancelled")
            if self.deadline_ms is not None:
                raise DeadlineExceeded(
                    "request deadline of %gms exceeded; partial work "
                    "abandoned" % self.deadline_ms
                )
            raise DeadlineExceeded(
                "request deadline exceeded; partial work abandoned"
            )

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else (
            "expired" if self.expired() else "live"
        )
        return "Budget(deadline_ms=%r, %s)" % (self.deadline_ms, state)


_local = threading.local()


def current_budget() -> Optional[Budget]:
    """The budget installed on this thread, if any."""
    return getattr(_local, "budget", None)


@contextmanager
def budget_scope(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install *budget* as this thread's current budget for the scope.

    ``budget_scope(None)`` is a supported no-op so call sites do not
    need a conditional.  Scopes nest; the previous budget is restored
    on exit.
    """
    if budget is None:
        yield None
        return
    previous = getattr(_local, "budget", None)
    _local.budget = budget
    try:
        yield budget
    finally:
        _local.budget = previous


def checkpoint() -> None:
    """Poll the current thread's budget; raise if it has expired.

    This is the hook long-running kernels call at round boundaries.
    With no budget installed it is a single attribute lookup.
    """
    budget = getattr(_local, "budget", None)
    if budget is not None:
        budget.checkpoint()
