"""Value interning: the paper's "hash values for fields" optimization.

Section 6.3 of the paper observes that attribute values are often text, and
that comparing/storing raw strings inside the tight cluster-manipulation
loops is slow.  The fix is to maintain, per attribute, a bidirectional map
between raw values and small integer codes, and to run all cluster algebra
on integer tuples (the paper reports a ~50x speedup from this).

:class:`ValueInterner` interns the values of a single attribute;
:class:`AttributeCodec` bundles one interner per attribute and converts whole
tuples.  Code ``STAR`` (-1) is reserved for the don't-care value and is never
assigned to a real value.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Sequence

#: Integer code reserved for the don't-care value ``*`` in cluster patterns.
STAR = -1


class ValueInterner:
    """Bidirectional mapping between raw attribute values and int codes.

    Codes are assigned densely starting from 0 in first-seen order, which
    makes encodings deterministic for a fixed input order.
    """

    __slots__ = ("_code_of", "_value_of")

    def __init__(self, values: Iterable[Hashable] = ()) -> None:
        self._code_of: dict[Hashable, int] = {}
        self._value_of: list[Hashable] = []
        for value in values:
            self.intern(value)

    def __len__(self) -> int:
        return len(self._value_of)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._code_of

    def intern(self, value: Hashable) -> int:
        """Return the code for *value*, assigning a fresh one if unseen."""
        code = self._code_of.get(value)
        if code is None:
            code = len(self._value_of)
            self._code_of[value] = code
            self._value_of.append(value)
        return code

    def code(self, value: Hashable) -> int:
        """Return the code for an already-interned *value*.

        Raises ``KeyError`` for unseen values; use :meth:`intern` to assign.
        """
        return self._code_of[value]

    def value(self, code: int) -> Hashable:
        """Return the raw value for *code* (``"*"`` for :data:`STAR`)."""
        if code == STAR:
            return "*"
        return self._value_of[code]

    def domain(self) -> tuple[Hashable, ...]:
        """All interned values in code order (the active domain)."""
        return tuple(self._value_of)


class AttributeCodec:
    """Encodes/decodes tuples over *m* named attributes to int tuples.

    The codec is what lets the summarization core work purely on integers
    while the query layer and the presentation layer speak raw values.
    """

    def __init__(self, attributes: Sequence[str]) -> None:
        if len(set(attributes)) != len(attributes):
            raise ValueError("duplicate attribute names: %r" % (attributes,))
        self.attributes: tuple[str, ...] = tuple(attributes)
        self._interners: tuple[ValueInterner, ...] = tuple(
            ValueInterner() for _ in attributes
        )

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def interner(self, index: int) -> ValueInterner:
        """The per-attribute interner at position *index*."""
        return self._interners[index]

    def domain_size(self, index: int) -> int:
        """Number of distinct values seen for attribute *index*."""
        return len(self._interners[index])

    def encode(self, row: Sequence[Any]) -> tuple[int, ...]:
        """Intern every value of *row* and return the code tuple."""
        if len(row) != self.arity:
            raise ValueError(
                "row arity %d != codec arity %d" % (len(row), self.arity)
            )
        return tuple(
            interner.intern(value)
            for interner, value in zip(self._interners, row)
        )

    def encode_many(self, rows: Iterable[Sequence[Any]]) -> list[tuple[int, ...]]:
        """Encode an iterable of rows (first-seen code assignment order)."""
        return [self.encode(row) for row in rows]

    def decode(self, codes: Sequence[int]) -> tuple[Any, ...]:
        """Map a code tuple (possibly containing :data:`STAR`) back to values."""
        if len(codes) != self.arity:
            raise ValueError(
                "pattern arity %d != codec arity %d" % (len(codes), self.arity)
            )
        return tuple(
            interner.value(code)
            for interner, code in zip(self._interners, codes)
        )
