"""Small timing helpers used by the benchmark harness.

The paper reports initialization time, algorithm time, and retrieval time
separately (Figures 6g, 7, 8, 9); :class:`Stopwatch` makes it easy to
accumulate named phases and print them in the same breakdown.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, TypeVar

T = TypeVar("T")


class Stopwatch:
    """Accumulates wall-clock time per named phase.

    >>> watch = Stopwatch()
    >>> with watch.phase("init"):
    ...     _ = sum(range(10))
    >>> watch.seconds("init") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._totals[name] = self._totals.get(name, 0.0) + elapsed

    def seconds(self, name: str) -> float:
        """Total seconds accumulated under *name* (0.0 if never timed)."""
        return self._totals.get(name, 0.0)

    def totals(self) -> dict[str, float]:
        """A copy of all phase totals, in insertion order."""
        return dict(self._totals)

    def reset(self) -> None:
        self._totals.clear()


def timed(fn: Callable[[], T]) -> tuple[T, float]:
    """Run *fn* and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start
