"""Shared utilities: errors, value interning, timing, deterministic RNG.

These modules are deliberately dependency-free so every other subpackage can
import them without cycles.
"""

from repro.common.errors import (
    ReproError,
    InfeasibleError,
    InvalidParameterError,
    SchemaError,
    QueryError,
)
from repro.common.interning import ValueInterner, AttributeCodec
from repro.common.timing import Stopwatch, timed

__all__ = [
    "ReproError",
    "InfeasibleError",
    "InvalidParameterError",
    "SchemaError",
    "QueryError",
    "ValueInterner",
    "AttributeCodec",
    "Stopwatch",
    "timed",
]
