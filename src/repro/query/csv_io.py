"""CSV import/export for relations (the library's on-disk interchange).

The paper's prototype previews tables from PostgreSQL; a library user's
equivalent is loading a CSV.  Values are type-inferred per column: a column
whose every non-empty value parses as int becomes int, else float, else
string — the same inference a careful analyst would apply before grouping.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, Iterable

from repro.common.errors import SchemaError
from repro.query.relation import Relation


def _parse_int(text: str) -> int | None:
    try:
        return int(text)
    except ValueError:
        return None


def _parse_float(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


def infer_column_type(values: Iterable[str]) -> str:
    """'int', 'float', or 'str' for a column of raw strings."""
    saw_any = False
    all_int = True
    all_float = True
    for text in values:
        if text == "":
            continue
        saw_any = True
        if all_int and _parse_int(text) is None:
            all_int = False
        if all_float and _parse_float(text) is None:
            all_float = False
        if not all_float:
            break
    if not saw_any:
        return "str"
    if all_int:
        return "int"
    if all_float:
        return "float"
    return "str"


def _convert(text: str, kind: str) -> Any:
    if text == "":
        return None
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    return text


def read_csv(
    source: str | Path | io.TextIOBase,
    name: str | None = None,
    delimiter: str = ",",
) -> Relation:
    """Load a CSV (header row required) into a typed Relation."""
    if isinstance(source, (str, Path)):
        path = Path(source)
        with path.open(newline="") as handle:
            return read_csv(handle, name=name or path.stem,
                            delimiter=delimiter)
    reader = csv.reader(source, delimiter=delimiter)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV has no header row") from None
    raw_rows = [row for row in reader]
    for index, row in enumerate(raw_rows):
        if len(row) != len(header):
            raise SchemaError(
                "CSV row %d has %d fields, header has %d"
                % (index + 2, len(row), len(header))
            )
    kinds = [
        infer_column_type(row[i] for row in raw_rows)
        for i in range(len(header))
    ]
    rows = [
        tuple(_convert(row[i], kinds[i]) for i in range(len(header)))
        for row in raw_rows
    ]
    return Relation(name or "csv", header, rows)


def answer_set_from_relation(relation: Relation):
    """Treat *relation* as an answer set: last column is the value, every
    other column a grouping attribute.

    This is the no-SQL path of ``repro-summarize`` and ``repro-serve``'s
    ``load_csv``; schema problems (too few columns, a non-numeric value
    column) surface as :class:`SchemaError` so front ends can map them to
    their error contract instead of leaking a ``ValueError``.
    """
    from repro.core.answers import AnswerSet

    if len(relation.columns) < 2:
        raise SchemaError(
            "relation %r needs grouping columns plus a value column"
            % relation.name
        )
    groups = [row[:-1] for row in relation.rows]
    values = []
    for row in relation.rows:
        try:
            values.append(float(row[-1]))
        except (TypeError, ValueError):
            raise SchemaError(
                "value column %r must be numeric; got %r"
                % (relation.columns[-1], row[-1])
            ) from None
    return AnswerSet.from_rows(
        groups, values, attributes=relation.columns[:-1]
    )


def write_csv(
    relation: Relation,
    target: str | Path | io.TextIOBase,
    delimiter: str = ",",
) -> None:
    """Write a Relation to CSV with a header row."""
    if isinstance(target, (str, Path)):
        with Path(target).open("w", newline="") as handle:
            write_csv(relation, handle, delimiter=delimiter)
            return
    writer = csv.writer(target, delimiter=delimiter)
    writer.writerow(relation.columns)
    for row in relation.rows:
        writer.writerow(["" if v is None else v for v in row])
