"""A restricted SQL parser for the paper's query template.

The prototype's query box accepts aggregate queries of the shape used
throughout the paper (Example 1.1, Appendix A.8)::

    SELECT hdec, agegrp, gender, occupation, avg(rating) AS val
    FROM RatingTable
    WHERE genres_adventure = 1
    GROUP BY hdec, agegrp, gender, occupation
    HAVING count(*) > 50
    ORDER BY val DESC
    LIMIT 50

This module tokenizes and parses exactly that template (hand-written
recursive descent — no parser generator available offline) into an
:class:`~repro.query.aggregate.AggregateQuery`.  Anything outside the
template raises :class:`~repro.common.errors.QueryError` with a position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.common.errors import QueryError
from repro.query.aggregate import AGGREGATES, AggregateQuery
from repro.query.relation import Database, Relation

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*])
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "and", "group", "by", "having",
    "order", "asc", "desc", "limit", "as",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # number | string | op | punct | ident | keyword
    text: str
    position: int


def tokenize(sql: str) -> list[_Token]:
    """Split *sql* into tokens; raises QueryError on illegal characters."""
    tokens: list[_Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_RE.match(sql, position)
        if match is None:
            raise QueryError(
                "illegal character %r at position %d" % (sql[position], position)
            )
        kind = match.lastgroup
        text = match.group()
        if kind != "ws":
            if kind == "ident" and text.lower() in _KEYWORDS:
                tokens.append(_Token("keyword", text.lower(), position))
            else:
                tokens.append(_Token(kind, text, position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], sql: str) -> None:
        self.tokens = tokens
        self.sql = sql
        self.index = 0

    # -- token plumbing --------------------------------------------------------

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query: %r" % self.sql)
        self.index += 1
        return token

    def expect_keyword(self, *words: str) -> _Token:
        token = self.advance()
        if token.kind != "keyword" or token.text not in words:
            raise QueryError(
                "expected %s at position %d, got %r"
                % ("/".join(w.upper() for w in words), token.position, token.text)
            )
        return token

    def expect_punct(self, text: str) -> _Token:
        token = self.advance()
        if token.kind != "punct" or token.text != text:
            raise QueryError(
                "expected %r at position %d, got %r"
                % (text, token.position, token.text)
            )
        return token

    def expect_ident(self) -> _Token:
        token = self.advance()
        if token.kind != "ident":
            raise QueryError(
                "expected identifier at position %d, got %r"
                % (token.position, token.text)
            )
        return token

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "keyword" and token.text == word:
            self.index += 1
            return True
        return False

    def accept_punct(self, text: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "punct" and token.text == text:
            self.index += 1
            return True
        return False

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> tuple[str, AggregateQuery]:
        """query := SELECT select_list FROM ident [WHERE ...] GROUP BY ...
        [HAVING ...] [ORDER BY val [ASC|DESC]] [LIMIT n]"""
        self.expect_keyword("select")
        select_columns, aggregate, target = self._select_list()
        self.expect_keyword("from")
        table = self.expect_ident().text
        where = self._where() if self.accept_keyword("where") else ()
        self.expect_keyword("group")
        self.expect_keyword("by")
        group_by = self._column_list()
        if tuple(sorted(group_by)) != tuple(sorted(select_columns)):
            raise QueryError(
                "GROUP BY columns %r must match the non-aggregate SELECT "
                "columns %r" % (group_by, select_columns)
            )
        having = 0
        if self.accept_keyword("having"):
            having = self._having()
        descending = True
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_column = self.expect_ident().text
            if order_column.lower() != "val":
                raise QueryError(
                    "ORDER BY must reference the aggregate alias 'val', "
                    "got %r" % order_column
                )
            if self.accept_keyword("asc"):
                descending = False
            else:
                self.accept_keyword("desc")
        limit: int | None = None
        if self.accept_keyword("limit"):
            token = self.advance()
            if token.kind != "number" or "." in token.text:
                raise QueryError(
                    "LIMIT expects an integer at position %d" % token.position
                )
            limit = int(token.text)
        trailing = self.peek()
        if trailing is not None:
            raise QueryError(
                "unexpected trailing input at position %d: %r"
                % (trailing.position, trailing.text)
            )
        query = AggregateQuery(
            group_by=tuple(group_by),
            aggregate=aggregate,
            target=target,
            where=tuple(where),
            having_count_gt=having,
            descending=descending,
            limit=limit,
        )
        return table, query

    def _select_list(self) -> tuple[list[str], str, str | None]:
        """Plain columns followed by exactly one aggregate aliased AS val."""
        columns: list[str] = []
        while True:
            token = self.expect_ident()
            name = token.text
            if self.accept_punct("("):
                aggregate = name.lower()
                if aggregate not in AGGREGATES:
                    raise QueryError(
                        "unknown aggregate %r at position %d; supported: %s"
                        % (name, token.position, sorted(AGGREGATES))
                    )
                if self.accept_punct("*"):
                    target = None
                    if aggregate != "count":
                        raise QueryError(
                            "%s(*) is only valid for count" % aggregate
                        )
                else:
                    target = self.expect_ident().text
                self.expect_punct(")")
                self.expect_keyword("as")
                alias = self.expect_ident().text
                if alias.lower() != "val":
                    raise QueryError(
                        "the aggregate must be aliased AS val, got %r" % alias
                    )
                if not columns:
                    raise QueryError("at least one grouping column required")
                return columns, aggregate, target
            columns.append(name)
            self.expect_punct(",")

    def _column_list(self) -> list[str]:
        columns = [self.expect_ident().text]
        while self.accept_punct(","):
            columns.append(self.expect_ident().text)
        return columns

    def _where(self) -> list[tuple[str, str, Any]]:
        predicates = [self._predicate()]
        while self.accept_keyword("and"):
            predicates.append(self._predicate())
        return predicates

    def _predicate(self) -> tuple[str, str, Any]:
        column = self.expect_ident().text
        token = self.advance()
        if token.kind != "op":
            raise QueryError(
                "expected comparison operator at position %d, got %r"
                % (token.position, token.text)
            )
        operator = "!=" if token.text == "<>" else token.text
        return column, operator, self._literal()

    def _having(self) -> int:
        """HAVING count(*) > n — the only HAVING shape the paper uses."""
        token = self.expect_ident()
        if token.text.lower() != "count":
            raise QueryError(
                "HAVING supports only count(*) > n, got %r" % token.text
            )
        self.expect_punct("(")
        self.expect_punct("*")
        self.expect_punct(")")
        op = self.advance()
        if op.kind != "op" or op.text != ">":
            raise QueryError(
                "HAVING supports only count(*) > n, got operator %r" % op.text
            )
        number = self.advance()
        if number.kind != "number" or "." in number.text:
            raise QueryError(
                "HAVING count(*) > expects an integer at position %d"
                % number.position
            )
        return int(number.text)

    def _literal(self) -> Any:
        token = self.advance()
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        raise QueryError(
            "expected a literal at position %d, got %r"
            % (token.position, token.text)
        )


def parse_query(sql: str) -> tuple[str, AggregateQuery]:
    """Parse *sql* and return ``(table_name, AggregateQuery)``."""
    return _Parser(tokenize(sql), sql).parse()


def execute_sql(sql: str, source: Relation | Database):
    """Parse and run *sql* against a relation or database catalog.

    Returns the :class:`~repro.query.aggregate.QueryResult`.  When *source*
    is a single relation its name must match the FROM clause.
    """
    from repro.query.aggregate import run_aggregate

    table, query = parse_query(sql)
    if isinstance(source, Database):
        relation = source.get(table)
    else:
        if source.name != table:
            raise QueryError(
                "query targets %r but the provided relation is %r"
                % (table, source.name)
            )
        relation = source
    return run_aggregate(relation, query)
