"""In-memory relations: the substrate under the aggregate queries.

The paper's prototype runs its aggregate queries against PostgreSQL; this
reproduction replaces that with a small, dependency-free relational engine.
A :class:`Relation` is a named schema (ordered column names) plus a list of
row tuples.  Operations cover what the paper's workload needs (Appendix
A.8): selection, projection, column derivation, equi-joins, and group-by
aggregation (in :mod:`repro.query.aggregate`).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.common.errors import SchemaError

Row = tuple[Any, ...]


class Relation:
    """A named, ordered-schema, in-memory relation.

    Rows are plain tuples aligned with ``columns``.  All operations return
    new relations; nothing mutates in place.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        columns = tuple(columns)
        if len(set(columns)) != len(columns):
            raise SchemaError("duplicate column names in %r: %r" % (name, columns))
        if not columns:
            raise SchemaError("relation %r needs at least one column" % name)
        self.name = name
        self.columns = columns
        self._index_of = {column: i for i, column in enumerate(columns)}
        self.rows: list[Row] = []
        arity = len(columns)
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise SchemaError(
                    "row arity %d != schema arity %d in %r"
                    % (len(row), arity, name)
                )
            self.rows.append(row)

    # -- schema helpers -------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, column: str) -> bool:
        return column in self._index_of

    def column_index(self, column: str) -> int:
        try:
            return self._index_of[column]
        except KeyError:
            raise SchemaError(
                "unknown column %r in relation %r (has %r)"
                % (column, self.name, self.columns)
            ) from None

    def column_values(self, column: str) -> list[Any]:
        """All values of one column, in row order."""
        index = self.column_index(column)
        return [row[index] for row in self.rows]

    def distinct_values(self, column: str) -> list[Any]:
        """Sorted distinct values of a column (the active domain)."""
        return sorted(set(self.column_values(column)), key=repr)

    def row_dict(self, row: Row) -> dict[str, Any]:
        """A row as a column->value mapping (for predicate callables)."""
        return dict(zip(self.columns, row))

    # -- relational operations ---------------------------------------------------

    def select(self, predicate: Callable[[Mapping[str, Any]], bool]) -> "Relation":
        """Rows satisfying *predicate* (called with a column->value dict)."""
        kept = [row for row in self.rows if predicate(self.row_dict(row))]
        return Relation(self.name, self.columns, kept)

    def where_equal(self, column: str, value: Any) -> "Relation":
        """Fast path for the common ``column = value`` selection."""
        index = self.column_index(column)
        kept = [row for row in self.rows if row[index] == value]
        return Relation(self.name, self.columns, kept)

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Projection (keeps duplicates, like SQL's SELECT without DISTINCT)."""
        indices = [self.column_index(c) for c in columns]
        rows = [tuple(row[i] for i in indices) for row in self.rows]
        return Relation(name or self.name, columns, rows)

    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename columns per *mapping* (unmapped columns keep their names)."""
        columns = [mapping.get(c, c) for c in self.columns]
        return Relation(name or self.name, columns, self.rows)

    def derive(
        self,
        column: str,
        fn: Callable[[Mapping[str, Any]], Any],
        name: str | None = None,
    ) -> "Relation":
        """Append a computed column (feature extraction, e.g. age -> agegrp)."""
        if column in self._index_of:
            raise SchemaError(
                "derived column %r already exists in %r" % (column, self.name)
            )
        rows = [row + (fn(self.row_dict(row)),) for row in self.rows]
        return Relation(name or self.name, self.columns + (column,), rows)

    def join(
        self,
        other: "Relation",
        on: Sequence[tuple[str, str]],
        name: str | None = None,
    ) -> "Relation":
        """Equi-join: hash join on the (left_column, right_column) pairs.

        The result schema is the left schema followed by the right schema
        minus the right-side join columns (natural-join flavour, which is
        how the paper materializes its universal RatingTable).
        """
        if not on:
            raise SchemaError("join needs at least one column pair")
        left_indices = [self.column_index(lc) for lc, _ in on]
        right_indices = [other.column_index(rc) for _, rc in on]
        right_join_set = set(right_indices)
        right_kept = [
            i for i in range(len(other.columns)) if i not in right_join_set
        ]
        columns = self.columns + tuple(other.columns[i] for i in right_kept)
        if len(set(columns)) != len(columns):
            raise SchemaError(
                "join of %r and %r produces duplicate columns; rename first"
                % (self.name, other.name)
            )
        # Build side: the smaller relation would be classic; here the right.
        buckets: dict[tuple[Any, ...], list[Row]] = {}
        for row in other.rows:
            key = tuple(row[i] for i in right_indices)
            buckets.setdefault(key, []).append(row)
        rows = []
        for row in self.rows:
            key = tuple(row[i] for i in left_indices)
            for match in buckets.get(key, ()):
                rows.append(row + tuple(match[i] for i in right_kept))
        return Relation(name or "%s_%s" % (self.name, other.name), columns, rows)

    def head(self, count: int) -> list[Row]:
        """First *count* rows (preview, as in the prototype's tool panel)."""
        return self.rows[:count]

    def __repr__(self) -> str:
        return "Relation(%r, columns=%d, rows=%d)" % (
            self.name,
            len(self.columns),
            len(self.rows),
        )


class Database:
    """A named collection of relations (the prototype's catalog)."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._relations: dict[str, Relation] = {}

    def add(self, relation: Relation) -> None:
        self._relations[relation.name] = relation

    def get(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                "unknown relation %r (have %r)"
                % (name, sorted(self._relations))
            ) from None

    def names(self) -> list[str]:
        return sorted(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations
