"""Group-by aggregation: the query shape the whole paper is built on.

Executes queries of the form (Section 3 / Appendix A.8)::

    SELECT <grouping attributes>, aggr(<column>) AS val
    FROM R
    [WHERE ...]
    GROUP BY <grouping attributes>
    [HAVING count(*) > threshold]
    ORDER BY val DESC
    [LIMIT n]

and returns both a plain :class:`~repro.query.relation.Relation` (for
display) and an :class:`~repro.core.answers.AnswerSet` (for the
summarization framework).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.common.errors import QueryError
from repro.core.answers import AnswerSet
from repro.query.relation import Relation

AggregateFn = Callable[[Sequence[float]], float]


def _avg(values: Sequence[float]) -> float:
    return sum(values) / len(values)


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


#: Aggregate functions accepted in queries.  ``count`` ignores its column.
AGGREGATES: dict[str, AggregateFn] = {
    "avg": _avg,
    "sum": math.fsum,
    "min": min,
    "max": max,
    "count": len,
    "median": _median,
}


@dataclass(frozen=True)
class AggregateQuery:
    """A declarative aggregate query over one relation.

    ``where`` is a list of (column, operator, literal) triples combined with
    AND; supported operators are =, !=, <, <=, >, >=.
    """

    group_by: tuple[str, ...]
    aggregate: str = "avg"
    target: str | None = None
    where: tuple[tuple[str, str, Any], ...] = ()
    having_count_gt: int = 0
    descending: bool = True
    limit: int | None = None

    def __post_init__(self) -> None:
        if not self.group_by:
            raise QueryError("GROUP BY needs at least one attribute")
        if self.aggregate not in AGGREGATES:
            raise QueryError(
                "unknown aggregate %r; supported: %s"
                % (self.aggregate, sorted(AGGREGATES))
            )
        if self.aggregate != "count" and self.target is None:
            raise QueryError(
                "aggregate %r needs a target column" % self.aggregate
            )


_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _matches(row: Mapping[str, Any], where: Sequence[tuple[str, str, Any]]) -> bool:
    for column, operator, literal in where:
        try:
            op = _OPERATORS[operator]
        except KeyError:
            raise QueryError("unsupported operator %r" % operator) from None
        if not op(row[column], literal):
            return False
    return True


@dataclass
class QueryResult:
    """Output of :func:`run_aggregate`: groups, values, and conversions."""

    query: AggregateQuery
    attributes: tuple[str, ...]
    groups: list[tuple[Any, ...]]
    values: list[float]
    group_sizes: list[int] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.groups)

    def to_relation(self, name: str = "result") -> Relation:
        columns = self.attributes + ("val",)
        rows = [g + (v,) for g, v in zip(self.groups, self.values)]
        return Relation(name, columns, rows)

    def to_answer_set(self) -> AnswerSet:
        return AnswerSet.from_rows(
            self.groups, self.values, attributes=self.attributes
        )


def run_aggregate(relation: Relation, query: AggregateQuery) -> QueryResult:
    """Execute *query* against *relation*.

    Grouping is a single hash pass; HAVING filters on group cardinality;
    the result is sorted by value (descending by default, ties broken by the
    group tuple for determinism) and truncated to LIMIT if given.
    """
    for column, _, _ in query.where:
        relation.column_index(column)  # raises SchemaError for unknowns
    group_indices = [relation.column_index(c) for c in query.group_by]
    target_index = (
        relation.column_index(query.target) if query.target is not None else None
    )
    groups: dict[tuple[Any, ...], list[float]] = {}
    if query.where:
        columns = relation.columns
        rows = (
            row
            for row in relation.rows
            if _matches(dict(zip(columns, row)), query.where)
        )
    else:
        rows = iter(relation.rows)
    for row in rows:
        key = tuple(row[i] for i in group_indices)
        value = float(row[target_index]) if target_index is not None else 0.0
        groups.setdefault(key, []).append(value)
    aggregate = AGGREGATES[query.aggregate]
    kept: list[tuple[tuple[Any, ...], float, int]] = []
    for key, values in groups.items():
        if len(values) <= query.having_count_gt:
            continue
        kept.append((key, float(aggregate(values)), len(values)))
    kept.sort(
        key=lambda item: (
            -item[1] if query.descending else item[1],
            tuple(repr(v) for v in item[0]),
        )
    )
    if query.limit is not None:
        kept = kept[: query.limit]
    return QueryResult(
        query=query,
        attributes=tuple(query.group_by),
        groups=[item[0] for item in kept],
        values=[item[1] for item in kept],
        group_sizes=[item[2] for item in kept],
    )
