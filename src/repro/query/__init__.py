"""Relational substrate: in-memory relations, aggregation, restricted SQL.

Replaces the PostgreSQL backend of the paper's prototype with an embedded
engine that executes the same query template (Appendix A.8).
"""

from repro.query.relation import Database, Relation
from repro.query.aggregate import (
    AGGREGATES,
    AggregateQuery,
    QueryResult,
    run_aggregate,
)
from repro.query.sql import execute_sql, parse_query, tokenize

__all__ = [
    "Database",
    "Relation",
    "AGGREGATES",
    "AggregateQuery",
    "QueryResult",
    "run_aggregate",
    "execute_sql",
    "parse_query",
    "tokenize",
]
