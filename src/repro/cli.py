"""Command-line interface: summarize aggregate answers from a CSV.

The paper ships a web GUI; the library's equivalent entry points are CLIs::

    repro-summarize data.csv \\
        --sql "SELECT a, b, avg(x) AS val FROM data GROUP BY a, b" \\
        -k 4 -L 8 -D 2 [--algorithm hybrid] [--expand] [--guidance] [--json]

    repro-serve [preload.csv ...]                 # JSON-lines on stdin
    repro-serve --tcp 0.0.0.0:9037 [preload.csv]  # concurrent TCP server
    repro-serve --http 0.0.0.0:8080 \\
        --auth-tokens tokens.txt --quota 60/60    # multi-tenant HTTP

``--sql`` runs the restricted aggregate template against the loaded CSV
(the FROM name must match the file stem or --name); without it, the CSV is
taken to *be* the answer set: every column but the last is a grouping
attribute, the last column is the value.

Both commands sit on :mod:`repro.service`: ``--json`` emits the same
schema-versioned wire format the engine speaks, and ``repro-serve`` is the
:func:`repro.service.serve.serve` loop over stdin/stdout — or, with
``--tcp HOST:PORT``, the concurrent :class:`repro.server.tcp.TCPServer`
(sharded workers, single-flight coalescing, bounded queues) speaking the
identical protocol to many clients at once.

Exit codes: 0 success, 2 parameter/query errors, 3 I/O errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.common.errors import ReproError
from repro.core.answers import AnswerSet
from repro.core.bitset import (
    DEFAULT_KERNEL,
    DENSE_AUTO_THRESHOLD,
    KERNEL_CHOICES,
)
from repro.core.merge import ARGMAX_MODES, AUTO_ARGMAX
from repro.core.registry import algorithm_names, get_algorithm
from repro.query.csv_io import answer_set_from_relation, read_csv
from repro.query.sql import execute_sql
from repro.service.api import (
    SCHEMA_VERSION,
    GuidanceRequest,
    SummaryRequest,
)
from repro.service.engine import Engine

#: Parameter, schema, or query errors — the request itself was wrong.
EXIT_PARAM_ERROR = 2
#: The request was fine but reading/writing data failed.
EXIT_IO_ERROR = 3


def _version() -> str:
    from repro import __version__

    return "%(prog)s " + __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-summarize",
        description="Summarize top aggregate query answers as k diverse "
        "clusters covering the top-L (VLDB 2018 reproduction).",
    )
    parser.add_argument("--version", action="version", version=_version())
    parser.add_argument("csv", type=Path, help="input CSV file")
    parser.add_argument(
        "--sql",
        help="aggregate query to run first (restricted template); without "
        "it the CSV's last column is treated as the value",
    )
    parser.add_argument("--name", help="relation name (default: file stem)")
    parser.add_argument("-k", type=int, required=True,
                        help="maximum number of clusters")
    parser.add_argument("-L", type=int, required=True,
                        help="top-L coverage requirement")
    parser.add_argument("-D", type=int, required=True,
                        help="minimum pairwise cluster distance")
    parser.add_argument(
        "--algorithm", default="hybrid", choices=algorithm_names(),
        help="algorithm (default: hybrid)",
    )
    parser.add_argument(
        "--kernel", default=DEFAULT_KERNEL, choices=list(KERNEL_CHOICES),
        help="evaluation kernel: 'bitset' (int bitmasks, default), "
        "'dense' (packed uint64 blocks, numpy-vectorized when available "
        "— built for very large n), 'python' (pure-Python ablation "
        "baseline), or 'auto' (dense above %d answers when numpy is "
        "importable, else bitset)" % DENSE_AUTO_THRESHOLD,
    )
    parser.add_argument(
        "--argmax", default=AUTO_ARGMAX, choices=list(ARGMAX_MODES),
        help="greedy merge argmax: 'auto' (default; lazy upper-bound heap "
        "whenever sound), 'heap', or 'scan' (exhaustive LCA-group scan, "
        "the ablation baseline)",
    )
    parser.add_argument(
        "--mask-only", action="store_true",
        help="build cluster pools in the low-memory mask-only mode "
        "(bitmask coverage only, no frozensets; identical summaries)",
    )
    parser.add_argument("--expand", action="store_true",
                        help="also print the covered elements (layer 2)")
    parser.add_argument(
        "--guidance", action="store_true",
        help="print the parameter-guidance view around the chosen k and D",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the service wire format (one JSON object per response) "
        "instead of text",
    )
    return parser


def _answers_from_csv(
    csv_path: Path, sql: str | None, name: str | None
) -> tuple[str, AnswerSet]:
    """Load a CSV into a (dataset name, AnswerSet) pair."""
    relation = read_csv(csv_path, name=name)
    if sql:
        return relation.name, execute_sql(sql, relation).to_answer_set()
    if len(relation.columns) < 2:
        raise ReproError(
            "without --sql the CSV needs grouping columns plus a value "
            "column"
        )
    return relation.name, answer_set_from_relation(relation)


def _describe_response(response, expand_all: bool = False) -> str:
    """Render a SummaryResponse like Figure 1b (or 1c with *expand_all*)."""
    lines = []
    for cluster in response.clusters:
        rendered = ", ".join(str(v) for v in cluster.pattern)
        lines.append(
            "(%s)  avg=%.4f  [%d elements]"
            % (rendered, cluster.avg, cluster.size)
        )
        if expand_all:
            for row in cluster.elements:
                rendered_row = ", ".join(str(v) for v in row.values)
                lines.append(
                    "    rank %3d: (%s)  val=%.4f"
                    % (row.rank, rendered_row, row.value)
                )
    return "\n".join(lines)


def _print_text_summary(args, answers, response) -> None:
    print(
        "n=%d answers; %d clusters (k=%d, L=%d, D=%d, %s); "
        "avg(O)=%.4f  [init %.0f ms, algo %.0f ms]"
        % (
            answers.n, response.solution_size, response.k, response.L,
            response.D, response.algorithm, response.objective,
            response.init_seconds * 1e3, response.algo_seconds * 1e3,
        )
    )
    print(_describe_response(response, expand_all=args.expand))


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        dataset, answers = _answers_from_csv(args.csv, args.sql, args.name)
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_IO_ERROR
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_PARAM_ERROR
    try:
        engine = Engine(mask_only=args.mask_only)
        engine.register_dataset(dataset, answers)
        L = min(args.L, answers.n)
        supported = get_algorithm(args.algorithm).kwargs
        options = {}
        if "kernel" in supported:
            options["kernel"] = args.kernel
        elif args.kernel != DEFAULT_KERNEL:
            print(
                "warning: --kernel %s ignored; algorithm %r has no "
                "kernelized path" % (args.kernel, args.algorithm),
                file=sys.stderr,
            )
        if "argmax" in supported:
            options["argmax"] = args.argmax
        elif args.argmax != AUTO_ARGMAX:
            print(
                "warning: --argmax %s ignored; algorithm %r has no "
                "group-argmax path" % (args.argmax, args.algorithm),
                file=sys.stderr,
            )
        request = SummaryRequest(
            dataset=dataset,
            k=args.k,
            L=L,
            D=args.D,
            algorithm=args.algorithm,
            options=options,
            include_elements=args.expand or args.json,
        )
        response = engine.submit(request)
        if args.json:
            print(response.to_json())
        else:
            _print_text_summary(args, answers, response)
        if args.guidance:
            k_lo = max(2, args.k - 4)
            k_hi = min(answers.n, args.k + 4)
            d_values = sorted({max(0, args.D - 1), args.D, args.D + 1})
            d_values = [d for d in d_values if d <= answers.m]
            if args.json:
                guidance = engine.submit(
                    GuidanceRequest(
                        dataset=dataset, L=L, k_range=(k_lo, k_hi),
                        d_values=tuple(d_values), kernel=args.kernel,
                    )
                )
                print(guidance.to_json())
            else:
                from repro.interactive.guidance import build_guidance_view

                store, _, _ = engine.checkout_store(
                    dataset, L, (k_lo, k_hi), d_values, kernel=args.kernel
                )
                view = build_guidance_view(store)
                print()
                print(view.render_ascii(width=48, height=10))
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_PARAM_ERROR
    return 0


# -- repro-serve ----------------------------------------------------------------


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.server.scheduler import (
        DEFAULT_QUEUE_DEPTH,
        DEFAULT_SHARDS,
        DEFAULT_WORKERS_PER_SHARD,
    )
    from repro.service.serve import DEFAULT_MAX_LINE_BYTES

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve summarization requests as JSON lines: one "
        "request object per line, one response per line — over "
        "stdin/stdout by default, or over TCP to many concurrent clients "
        "with --tcp HOST:PORT.",
    )
    parser.add_argument("--version", action="version", version=_version())
    parser.add_argument(
        "csv", nargs="*", type=Path,
        help="CSV files to preload as datasets (named by file stem; last "
        "column is the value)",
    )
    parser.add_argument(
        "--mask-only", action="store_true",
        help="build cluster pools in the low-memory mask-only mode",
    )
    parser.add_argument(
        "--tcp", metavar="HOST:PORT",
        help="serve the same JSON-lines protocol over TCP (port 0 binds an "
        "ephemeral port, reported in the ready banner) instead of stdio",
    )
    parser.add_argument(
        "--http", metavar="HOST:PORT",
        help="serve the HTTP/JSON front door (routes /healthz /metrics "
        "/v2/summary|explore|guidance /v2/admin/* /v2/sessions/*; port 0 "
        "binds an ephemeral port).  May be combined with --tcp: the TCP "
        "server then runs on a background thread",
    )
    parser.add_argument(
        "--auth-tokens", metavar="FILE", type=Path,
        help="require bearer-token auth on every transport; FILE holds one "
        "'user:token' per line ('#' comments).  Without it the server is "
        "open (single-tenant backward-compatible mode)",
    )
    parser.add_argument(
        "--quota", metavar="CAPACITY/WINDOW_SECONDS",
        help="per-user token-bucket quota on the analytical kinds, e.g. "
        "60/60 = 60 requests per user per minute; buckets refill at "
        "window boundaries.  Exhaustion answers error_type=QuotaExceeded "
        "(HTTP 429)",
    )
    parser.add_argument(
        "--session-dir", metavar="DIR", type=Path,
        help="HTTP mode: directory for durable named sessions (default: a "
        "fresh temp dir — sessions then do not survive a restart)",
    )
    parser.add_argument(
        "--data-dir", metavar="DIR", type=Path,
        help="make appends durable: write-ahead-log every append_rows "
        "batch under DIR (one snapshot + WAL per dataset) and replay "
        "them at boot, so a crashed or restarted server comes back "
        "bit-identical.  Without it the engine is purely in-memory",
    )
    parser.add_argument(
        "--fsync", default="always", choices=["always", "batch", "never"],
        help="WAL fsync policy with --data-dir: 'always' fsyncs every "
        "acked append (default), 'batch' amortizes over %d records, "
        "'never' leaves it to the OS page cache (drain still fsyncs)"
        % _batch_fsync_every(),
    )
    parser.add_argument(
        "--request-timeout", type=float, metavar="SECONDS",
        help="default deadline for analytical requests on every transport; "
        "work past it is abandoned at the next kernel checkpoint and "
        "answered with error_type=DeadlineExceeded (HTTP 504).  Requests "
        "may override per call with the deadline_ms envelope field.  "
        "Unset: no default deadline",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="seconds a server-scope shutdown waits for in-flight shard "
        "queues to drain before tearing connections down "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--shards", type=int, default=DEFAULT_SHARDS,
        help="TCP mode: per-dataset worker shards (default %(default)s)",
    )
    parser.add_argument(
        "--workers-per-shard", type=int, default=DEFAULT_WORKERS_PER_SHARD,
        help="TCP mode: worker threads per shard (default %(default)s)",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=DEFAULT_QUEUE_DEPTH,
        help="TCP mode: bounded per-shard queue; beyond it requests are "
        "answered with error_type=Overloaded (default %(default)s)",
    )
    parser.add_argument(
        "--max-line-bytes", type=int, default=DEFAULT_MAX_LINE_BYTES,
        help="reject request lines longer than this with "
        "error_type=LineTooLong (default %(default)s)",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="TCP mode: disable single-flight coalescing of identical "
        "in-flight requests (baseline/debugging)",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="arm end-to-end request tracing: every analytical request "
        "builds a span tree (queue wait, compute, engine phases) kept in "
        "a bounded in-memory ring buffer served by the 'trace' admin "
        "kind / GET /v2/admin/trace; requests may opt into an inline "
        "copy with the 'trace': true envelope field.  Off by default "
        "(zero overhead beyond one flag check)",
    )
    parser.add_argument(
        "--log-json", metavar="FILE", nargs="?", const="-",
        help="emit one structured JSON log line per completed request "
        "plus lifecycle events (worker restarts, quarantines, drains) to "
        "FILE (append mode), or to stderr when the flag is bare or FILE "
        "is '-'.  Implies --trace",
    )
    parser.add_argument(
        "--trace-buffer", type=int, metavar="N",
        help="ring-buffer capacity for the N most recent and N slowest "
        "retained traces (default %d)" % _default_trace_buffer(),
    )
    return parser


def _default_trace_buffer() -> int:
    from repro.obs import registry

    return registry.DEFAULT_TRACE_BUFFER


def _batch_fsync_every() -> int:
    from repro.durability.wal import BATCH_FSYNC_EVERY

    return BATCH_FSYNC_EVERY


def _parse_host_port(value: str, flag: str = "--tcp") -> tuple[str, int]:
    host, _, port_text = value.rpartition(":")
    if not host or not port_text:
        raise ReproError(
            "%s expects HOST:PORT, got %r" % (flag, value)
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ReproError(
            "%s port must be an integer, got %r" % (flag, port_text)
        ) from None
    return host, port


def serve_main(argv: list[str] | None = None) -> int:
    import asyncio

    from repro.service.serve import serve

    from repro.server.lifecycle import ServerLifecycle

    args = build_serve_parser().parse_args(argv)
    lifecycle = ServerLifecycle()
    durability = None
    try:
        tcp = _parse_host_port(args.tcp, "--tcp") if args.tcp else None
        http = _parse_host_port(args.http, "--http") if args.http else None
        auth = quota = None
        if args.auth_tokens is not None:
            from repro.web.auth import AuthService

            auth = AuthService.from_file(args.auth_tokens)
        if args.quota is not None:
            from repro.web.quota import QuotaService, parse_quota_spec

            capacity, window = parse_quota_spec(args.quota)
            quota = QuotaService(capacity, window)
        deadline_ms = None
        if args.request_timeout is not None:
            if args.request_timeout <= 0:
                raise ReproError(
                    "--request-timeout must be positive, got %g"
                    % args.request_timeout
                )
            deadline_ms = args.request_timeout * 1000.0
        telemetry = None
        if args.trace or args.log_json is not None \
                or args.trace_buffer is not None:
            from repro.obs import StructuredLogger, Telemetry, open_log_sink

            if args.trace_buffer is not None and args.trace_buffer <= 0:
                raise ReproError(
                    "--trace-buffer must be positive, got %d"
                    % args.trace_buffer
                )
            logger = None
            if args.log_json is not None:
                logger = StructuredLogger(open_log_sink(args.log_json))
            telemetry = Telemetry(
                tracing=True,
                trace_buffer=(
                    args.trace_buffer if args.trace_buffer is not None
                    else _default_trace_buffer()
                ),
                logger=logger,
            )
        if args.data_dir is not None:
            from repro.durability import DurabilityManager

            durability = DurabilityManager(
                str(args.data_dir), fsync=args.fsync
            )
        engine = Engine(mask_only=args.mask_only, durability=durability)
        recovered: set[str] = set()
        if durability is not None:
            # Boot-time recovery: snapshot + WAL replay through the
            # engine's own register/append path, then open for traffic.
            lifecycle.to_recovering()
            summary = durability.recover(engine)
            recovered = set(engine.dataset_names())
            if telemetry is not None:
                telemetry.event(
                    "recovery",
                    datasets=len(summary["datasets"]),
                    records=sum(
                        item["records"] for item in summary["datasets"]
                    ),
                    wal_truncated=summary["wal_truncated"],
                    seconds=summary["recovery_seconds"],
                )
        for csv_path in args.csv:
            dataset, answers = _answers_from_csv(csv_path, None, None)
            if dataset in recovered:
                # The recovered state already contains this dataset plus
                # every durably-acked append; the CSV on disk is older.
                continue
            engine.register_dataset(dataset, answers)
        lifecycle.to_ready()
    except OSError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_IO_ERROR
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return EXIT_PARAM_ERROR
    if http is not None:
        from repro.server.tcp import BackgroundServer, TCPServer
        from repro.web.http import WebServer

        background = None
        if tcp is not None:
            # HTTP is the foreground transport; TCP rides on a daemon
            # thread sharing the engine (each transport has its own
            # scheduler — auth/quota services are shared, so the quota
            # budget spans both transports).
            tcp_server = TCPServer(
                engine,
                tcp[0],
                tcp[1],
                shards=args.shards,
                workers_per_shard=args.workers_per_shard,
                queue_depth=args.queue_depth,
                max_line_bytes=args.max_line_bytes,
                coalesce=not args.no_coalesce,
                auth=auth,
                quota=quota,
                drain_timeout=args.drain_timeout,
                default_deadline_ms=deadline_ms,
                telemetry=telemetry,
                durability=durability,
                lifecycle=lifecycle,
            )
            background = BackgroundServer(tcp_server)
        web = WebServer(
            engine,
            http[0],
            http[1],
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            queue_depth=args.queue_depth,
            max_body_bytes=args.max_line_bytes,
            coalesce=not args.no_coalesce,
            auth=auth,
            quota=quota,
            session_dir=(
                str(args.session_dir) if args.session_dir else None
            ),
            drain_timeout=args.drain_timeout,
            default_deadline_ms=deadline_ms,
            telemetry=telemetry,
            durability=durability,
            lifecycle=lifecycle,
        )

        def _announce_web(running: WebServer) -> None:
            print(json.dumps(running.ready_banner(), sort_keys=True),
                  flush=True)

        try:
            if background is not None:
                background.start()
                print(
                    json.dumps(
                        background.server.ready_banner(), sort_keys=True
                    ),
                    flush=True,
                )
            web.run(ready=_announce_web)
        except KeyboardInterrupt:
            pass
        except OSError as error:
            print("error: %s" % error, file=sys.stderr)
            return EXIT_IO_ERROR
        except (ReproError, ValueError) as error:
            print("error: %s" % error, file=sys.stderr)
            return EXIT_PARAM_ERROR
        finally:
            if background is not None:
                background.stop()
        return 0
    if tcp is not None:
        from repro.server.tcp import TCPServer

        host, port = tcp
        server = TCPServer(
            engine,
            host,
            port,
            shards=args.shards,
            workers_per_shard=args.workers_per_shard,
            queue_depth=args.queue_depth,
            max_line_bytes=args.max_line_bytes,
            coalesce=not args.no_coalesce,
            auth=auth,
            quota=quota,
            drain_timeout=args.drain_timeout,
            default_deadline_ms=deadline_ms,
            telemetry=telemetry,
            durability=durability,
            lifecycle=lifecycle,
        )

        def _announce(running: TCPServer) -> None:
            print(json.dumps(running.ready_banner(), sort_keys=True),
                  flush=True)

        try:
            asyncio.run(server.run(ready=_announce))
        except KeyboardInterrupt:
            pass
        except OSError as error:  # bind failure: port in use, privileged...
            print("error: %s" % error, file=sys.stderr)
            return EXIT_IO_ERROR
        except (ReproError, ValueError) as error:  # bad knob values
            print("error: %s" % error, file=sys.stderr)
            return EXIT_PARAM_ERROR
        return 0
    banner = {
        "schema_version": SCHEMA_VERSION,
        "kind": "ready",
        "datasets": engine.dataset_names(),
    }
    print(json.dumps(banner, sort_keys=True), flush=True)
    from repro.service.serve import Dispatcher

    dispatcher = Dispatcher(
        engine, max_line_bytes=args.max_line_bytes, auth=auth, quota=quota,
        default_deadline_ms=deadline_ms, telemetry=telemetry,
        durability=durability, lifecycle=lifecycle,
    )
    try:
        serve(sys.stdin, sys.stdout, dispatcher=dispatcher)
    finally:
        if durability is not None:
            lifecycle.to_draining()
            durability.seal()
    return 0


if __name__ == "__main__":
    sys.exit(main())
