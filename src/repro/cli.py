"""Command-line interface: summarize aggregate answers from a CSV.

The paper ships a web GUI; the library's equivalent entry point is a CLI::

    repro-summarize data.csv \\
        --sql "SELECT a, b, avg(x) AS val FROM data GROUP BY a, b" \\
        -k 4 -L 8 -D 2 [--algorithm hybrid] [--expand] [--guidance]

``--sql`` runs the restricted aggregate template against the loaded CSV
(the FROM name must match the file stem or --name); without it, the CSV is
taken to *be* the answer set: every column but the last is a grouping
attribute, the last column is the value.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.common.errors import ReproError
from repro.core.answers import AnswerSet
from repro.core.problem import ALGORITHMS, summarize
from repro.interactive.session import ExplorationSession
from repro.query.csv_io import read_csv
from repro.query.sql import execute_sql


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-summarize",
        description="Summarize top aggregate query answers as k diverse "
        "clusters covering the top-L (VLDB 2018 reproduction).",
    )
    parser.add_argument("csv", type=Path, help="input CSV file")
    parser.add_argument(
        "--sql",
        help="aggregate query to run first (restricted template); without "
        "it the CSV's last column is treated as the value",
    )
    parser.add_argument("--name", help="relation name (default: file stem)")
    parser.add_argument("-k", type=int, required=True,
                        help="maximum number of clusters")
    parser.add_argument("-L", type=int, required=True,
                        help="top-L coverage requirement")
    parser.add_argument("-D", type=int, required=True,
                        help="minimum pairwise cluster distance")
    parser.add_argument(
        "--algorithm", default="hybrid", choices=sorted(ALGORITHMS),
        help="algorithm (default: hybrid)",
    )
    parser.add_argument("--expand", action="store_true",
                        help="also print the covered elements (layer 2)")
    parser.add_argument(
        "--guidance", action="store_true",
        help="print the parameter-guidance view around the chosen k and D",
    )
    return parser


def _answers_from_args(args: argparse.Namespace) -> AnswerSet:
    relation = read_csv(args.csv, name=args.name)
    if args.sql:
        return execute_sql(args.sql, relation).to_answer_set()
    if len(relation.columns) < 2:
        raise ReproError(
            "without --sql the CSV needs grouping columns plus a value "
            "column"
        )
    groups = [row[:-1] for row in relation.rows]
    values = [float(row[-1]) for row in relation.rows]
    return AnswerSet.from_rows(
        groups, values, attributes=relation.columns[:-1]
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        answers = _answers_from_args(args)
        session = ExplorationSession(answers)
        L = min(args.L, answers.n)
        timed = session.solve(
            k=args.k, L=L, D=args.D, algorithm=args.algorithm
        )
        print(
            "n=%d answers; %d clusters (k=%d, L=%d, D=%d, %s); "
            "avg(O)=%.4f  [init %.0f ms, algo %.0f ms]"
            % (
                answers.n, timed.solution.size, args.k, L, args.D,
                args.algorithm, timed.solution.avg,
                timed.init_seconds * 1e3, timed.algo_seconds * 1e3,
            )
        )
        print(session.describe(timed.solution, expand_all=args.expand))
        if args.guidance:
            k_lo = max(2, args.k - 4)
            k_hi = min(answers.n, args.k + 4)
            d_values = sorted({max(0, args.D - 1), args.D, args.D + 1})
            d_values = [d for d in d_values if d <= answers.m]
            view = session.guidance(L, (k_lo, k_hi), d_values)
            print()
            print(view.render_ascii(width=48, height=10))
    except ReproError as error:
        print("error: %s" % error, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
