"""Concept hierarchies with O(1) LCA queries (Appendix A.6).

For numeric or date attributes, plain ``*`` generalization is coarse; the
paper's extension organizes each attribute's domain as a tree — leaves are
concrete values, internal nodes are ranges like ``[20, 60)`` — and
generalizes two values to their **least common ancestor** in that tree.
The paper points to the classic Harel-Tarjan style machinery for constant
time LCA; we implement the standard reduction: Euler tour + range-minimum
via a sparse table, giving O(n log n) preprocessing and O(1) queries.

:func:`build_range_hierarchy` constructs a balanced fan-out tree over a
sorted numeric domain (the Figure 11 "range tree on age" shape);
:func:`build_date_hierarchy` builds the year -> half-decade -> decade shape
of Figure 12.  Arbitrary hand-authored hierarchies are supported through
:class:`HierarchyNode`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.common.errors import InvalidParameterError


@dataclass(eq=False)
class HierarchyNode:
    """A node of a concept hierarchy: a label and child nodes.

    Leaves carry a concrete domain ``value``; internal nodes only a label
    (typically a range rendering).  Equality and hashing are by identity:
    every node belongs to exactly one tree, so identity is the right
    notion, and it keeps :class:`GeneralizedCluster` hashable.
    """

    label: str
    value: Hashable | None = None
    children: list["HierarchyNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add(self, child: "HierarchyNode") -> "HierarchyNode":
        self.children.append(child)
        return child


class HierarchyTree:
    """A concept hierarchy with O(1) LCA after O(n log n) preprocessing."""

    def __init__(self, root: HierarchyNode) -> None:
        self.root = root
        self._nodes: list[HierarchyNode] = []
        self._index_of: dict[int, int] = {}  # id(node) -> node index
        self._leaf_of_value: dict[Hashable, HierarchyNode] = {}
        self._depth: dict[int, int] = {}
        self._euler: list[int] = []  # node indices along the Euler tour
        self._first_visit: dict[int, int] = {}
        self._collect(root, 0)
        if not self._leaf_of_value:
            raise InvalidParameterError("hierarchy has no leaves with values")
        self._build_sparse_table()

    # -- construction -----------------------------------------------------------

    def _collect(self, node: HierarchyNode, depth: int) -> None:
        index = len(self._nodes)
        self._nodes.append(node)
        self._index_of[id(node)] = index
        self._depth[index] = depth
        if node.is_leaf:
            if node.value is None:
                raise InvalidParameterError(
                    "leaf %r has no concrete value" % node.label
                )
            if node.value in self._leaf_of_value:
                raise InvalidParameterError(
                    "duplicate leaf value %r" % (node.value,)
                )
            self._leaf_of_value[node.value] = node
        self._first_visit[index] = len(self._euler)
        self._euler.append(index)
        for child in node.children:
            self._collect(child, depth + 1)
            self._euler.append(index)

    def _build_sparse_table(self) -> None:
        euler = self._euler
        depth = self._depth
        size = len(euler)
        levels = max(1, size.bit_length())
        # table[j][i]: index into euler of the min-depth node in
        # euler[i : i + 2**j].
        table = [list(range(size))]
        j = 1
        while (1 << j) <= size:
            previous = table[j - 1]
            row = []
            for i in range(size - (1 << j) + 1):
                left = previous[i]
                right = previous[i + (1 << (j - 1))]
                row.append(
                    left if depth[euler[left]] <= depth[euler[right]] else right
                )
            table.append(row)
            j += 1
        self._sparse = table

    # -- queries ---------------------------------------------------------------

    def node_count(self) -> int:
        return len(self._nodes)

    def leaf(self, value: Hashable) -> HierarchyNode:
        try:
            return self._leaf_of_value[value]
        except KeyError:
            raise InvalidParameterError(
                "value %r is not a leaf of this hierarchy" % (value,)
            ) from None

    def values(self) -> list[Hashable]:
        """All leaf values (document order)."""
        return [
            node.value for node in self._nodes if node.is_leaf
        ]

    def depth_of(self, node: HierarchyNode) -> int:
        return self._depth[self._index_of[id(node)]]

    def lca(self, a: HierarchyNode, b: HierarchyNode) -> HierarchyNode:
        """Least common ancestor in O(1) via the Euler/RMQ reduction."""
        ia = self._first_visit[self._index_of[id(a)]]
        ib = self._first_visit[self._index_of[id(b)]]
        if ia > ib:
            ia, ib = ib, ia
        span = ib - ia + 1
        j = span.bit_length() - 1
        euler = self._euler
        depth = self._depth
        left = self._sparse[j][ia]
        right = self._sparse[j][ib - (1 << j) + 1]
        winner = left if depth[euler[left]] <= depth[euler[right]] else right
        return self._nodes[euler[winner]]

    def lca_values(self, a: Hashable, b: Hashable) -> HierarchyNode:
        """LCA of the leaves carrying values *a* and *b*."""
        return self.lca(self.leaf(a), self.leaf(b))

    def lca_naive(self, a: HierarchyNode, b: HierarchyNode) -> HierarchyNode:
        """Reference implementation: climb parent chains (for tests)."""
        parents: dict[int, int | None] = {}

        def walk(node: HierarchyNode, parent: int | None) -> None:
            parents[self._index_of[id(node)]] = parent
            for child in node.children:
                walk(child, self._index_of[id(node)])

        walk(self.root, None)

        def chain(node: HierarchyNode) -> list[int]:
            result = []
            current: int | None = self._index_of[id(node)]
            while current is not None:
                result.append(current)
                current = parents[current]
            return result

        ancestors_a = set(chain(a))
        for index in chain(b):
            if index in ancestors_a:
                return self._nodes[index]
        raise AssertionError("nodes share at least the root")

    def is_ancestor(self, ancestor: HierarchyNode, node: HierarchyNode) -> bool:
        """True if *ancestor* is *node* or above it."""
        return self.lca(ancestor, node) is ancestor

    def leaves_under(self, node: HierarchyNode) -> list[Hashable]:
        """Concrete values generalized by *node*."""
        found: list[Hashable] = []

        def walk(current: HierarchyNode) -> None:
            if current.is_leaf:
                found.append(current.value)
                return
            for child in current.children:
                walk(child)

        walk(node)
        return found


def build_range_hierarchy(
    values: Sequence[int | float], fanout: int = 2, attribute: str = "value"
) -> HierarchyTree:
    """A balanced fan-out hierarchy over a sorted numeric domain.

    Leaves are the distinct values; each internal node is the range covering
    its children (rendered ``[lo, hi]``), as in the paper's Figure 11.
    """
    if fanout < 2:
        raise InvalidParameterError("fanout must be >= 2")
    domain = sorted(set(values))
    if not domain:
        raise InvalidParameterError("empty domain")
    nodes = [
        HierarchyNode(label="%s=%s" % (attribute, v), value=v) for v in domain
    ]
    lows = {id(node): node.value for node in nodes}
    highs = {id(node): node.value for node in nodes}
    while len(nodes) > 1:
        grouped = []
        for start in range(0, len(nodes), fanout):
            group = nodes[start:start + fanout]
            if len(group) == 1:
                grouped.append(group[0])
                continue
            low = lows[id(group[0])]
            high = highs[id(group[-1])]
            parent = HierarchyNode(label="%s in [%s, %s]" % (attribute, low, high))
            parent.children.extend(group)
            lows[id(parent)] = low
            highs[id(parent)] = high
            grouped.append(parent)
        if len(grouped) == len(nodes):
            break  # defensive; cannot happen with fanout >= 2
        nodes = grouped
    return HierarchyTree(nodes[0])


def build_date_hierarchy(years: Sequence[int]) -> HierarchyTree:
    """year -> half-decade -> decade -> all (the Figure 12 shape)."""
    domain = sorted(set(years))
    if not domain:
        raise InvalidParameterError("empty year domain")
    root = HierarchyNode(label="all years")
    decades: dict[int, HierarchyNode] = {}
    hdecs: dict[int, HierarchyNode] = {}
    for year in domain:
        dec = (year // 10) * 10
        hdec = (year // 5) * 5
        if dec not in decades:
            decades[dec] = root.add(HierarchyNode(label="%ds" % dec))
        if hdec not in hdecs:
            hdecs[hdec] = decades[dec].add(
                HierarchyNode(label="%d-%d" % (hdec, hdec + 4))
            )
        hdecs[hdec].add(HierarchyNode(label=str(year), value=year))
    return HierarchyTree(root)
