"""Generalized clusters: hierarchy nodes instead of bare ``*`` (App. A.6).

With a concept hierarchy per attribute, a cluster position can hold any
hierarchy node: a leaf (concrete value), the root (equivalent to ``*``), or
an intermediate range such as ``[20, 60)``.  Coverage, distance, and LCA
generalize naturally:

* a generalized cluster covers an element iff each element value is a leaf
  under the corresponding node;
* the per-attribute join of two clusters is the hierarchy LCA of their
  nodes (the Figure 11 example: join of [20, 40) and 55 is [20, 60));
* distance counts the attributes where the two clusters do not agree on
  the *same leaf* — the conservative extension of Definition 3.1 (an
  internal node, like ``*``, may contain differing elements, so it always
  contributes).

The plain framework is the special case where every hierarchy is the
two-level star tree (root over all leaves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.common.errors import InvalidParameterError, SchemaError
from repro.core.answers import AnswerSet
from repro.hierarchy.range_tree import HierarchyNode, HierarchyTree


def star_hierarchy(values: Sequence, attribute: str = "value") -> HierarchyTree:
    """The two-level hierarchy equivalent to plain ``*`` generalization."""
    root = HierarchyNode(label="*")
    for value in sorted(set(values), key=repr):
        root.add(HierarchyNode(label="%s=%r" % (attribute, value), value=value))
    return HierarchyTree(root)


@dataclass(frozen=True)
class GeneralizedCluster:
    """A cluster whose positions are hierarchy nodes."""

    nodes: tuple[HierarchyNode, ...]

    def labels(self) -> tuple[str, ...]:
        return tuple(node.label for node in self.nodes)

    def __str__(self) -> str:
        return "(%s)" % ", ".join(self.labels())


class GeneralizedSpace:
    """Cluster algebra over per-attribute concept hierarchies."""

    def __init__(self, answers: AnswerSet, hierarchies: Sequence[HierarchyTree]) -> None:
        if len(hierarchies) != answers.m:
            raise SchemaError(
                "need %d hierarchies (one per attribute), got %d"
                % (answers.m, len(hierarchies))
            )
        self.answers = answers
        self.hierarchies = tuple(hierarchies)
        self._coverage_cache: dict[GeneralizedCluster, tuple[int, ...]] = {}
        if answers.codec is None:
            raise SchemaError(
                "generalized clusters need a codec to map codes to values"
            )
        # Verify every attribute value appears as a leaf.
        for attr, hierarchy in enumerate(self.hierarchies):
            domain = set(hierarchy.values())
            for value in answers.codec.interner(attr).domain():
                if value not in domain:
                    raise SchemaError(
                        "attribute %d value %r missing from its hierarchy"
                        % (attr, value)
                    )

    # -- constructors ------------------------------------------------------------

    def singleton(self, rank: int) -> GeneralizedCluster:
        """The generalized cluster for an element (all positions leaves)."""
        decoded = self.answers.decode(self.answers.elements[rank])
        return GeneralizedCluster(
            tuple(
                hierarchy.leaf(value)
                for hierarchy, value in zip(self.hierarchies, decoded)
            )
        )

    def root_cluster(self) -> GeneralizedCluster:
        return GeneralizedCluster(
            tuple(hierarchy.root for hierarchy in self.hierarchies)
        )

    # -- algebra ---------------------------------------------------------------

    def covers_element(self, cluster: GeneralizedCluster, rank: int) -> bool:
        decoded = self.answers.decode(self.answers.elements[rank])
        for hierarchy, node, value in zip(
            self.hierarchies, cluster.nodes, decoded
        ):
            if not hierarchy.is_ancestor(node, hierarchy.leaf(value)):
                return False
        return True

    def coverage(self, cluster: GeneralizedCluster) -> list[int]:
        """Ranks of all covered elements (cached per cluster)."""
        cached = self._coverage_cache.get(cluster)
        if cached is None:
            cached = tuple(
                rank
                for rank in range(self.answers.n)
                if self.covers_element(cluster, rank)
            )
            self._coverage_cache[cluster] = cached
        return list(cached)

    def covers(self, ancestor: GeneralizedCluster, descendant: GeneralizedCluster) -> bool:
        return all(
            hierarchy.is_ancestor(a, d)
            for hierarchy, a, d in zip(
                self.hierarchies, ancestor.nodes, descendant.nodes
            )
        )

    def lca(
        self, c1: GeneralizedCluster, c2: GeneralizedCluster
    ) -> GeneralizedCluster:
        """Attribute-wise hierarchy LCA — the generalized Merge target."""
        return GeneralizedCluster(
            tuple(
                hierarchy.lca(a, b)
                for hierarchy, a, b in zip(self.hierarchies, c1.nodes, c2.nodes)
            )
        )

    def distance(self, c1: GeneralizedCluster, c2: GeneralizedCluster) -> int:
        """Attributes where the clusters do not share one concrete leaf."""
        total = 0
        for a, b in zip(c1.nodes, c2.nodes):
            if not (a.is_leaf and b.is_leaf and a.value == b.value):
                total += 1
        return total

    def avg(self, cluster: GeneralizedCluster) -> float:
        covered = self.coverage(cluster)
        if not covered:
            raise InvalidParameterError(
                "cluster %s covers no elements" % cluster
            )
        return sum(self.answers.values[i] for i in covered) / len(covered)

    # -- a Bottom-Up adaptation ---------------------------------------------------

    def summarize(self, k: int, L: int, D: int) -> list[GeneralizedCluster]:
        """Bottom-Up greedy over generalized clusters.

        The same two-phase structure as Algorithm 1, with hierarchy LCA as
        the merge.  Quadratic candidate evaluation on coverage computed on
        demand; intended for the moderate L values of interactive use.
        """
        if not 1 <= L <= self.answers.n:
            raise InvalidParameterError(
                "L=%d out of range [1, %d]" % (L, self.answers.n)
            )
        if k < 1:
            raise InvalidParameterError("k must be >= 1")
        current: list[GeneralizedCluster] = [
            self.singleton(rank) for rank in range(L)
        ]

        def merged_avg(c1: GeneralizedCluster, c2: GeneralizedCluster) -> float:
            union: set[int] = set()
            for member in current:
                if member is c1 or member is c2:
                    continue
                union.update(self.coverage(member))
            union.update(self.coverage(self.lca(c1, c2)))
            return sum(self.answers.values[i] for i in union) / len(union)

        def merge_once(pairs: list[tuple[int, int]]) -> None:
            best = max(
                pairs,
                key=lambda pair: (
                    merged_avg(current[pair[0]], current[pair[1]]),
                    -pair[0],
                    -pair[1],
                ),
            )
            c1, c2 = current[best[0]], current[best[1]]
            new = self.lca(c1, c2)
            survivors = [
                member
                for member in current
                if member is not c1
                and member is not c2
                and not self.covers(new, member)
            ]
            survivors.append(new)
            current[:] = survivors

        while True:
            violating = [
                (i, j)
                for i in range(len(current))
                for j in range(i + 1, len(current))
                if self.distance(current[i], current[j]) < D
            ]
            if not violating:
                break
            merge_once(violating)
        while len(current) > k:
            merge_once(
                [
                    (i, j)
                    for i in range(len(current))
                    for j in range(i + 1, len(current))
                ]
            )
        return list(current)
