"""Concept-hierarchy / range-value extension (Appendix A.6)."""

from repro.hierarchy.range_tree import (
    HierarchyNode,
    HierarchyTree,
    build_date_hierarchy,
    build_range_hierarchy,
)
from repro.hierarchy.generalized import (
    GeneralizedCluster,
    GeneralizedSpace,
    star_hierarchy,
)

__all__ = [
    "HierarchyNode",
    "HierarchyTree",
    "build_date_hierarchy",
    "build_range_hierarchy",
    "GeneralizedCluster",
    "GeneralizedSpace",
    "star_hierarchy",
]
