"""The multi-tenant HTTP/JSON front door over the shared dispatcher.

``repro-serve --http HOST:PORT`` serves the same schema-v2 request
objects as stdio and TCP, mapped onto routes — every request still goes
through the one transport-agnostic
:class:`~repro.service.serve.Dispatcher` and the sharded scheduler, so
the response *payloads* are byte-identical across all three transports
(the HTTP body is exactly the JSON line TCP would have written).  What
HTTP adds is the tenant model: bearer-token auth, per-user token-bucket
quotas, durable named sessions, and proper status codes.

Routes (stdlib ``ThreadingHTTPServer``; one thread per connection,
analytics still run on the shared sharded worker pool):

=====================================  =======================================
``GET  /healthz``                      liveness + dataset list (no auth)
``GET  /metrics``                      Prometheus text exposition (no auth)
``POST /v2/summary|explore|guidance``  the analytical kinds; body is the
                                       wire request object (``kind``
                                       optional, filled from the route)
``POST /v2/admin/<kind>``              ping / load_csv / datasets /
                                       algorithms / stats / shutdown
``POST   /v2/sessions``                create a named session
``GET    /v2/sessions``                list the caller's sessions
``GET    /v2/sessions/<name>``         fetch one session record
``POST   /v2/sessions/<name>/step``    merge overrides into the base
                                       request, dispatch, advance
``DELETE /v2/sessions/<name>``         delete a session
=====================================  =======================================

Status codes are derived from the response payload, so the error bytes
stay transport-identical and only the HTTP envelope differs: 400 bad
request (schema/parameter errors), 401 ``AuthError``, 404 unknown
route/session, 413 body too large, 429 ``QuotaExceeded``, 503
``Overloaded`` / ``ShuttingDown``.  Every 503 (and every 429 on a
quota-enabled server) carries a ``Retry-After`` header so plain HTTP
clients get the same machine-readable backoff hint
:class:`~repro.server.client.RetryingClient` derives itself.

Shutdown (``POST /v2/admin/shutdown`` with ``scope="server"``) answers
the ack first, then drains the shard queues (bounded by
``drain_timeout``) before the listener stops — mirroring the TCP tier's
graceful drain.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from repro.common.errors import ReproError, SchemaError
from repro.obs import Telemetry, TelemetryRegistry
from repro.server.lifecycle import READY, ServerLifecycle
from repro.server.metrics import ServerMetrics, prometheus_text
from repro.server.scheduler import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SHARDS,
    DEFAULT_WORKERS_PER_SHARD,
    ShardedScheduler,
)
from repro.service.api import SCHEMA_VERSION, ErrorResponse
from repro.service.engine import Engine
from repro.service.serve import (
    ANALYTIC_KINDS,
    DEFAULT_MAX_LINE_BYTES,
    Dispatcher,
    SERVER_SCOPE,
)
from repro.web.auth import ANONYMOUS_USER, AuthService, parse_bearer
from repro.web.quota import QuotaService
from repro.web.sessions import SessionService, SessionStore

#: error_type -> HTTP status; anything else that is ``kind="error"``
#: is a plain bad request.
STATUS_BY_ERROR_TYPE: Mapping[str, int] = {
    "AuthError": 401,
    "UnknownSessionError": 404,
    "LineTooLong": 413,
    "QuotaExceeded": 429,
    "InjectedFault": 500,
    "PoisonedRequest": 500,
    "Overloaded": 503,
    "ShuttingDown": 503,
    "DeadlineExceeded": 504,
}

#: ``Retry-After`` seconds on 503 responses.  Overload is transient by
#: construction (bounded shard queues drain quickly) and a draining
#: server is about to be replaced, so the hint is deliberately short.
RETRY_AFTER_SECONDS_503 = 1

#: Admin kinds the ``/v2/admin/<kind>`` route refuses to alias (they
#: have first-class routes of their own).
_ADMIN_EXCLUDED = ANALYTIC_KINDS


def status_for(payload: Any) -> int:
    """The HTTP status a wire response payload maps to."""
    if isinstance(payload, dict) and payload.get("kind") == "error":
        return STATUS_BY_ERROR_TYPE.get(payload.get("error_type"), 400)
    return 200


def _error_payload(error: Exception) -> dict[str, Any]:
    return ErrorResponse(
        error_type=type(error).__name__, message=str(error)
    ).to_dict()


#: Bound on a caller-supplied ``X-Request-Id`` (the id lands verbatim in
#: traces and structured log lines, so it must stay printable and short).
_MAX_REQUEST_ID_LEN = 128


def _clean_request_id(value: str | None) -> str | None:
    """A usable trace id from the ``X-Request-Id`` header, or ``None``."""
    if value is None:
        return None
    value = value.strip()
    if not value or len(value) > _MAX_REQUEST_ID_LEN:
        return None
    if any(c.isspace() or not c.isprintable() for c in value):
        return None
    return value


class _Route:
    """One resolved request: handler + path arguments."""

    __slots__ = ("call", "args", "kind_label")

    def __init__(self, call: Callable, args: tuple, kind_label: str) -> None:
        self.call = call
        self.args = args
        self.kind_label = kind_label


class WebServer:
    """The HTTP front door: routers -> services -> the shared engine.

    Construction wires the full service stack: a sharded scheduler over
    *engine*, a :class:`Dispatcher` with the optional auth and quota
    services, and a :class:`SessionService` over *session_dir*.  Run it
    blocking via :meth:`run`, or from synchronous tests/benchmarks via
    :class:`BackgroundWebServer`.  ``port=0`` binds an ephemeral port;
    ``bound_port`` reports it once running.
    """

    def __init__(
        self,
        engine: Engine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shards: int = DEFAULT_SHARDS,
        workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_body_bytes: int = DEFAULT_MAX_LINE_BYTES,
        coalesce: bool = True,
        auth: AuthService | None = None,
        quota: QuotaService | None = None,
        session_dir: str | None = None,
        drain_timeout: float = 5.0,
        submit: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
        default_deadline_ms: float | None = None,
        telemetry: Telemetry | None = None,
        durability=None,
        lifecycle=None,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.drain_timeout = drain_timeout
        self.auth = auth
        self.quota = quota
        self.telemetry = telemetry
        self.durability = durability
        # Servers constructed without an explicit lifecycle (tests,
        # embedding) are born ready — identical readiness behavior to
        # the pre-lifecycle builds.
        self.lifecycle = (
            lifecycle if lifecycle is not None
            else ServerLifecycle(initial=READY)
        )
        self.metrics = ServerMetrics()
        self.scheduler = ShardedScheduler(
            submit if submit is not None else engine.submit_dict,
            shards=shards,
            workers_per_shard=workers_per_shard,
            queue_depth=queue_depth,
            coalesce=coalesce,
            telemetry=telemetry,
        )
        self.dispatcher = Dispatcher(
            engine,
            max_line_bytes=max_body_bytes,
            submit=self.scheduler.submit,
            extra_stats=self.server_stats,
            auth=auth,
            quota=quota,
            default_deadline_ms=default_deadline_ms,
            telemetry=telemetry,
            durability=durability,
            lifecycle=self.lifecycle,
        )
        if session_dir is None:
            import tempfile

            # Ephemeral store: sessions work but do not survive restart;
            # pass --session-dir for durability.
            session_dir = tempfile.mkdtemp(prefix="repro-sessions-")
        self.session_dir = session_dir
        self.sessions = SessionService(
            SessionStore(session_dir), self.dispatcher
        )
        # Every telemetry source this tier owns, unified: /metrics and
        # the stats "server" section both render from this registry.
        self.registry = TelemetryRegistry(telemetry)
        self.registry.register("metrics", self.metrics.snapshot)
        self.registry.register("scheduler", self.scheduler.stats)
        self.registry.register("engine", engine.stats)
        self.registry.register("dispatcher", self._dispatcher_counts)
        self.registry.register("sessions", self.sessions.store.stats)
        if durability is not None:
            self.registry.register("durability", durability.stats)
        self.registry.register("lifecycle", self.lifecycle.describe)
        if auth is not None:
            self.registry.register("auth", auth.stats)
        if quota is not None:
            self.registry.register("quota", quota.stats)
        # Per-handler-thread request context (the X-Request-Id header);
        # each HTTP request runs entirely on one handler thread.
        self._request_context = threading.local()
        self.bound_port: int | None = None
        self.started_at: float | None = None
        self._httpd: ThreadingHTTPServer | None = None
        self._stop_thread: threading.Thread | None = None
        self._stopping = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def run(self, ready: Callable[["WebServer"], None] | None = None) -> None:
        """Bind, serve until shutdown, then stop the worker pool."""
        web = self

        class _Server(ThreadingHTTPServer):
            daemon_threads = True  # a wedged client cannot block exit

        try:
            self._httpd = _Server((self.host, self.port), _Handler)
            self._httpd.web = self  # type: ignore[attr-defined]
            self.bound_port = self._httpd.server_address[1]
            self.started_at = time.time()
            if ready is not None:
                ready(web)
            self._httpd.serve_forever(poll_interval=0.05)
            self._httpd.server_close()
        finally:
            self.scheduler.stop()

    def request_stop(self) -> None:
        """Drain the shard queues (bounded), then stop the listener.

        Safe from handler threads: the actual ``shutdown()`` runs on a
        helper thread because it blocks until ``serve_forever`` exits.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self.lifecycle.to_draining()

        def _stop() -> None:
            drained = self.scheduler.drain(self.drain_timeout)
            if self.telemetry is not None:
                self.telemetry.event(
                    "drain", transport="http", drained=drained,
                    timeout_seconds=self.drain_timeout,
                )
            if self.durability is not None:
                # After the worker drain, before the listener dies: the
                # WAL's final flush + fsync, then it refuses stragglers.
                self.durability.seal()
            if self._httpd is not None:
                self._httpd.shutdown()

        self._stop_thread = threading.Thread(
            target=_stop, name="repro-web-stop", daemon=True
        )
        self._stop_thread.start()

    # -- routing -------------------------------------------------------------

    def resolve(self, method: str, path: str) -> _Route | None:
        parts = [part for part in path.split("/") if part]
        if method == "GET" and path == "/healthz":
            return _Route(self._route_healthz, (), "healthz")
        if method == "GET" and path == "/metrics":
            return _Route(self._route_metrics, (), "metrics")
        if len(parts) >= 2 and parts[0] == "v2":
            if method == "POST" and len(parts) == 2 and (
                parts[1] in ANALYTIC_KINDS
            ):
                return _Route(self._route_analytic, (parts[1],), parts[1])
            if method == "POST" and len(parts) == 3 and (
                parts[1] == "admin"
            ):
                return _Route(self._route_admin, (parts[2],), parts[2])
            if parts[1] == "sessions":
                if len(parts) == 2:
                    if method == "POST":
                        return _Route(
                            self._route_session_create, (), "session"
                        )
                    if method == "GET":
                        return _Route(
                            self._route_session_list, (), "session"
                        )
                if len(parts) == 3 and method == "GET":
                    return _Route(
                        self._route_session_get, (parts[2],), "session"
                    )
                if len(parts) == 3 and method == "DELETE":
                    return _Route(
                        self._route_session_delete, (parts[2],), "session"
                    )
                if (
                    len(parts) == 4
                    and parts[3] == "step"
                    and method == "POST"
                ):
                    return _Route(
                        self._route_session_step, (parts[2],), "session"
                    )
        return None

    # -- route handlers ------------------------------------------------------
    # Each returns (status, payload, content_type); content_type None
    # means JSON.  ``token`` is the bearer token (or None), ``body`` the
    # parsed JSON body (or None for GET/DELETE).

    def _route_healthz(self, token, body):
        # Readiness, not just liveness: 200 only in the "ready" state.
        # A booting server replaying its WAL answers 503 + "recovering"
        # so load balancers hold traffic; a draining one answers 503 +
        # "draining" so they stop sending new work before the exit.
        state = self.lifecycle.state
        ready = state == READY
        payload = {
            "status": "ok" if ready else "unavailable",
            "state": state,
            "schema_version": SCHEMA_VERSION,
            "transport": "http",
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
            "datasets": self.engine.dataset_names(),
            "auth_required": self.auth is not None,
        }
        return (200 if ready else 503), payload, None

    def _route_metrics(self, token, body):
        # Gauge names (scheduler_*, shard_queue_depth{shard=...},
        # singleflight_*, quota_*, auth_rejected, sessions_*,
        # engine_*) are defined once, in the telemetry registry.
        text = prometheus_text(self.metrics, self.registry.prometheus_extra())
        return 200, text, "text/plain; version=0.0.4; charset=utf-8"

    def _dispatcher_counts(self) -> dict[str, int]:
        """The dispatcher's rejection counters, registry-shaped (keys
        match the ``stats`` response's ``rejected`` map)."""
        dispatcher = self.dispatcher
        return {
            "oversized": dispatcher.oversized,
            "undecodable": dispatcher.undecodable,
            "malformed": dispatcher.malformed,
            "auth": dispatcher.auth_rejected,
            "quota": dispatcher.quota_rejected,
            "deadline": dispatcher.deadline_exceeded,
            "draining": dispatcher.draining_rejected,
        }

    def _identify(self, token) -> str:
        """The session/tenant identity of a request (may raise AuthError)."""
        if self.auth is None:
            return ANONYMOUS_USER
        return self.auth.authenticate(token)

    def _dispatch(self, payload: dict[str, Any], token):
        """Route one wire payload through the shared dispatcher."""
        if token is not None and "auth" not in payload:
            payload["auth"] = token
        outcome = self.dispatcher.dispatch_payload(
            payload,
            request_id=getattr(self._request_context, "request_id", None),
        )
        response = outcome.response
        if hasattr(response, "result"):  # scheduler future
            response = response.result()
        return status_for(response), response, None

    def _route_analytic(self, token, body, kind):
        if body is None:
            body = {}
        body.setdefault("kind", kind)
        if body["kind"] != kind:
            raise SchemaError(
                "route /v2/%s cannot carry kind=%r" % (kind, body["kind"])
            )
        return self._dispatch(body, token)

    def _route_admin(self, token, body, kind):
        if kind in _ADMIN_EXCLUDED:
            raise SchemaError(
                "kind %r is served at /v2/%s, not under /v2/admin/"
                % (kind, kind)
            )
        if body is None:
            body = {}
        body.setdefault("kind", kind)
        if body["kind"] != kind:
            raise SchemaError(
                "route /v2/admin/%s cannot carry kind=%r"
                % (kind, body["kind"])
            )
        return self._dispatch(body, token)

    # -- session routes ------------------------------------------------------

    def _route_session_create(self, token, body):
        user = self._identify(token)
        if not isinstance(body, dict):
            raise SchemaError("session create needs a JSON object body")
        name = body.get("name")
        base = body.get("base")
        record = self.sessions.create(user, name, base)
        return 200, record.to_dict(), None

    def _route_session_list(self, token, body):
        user = self._identify(token)
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "kind": "sessions",
            "user": user,
            "sessions": self.sessions.list(user),
        }, None

    def _route_session_get(self, token, body, name):
        user = self._identify(token)
        return 200, self.sessions.get(user, name).to_dict(), None

    def _route_session_delete(self, token, body, name):
        user = self._identify(token)
        self.sessions.delete(user, name)
        return 200, {
            "schema_version": SCHEMA_VERSION,
            "kind": "session_deleted",
            "name": name,
        }, None

    def _route_session_step(self, token, body, name):
        user = self._identify(token)
        response = self.sessions.step(
            user, name, body if body is not None else {}, auth_token=token
        )
        return status_for(response), response, None

    # -- introspection -------------------------------------------------------

    def server_stats(self) -> dict[str, Any]:
        """The ``"server"`` section of the ``stats`` admin response
        (assembled by the telemetry registry; key shapes are stable)."""
        return self.registry.server_stats({
            "transport": "http",
            "host": self.host,
            "port": self.bound_port,
            "max_body_bytes": self.max_body_bytes,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
        })

    def ready_banner(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "ready",
            "transport": "http",
            "host": self.host,
            "port": self.bound_port,
            "datasets": self.engine.dataset_names(),
            "auth_required": self.auth is not None,
        }


class _Handler(BaseHTTPRequestHandler):
    """Thin per-request adapter: read body, resolve route, write JSON."""

    protocol_version = "HTTP/1.1"
    timeout = 60  # a stalled client cannot pin its handler thread forever

    @property
    def web(self) -> WebServer:
        return self.server.web  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging would be per-request stderr noise; the metrics
        # histograms carry the same information queryably.
        pass

    # -- plumbing ------------------------------------------------------------

    def _write_json(self, status: int, payload: Any) -> None:
        # Exactly the bytes the TCP transport writes per line — the
        # transport-parity contract.
        body = (
            json.dumps(payload, sort_keys=True) + "\n"
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if status == 429 and self.web.quota is not None:
            # RFC 6585: tell throttled clients when the window resets.
            self.send_header(
                "Retry-After",
                str(max(1, round(self.web.quota.seconds_until_reset()))),
            )
        elif status == 503:
            # Overloaded / ShuttingDown / not-ready healthz: same
            # machine-readable backoff hint the 429 path already gives.
            self.send_header("Retry-After", str(RETRY_AFTER_SECONDS_503))
        self.end_headers()
        self.wfile.write(body)

    def _write_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict[str, Any] | None:
        length_text = self.headers.get("Content-Length")
        if length_text is None:
            return None
        try:
            length = int(length_text)
        except ValueError:
            raise SchemaError("invalid Content-Length header")
        if length < 0:
            raise SchemaError("invalid Content-Length header")
        if length == 0:
            return None
        if length > self.web.max_body_bytes:
            # Counted like an oversized wire line; the connection closes
            # (we never read the body) so framing cannot desync.
            raise _BodyTooLarge()
        raw = self.rfile.read(length)
        if len(raw) < length:
            raise SchemaError("request body was truncated")
        try:
            payload = json.loads(raw.decode("utf-8"))
        except UnicodeDecodeError:
            raise SchemaError("request body is not valid UTF-8")
        except json.JSONDecodeError as error:
            raise SchemaError("invalid JSON: %s" % error)
        if not isinstance(payload, dict):
            raise SchemaError("request body must be a JSON object")
        return payload

    # -- request entry points ------------------------------------------------

    def _serve(self, method: str) -> None:
        started = time.perf_counter()
        web = self.web
        # Honor a caller-supplied trace id (set unconditionally: handler
        # threads are reused, so a request without the header must not
        # inherit the previous request's id).
        web._request_context.request_id = _clean_request_id(
            self.headers.get("X-Request-Id")
        )
        route = web.resolve(method, self.path.split("?", 1)[0])
        kind_label = route.kind_label if route is not None else "invalid"
        close_connection = False
        try:
            if route is None:
                status, payload, content_type = 404, _error_payload(
                    SchemaError("no route for %s %s" % (method, self.path))
                ), None
            else:
                token = parse_bearer(self.headers.get("Authorization"))
                body = self._read_body() if method in ("POST", "PUT") else None
                status, payload, content_type = route.call(
                    token, body, *route.args
                )
        except _BodyTooLarge:
            # Exactly the dispatcher's oversized payload — the error body
            # must be byte-identical across stdio/TCP/HTTP (the dispatcher
            # speaks in line terms; max_line_bytes IS max_body_bytes here).
            status, payload, content_type = (
                413, web.dispatcher.oversized_error(), None
            )
            close_connection = True  # unread body: cannot reuse the socket
        except ReproError as error:
            status, payload, content_type = (
                status_for(_error_payload(error)), _error_payload(error), None
            )
        except Exception as error:  # belt and suspenders: never a traceback
            status, payload, content_type = 500, _error_payload(error), None
        try:
            if close_connection:
                self.close_connection = True
            if content_type is None:
                self._write_json(status, payload)
            else:
                self._write_text(status, payload, content_type)
        except (BrokenPipeError, ConnectionResetError):
            return
        web.metrics.observe(kind_label, time.perf_counter() - started)
        web.metrics.incr("responses")
        web.metrics.incr("http_%d" % (status // 100 * 100))
        # Ack-then-stop ordering: a server-scope shutdown begins only
        # after its acknowledgement is on the wire, so the requesting
        # client always sees the response before the listener dies.
        if (
            isinstance(payload, dict)
            and payload.get("kind") == "shutdown_ack"
            and payload.get("scope") == SERVER_SCOPE
        ):
            web.request_stop()

    def do_GET(self) -> None:
        self._serve("GET")

    def do_POST(self) -> None:
        self._serve("POST")

    def do_DELETE(self) -> None:
        self._serve("DELETE")


class _BodyTooLarge(Exception):
    """Internal: Content-Length exceeded max_body_bytes (HTTP 413)."""


class BackgroundWebServer:
    """Run a :class:`WebServer` on a daemon thread (tests, benchmarks).

    ``start()`` blocks until the port is bound; ``stop()`` requests the
    drain-then-shutdown sequence and joins, returning ``True`` when the
    server wound down within the timeout.
    """

    def __init__(self, server: WebServer) -> None:
        self.server = server
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-web-server", daemon=True
        )

    def _run(self) -> None:
        try:
            self.server.run(ready=lambda _: self._ready.set())
        except BaseException as error:  # surface startup failures to start()
            self._error = error
        finally:
            self._ready.set()

    def start(self, timeout: float = 30.0) -> "BackgroundWebServer":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError(
                "HTTP server did not start within %gs" % timeout
            )
        if self._error is not None:
            raise RuntimeError("HTTP server failed to start") from self._error
        return self

    @property
    def port(self) -> int:
        port = self.server.bound_port
        if port is None:
            raise RuntimeError("server is not running")
        return port

    @property
    def host(self) -> str:
        return self.server.host

    def base_url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def stop(self, timeout: float = 30.0) -> bool:
        self.server.request_stop()
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "BackgroundWebServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
