"""Durable named exploration sessions: the paper's interactive loop, resumable.

:class:`repro.interactive.session.ExplorationSession` holds the
summarize -> explore -> guidance loop in process memory; this module is
the multi-tenant, restart-surviving version of that state.  A session is
a named cursor over the exploration: the *base request* (the full
analytic wire payload the user is currently looking at) plus the drill
history that led there.  Stepping a session merges an override dict
(``{"k": 5}``, ``{"D": 2}`` ...) into the base, dispatches the merged
request through the shared transport-agnostic dispatcher, and — only on
success — advances the base, so a session resumed after a server
restart produces the byte-identical next-step response it would have
produced without the restart (the acceptance test for this subsystem).

Durability contract:

* one JSON file per session, under ``root/<user>/<name>.json`` — user
  and session names are validated path components (see
  :func:`repro.web.auth.validate_name`);
* every save is **atomic**: write to a temp file in the same directory,
  then ``os.replace`` — a crash mid-save leaves the previous version,
  never a torn file;
* a file that fails to load (corrupted JSON, wrong shape) is served as
  *not found* and counted in ``corrupted`` — a bad byte on disk must
  not take the server down;
* reads go through a small LRU cache, so the hot path of an interactive
  burst does not touch the disk per step.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.common.faults import fault_point
from repro.common.errors import (
    InvalidParameterError,
    SchemaError,
    UnknownSessionError,
)
from repro.web.auth import validate_name

logger = logging.getLogger(__name__)

#: The request kinds a session base may carry — the analytical loop.
SESSION_KINDS = frozenset({"summary", "explore", "guidance"})

#: Default LRU bound on in-memory session records.
DEFAULT_CACHE_SIZE = 128


@dataclass
class SessionRecord:
    """One durable session: identity, the current base request, history."""

    name: str
    user: str
    base: dict[str, Any]
    steps: list[dict[str, Any]] = field(default_factory=list)
    created_at: float = 0.0
    updated_at: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "user": self.user,
            "base": self.base,
            "steps": self.steps,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, payload: Any) -> "SessionRecord":
        if not isinstance(payload, dict):
            raise SchemaError("session file must hold a JSON object")
        try:
            record = cls(
                name=payload["name"],
                user=payload["user"],
                base=payload["base"],
                steps=payload["steps"],
                created_at=float(payload["created_at"]),
                updated_at=float(payload["updated_at"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SchemaError("session file is malformed: %s" % error)
        if not isinstance(record.base, dict) or not isinstance(
            record.steps, list
        ):
            raise SchemaError("session file is malformed: wrong field types")
        return record


class SessionStore:
    """Atomic JSON-file persistence with an LRU read cache."""

    def __init__(
        self, root: str | Path, cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._cache: OrderedDict[tuple[str, str], SessionRecord] = (
            OrderedDict()
        )
        self._cache_size = max(1, cache_size)
        self.corrupted = 0
        self.saves = 0

    def _path(self, user: str, name: str) -> Path:
        validate_name(user, "session user")
        validate_name(name, "session name")
        return self.root / user / (name + ".json")

    # -- persistence ---------------------------------------------------------

    def save(self, record: SessionRecord) -> None:
        # Chaos site: an injected error here models a full/failing disk;
        # placed before the temp file exists so nothing needs cleanup.
        fault_point("sessions.write")
        path = self._path(record.user, record.name)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(record.to_dict(), sort_keys=True, indent=1)
        # Atomic replace: the temp file lives in the target directory so
        # os.replace stays a same-filesystem rename.
        descriptor, temp_name = tempfile.mkstemp(
            prefix=".%s-" % record.name, suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        with self._lock:
            self.saves += 1
            self._cache[(record.user, record.name)] = record
            self._cache.move_to_end((record.user, record.name))
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def load(self, user: str, name: str) -> SessionRecord | None:
        """The stored record, or None for missing *and* unreadable files."""
        key = (user, name)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                return cached
        path = self._path(user, name)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            self._count_corrupted(path, error)
            return None
        try:
            record = SessionRecord.from_dict(json.loads(text))
        except (json.JSONDecodeError, SchemaError) as error:
            self._count_corrupted(path, error)
            return None
        with self._lock:
            self._cache[key] = record
            self._cache.move_to_end(key)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return record

    def _count_corrupted(self, path: Path, error: Exception) -> None:
        with self._lock:
            self.corrupted += 1
        logger.warning(
            "session file %s is unreadable (served as not found): %s",
            path, error,
        )

    def delete(self, user: str, name: str) -> bool:
        path = self._path(user, name)
        with self._lock:
            self._cache.pop((user, name), None)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        return True

    def list(self, user: str) -> list[str]:
        validate_name(user, "session user")
        directory = self.root / user
        if not directory.is_dir():
            return []
        return sorted(
            entry.stem for entry in directory.glob("*.json")
            if not entry.name.startswith(".")
        )

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "cached": len(self._cache),
                "cache_size": self._cache_size,
                "saves": self.saves,
                "corrupted": self.corrupted,
            }


class SessionService:
    """Create/step/resume named sessions over the shared dispatcher.

    Steps on the *same* session are serialized by a per-session lock
    (two concurrent drills cannot interleave load-modify-save); steps on
    different sessions proceed in parallel.
    """

    def __init__(self, store: SessionStore, dispatcher) -> None:
        self.store = store
        self.dispatcher = dispatcher
        self._locks_guard = threading.Lock()
        self._locks: dict[tuple[str, str], threading.Lock] = {}

    def _session_lock(self, user: str, name: str) -> threading.Lock:
        with self._locks_guard:
            return self._locks.setdefault(
                (user, name), threading.Lock()
            )

    # -- lifecycle -----------------------------------------------------------

    def create(
        self, user: str, name: str, base: dict[str, Any]
    ) -> SessionRecord:
        if not isinstance(base, dict):
            raise SchemaError("session 'base' must be a request object")
        kind = base.get("kind")
        if kind not in SESSION_KINDS:
            raise SchemaError(
                "session base kind must be one of %s, got %r"
                % (sorted(SESSION_KINDS), kind)
            )
        if not isinstance(base.get("dataset"), str):
            raise SchemaError("session base needs a string 'dataset'")
        with self._session_lock(user, name):
            if self.store.load(user, name) is not None:
                raise InvalidParameterError(
                    "session %r already exists for user %r" % (name, user)
                )
            now = time.time()
            record = SessionRecord(
                name=name, user=user, base=dict(base),
                created_at=now, updated_at=now,
            )
            self.store.save(record)
        return record

    def get(self, user: str, name: str) -> SessionRecord:
        record = self.store.load(user, name)
        if record is None:
            raise UnknownSessionError(
                "unknown session %r for user %r" % (name, user)
            )
        return record

    def delete(self, user: str, name: str) -> None:
        with self._session_lock(user, name):
            if not self.store.delete(user, name):
                raise UnknownSessionError(
                    "unknown session %r for user %r" % (name, user)
                )

    def list(self, user: str) -> list[str]:
        return self.store.list(user)

    # -- stepping ------------------------------------------------------------

    def step(
        self,
        user: str,
        name: str,
        overrides: dict[str, Any],
        auth_token: str | None = None,
    ) -> dict[str, Any]:
        """Merge *overrides* into the base, dispatch, advance on success.

        Returns the analytic wire response verbatim (the transport maps
        its payload to a status code).  An error response leaves the
        session unchanged, so a typo'd drill never corrupts the cursor.
        """
        if not isinstance(overrides, dict):
            raise SchemaError("session step body must be a JSON object")
        if "kind" in overrides and overrides["kind"] not in SESSION_KINDS:
            raise SchemaError(
                "session step cannot change kind to %r" % overrides["kind"]
            )
        with self._session_lock(user, name):
            record = self.get(user, name)
            merged = dict(record.base)
            for key, value in overrides.items():
                if value is None:
                    merged.pop(key, None)
                else:
                    merged[key] = value
            request = dict(merged)
            if auth_token is not None:
                request["auth"] = auth_token
            outcome = self.dispatcher.dispatch_payload(request)
            response = outcome.response
            if hasattr(response, "result"):  # scheduler future
                response = response.result()
            if (
                isinstance(response, dict)
                and response.get("kind") != "error"
            ):
                record.base = merged
                record.steps.append({"overrides": dict(overrides)})
                record.updated_at = time.time()
                self.store.save(record)
            return response
