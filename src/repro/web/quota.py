"""Per-user token-bucket quotas with periodic reset.

This is the *tenant-level* admission control the multi-user front door
adds on top of the scheduler's *server-level* one: a shard queue filling
up rejects everyone (``Overloaded``, HTTP 503), while a quota bucket
running dry rejects exactly the user who drained it (``QuotaExceeded``,
HTTP 429) and nobody else — one analyst hammering refresh cannot starve
the rest of the fleet.

The model is a token bucket with *windowed* reset rather than
continuous drip refill: each user gets ``capacity`` tokens per
``window_seconds`` window, and the bucket snaps back to full at every
window boundary (``window_index = clock() // window_seconds``).
Windowed reset is what makes the behaviour testable and explainable —
"60 requests a minute, resets on the minute" — at the cost of allowing
up to ``2 x capacity`` requests straddling one boundary, which is the
standard trade.

Heavier kinds can be charged more than one token via ``costs`` (a
compute quota, not just a request-rate quota).  All state transitions
happen under one lock, so two requests racing the last token resolve
deterministically: exactly one wins, the other is rejected.

The clock is injectable (monotonic by default) so tests can cross reset
boundaries without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Mapping

from repro.common.errors import InvalidParameterError, QuotaExceeded


class QuotaService:
    """Windowed per-user token buckets; thread-safe.

    Parameters
    ----------
    capacity:
        Tokens per user per window.
    window_seconds:
        Window length; buckets refill to *capacity* at every boundary.
    costs:
        Optional per-kind token cost (default 1 for every kind) — e.g.
        ``{"summary": 4}`` makes one cold-ish summary count as four
        explores against the same budget.
    clock:
        Seconds-returning callable (tests inject a fake).
    """

    def __init__(
        self,
        capacity: int,
        window_seconds: float,
        *,
        costs: Mapping[str, int] | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                "quota capacity must be >= 1, got %d" % capacity
            )
        if window_seconds <= 0:
            raise InvalidParameterError(
                "quota window must be positive, got %g" % window_seconds
            )
        self.capacity = int(capacity)
        self.window_seconds = float(window_seconds)
        self._costs = dict(costs or {})
        self._clock = clock
        self._lock = threading.Lock()
        #: user -> [window_index, tokens_remaining]
        self._buckets: dict[str, list[float]] = {}
        self.granted = 0
        self.rejected = 0

    def cost(self, kind: str | None) -> int:
        return self._costs.get(kind or "", 1)

    def charge(self, user: str, kind: str | None = None) -> int:
        """Spend this kind's cost from *user*'s bucket.

        Returns the tokens remaining after the charge; raises
        :class:`QuotaExceeded` (leaving the bucket untouched) when the
        bucket holds fewer tokens than the cost.
        """
        cost = self.cost(kind)
        now = self._clock()
        window = int(now // self.window_seconds)
        with self._lock:
            bucket = self._buckets.get(user)
            if bucket is None or bucket[0] != window:
                bucket = [window, self.capacity]
                self._buckets[user] = bucket
            if bucket[1] < cost:
                self.rejected += 1
                # The "retry in Xs" clause is machine-readable: it is
                # the TCP transport's Retry-After (RetryingClient parses
                # it); the HTTP front door sends the real header too.
                raise QuotaExceeded(
                    "quota exhausted for user %r: %d tokens per %gs window "
                    "(request cost %d, %d left); retry in %.1fs"
                    % (user, self.capacity, self.window_seconds, cost,
                       int(bucket[1]),
                       self.window_seconds - (now % self.window_seconds))
                )
            bucket[1] -= cost
            self.granted += 1
            return int(bucket[1])

    def seconds_until_reset(self) -> float:
        """Time until the next window boundary (the Retry-After hint)."""
        return self.window_seconds - (self._clock() % self.window_seconds)

    def remaining(self, user: str) -> int:
        """Tokens left in *user*'s current window (capacity if unseen)."""
        window = int(self._clock() // self.window_seconds)
        with self._lock:
            bucket = self._buckets.get(user)
            if bucket is None or bucket[0] != window:
                return self.capacity
            return int(bucket[1])

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "window_seconds": self.window_seconds,
                "users": len(self._buckets),
                "granted": self.granted,
                "rejected": self.rejected,
            }


def parse_quota_spec(spec: str) -> tuple[int, float]:
    """Parse the CLI's ``CAPACITY/WINDOW_SECONDS`` quota syntax.

    >>> parse_quota_spec("60/60")
    (60, 60.0)
    >>> parse_quota_spec("100/1.5")
    (100, 1.5)
    """
    capacity_text, separator, window_text = spec.partition("/")
    try:
        if not separator:
            raise ValueError
        return int(capacity_text), float(window_text)
    except ValueError:
        raise InvalidParameterError(
            "--quota expects CAPACITY/WINDOW_SECONDS (e.g. 60/60), got %r"
            % spec
        ) from None
