"""The multi-tenant web tier: HTTP front door, auth, quotas, sessions.

Layering (top to bottom)::

    repro.web.http      routes: /healthz /metrics /v2/<kind> /v2/sessions
    repro.web.auth      bearer-token identity (constant-time, revocable)
    repro.web.quota     per-user windowed token buckets
    repro.web.sessions  durable named exploration sessions (atomic JSON)
    repro.service.serve the shared transport-agnostic Dispatcher
    repro.server.*      sharded scheduler, single-flight, metrics
    repro.service.*     engine, strict schema-v2 API

Everything is stdlib-only, and every HTTP request flows through the same
:class:`~repro.service.serve.Dispatcher` as stdio and TCP — the auth and
quota services plug into the dispatcher itself, so enforcement (and the
response bytes) are identical on every transport.
"""

from repro.web.auth import (
    ANONYMOUS_USER,
    AuthService,
    identify,
    parse_bearer,
    validate_name,
    write_token_file,
)
from repro.web.http import BackgroundWebServer, WebServer, status_for
from repro.web.quota import QuotaService, parse_quota_spec
from repro.web.sessions import SessionRecord, SessionService, SessionStore

__all__ = [
    "ANONYMOUS_USER",
    "AuthService",
    "BackgroundWebServer",
    "QuotaService",
    "SessionRecord",
    "SessionService",
    "SessionStore",
    "WebServer",
    "identify",
    "parse_bearer",
    "parse_quota_spec",
    "status_for",
    "validate_name",
    "write_token_file",
]
