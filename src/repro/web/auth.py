"""Token-based authentication for the serving tier.

The trust model is deliberately minimal — this is a front door, not an
identity provider: the operator ships a *token file* mapping bearer
tokens to user names, and every request proves its identity by carrying
one of those tokens (``Authorization: Bearer <token>`` over HTTP, an
``auth`` envelope field on the JSON wire).  What the layer guarantees:

* **constant-time comparison** — every candidate token in the table is
  checked with :func:`hmac.compare_digest`, and the loop never breaks
  early, so response timing does not reveal how much of a token matched
  or whether a user exists;
* **indistinguishable failures** — unknown tokens and revoked tokens
  produce the same :class:`~repro.common.errors.AuthError` message, so
  probing leaks nothing; only a *missing* token is called out
  separately (that one helps honest misconfigured clients);
* **runtime revocation** — :meth:`revoke_token` / :meth:`revoke_user`
  take effect on the next request, no restart.

Token file format (``repro-serve --auth-tokens FILE``): one
``user:token`` per line, ``#`` comments and blank lines ignored.  A
user may hold several tokens (one line each).
"""

from __future__ import annotations

import hmac
import re
import threading
from pathlib import Path
from typing import Iterable, Mapping

from repro.common.errors import AuthError, SchemaError

#: Users (and session names, which share the rule) must be short, flat
#: identifiers — they become file-system path components in the session
#: store, so no separators, no dot-prefixes, no empties.
NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: The identity used for quota/session bookkeeping when the server runs
#: without an auth table (single-tenant backward-compat mode).
ANONYMOUS_USER = "anonymous"


def validate_name(name: str, what: str = "name") -> str:
    """Reject identifiers that cannot safely become path components."""
    if not isinstance(name, str) or not NAME_PATTERN.match(name):
        raise SchemaError(
            "%s must match %s, got %r" % (what, NAME_PATTERN.pattern, name)
        )
    return name


class AuthService:
    """A bearer-token table with constant-time lookup and revocation."""

    def __init__(self, tokens: Mapping[str, str]) -> None:
        """*tokens* maps token -> user name."""
        self._lock = threading.Lock()
        self._tokens: dict[str, str] = {}
        for token, user in tokens.items():
            if not isinstance(token, str) or not token:
                raise SchemaError("auth tokens must be non-empty strings")
            self._tokens[token] = validate_name(user, "auth user")
        self.rejected = 0

    @classmethod
    def from_file(cls, path: str | Path) -> "AuthService":
        """Parse a ``user:token``-per-line token file."""
        tokens: dict[str, str] = {}
        for number, raw in enumerate(
            Path(path).read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            user, separator, token = line.partition(":")
            if not separator or not user.strip() or not token.strip():
                raise SchemaError(
                    "%s:%d: expected 'user:token', got %r"
                    % (path, number, raw)
                )
            tokens[token.strip()] = user.strip()
        if not tokens:
            raise SchemaError("token file %s defines no tokens" % path)
        return cls(tokens)

    def authenticate(self, token: object) -> str:
        """The user a token belongs to; :class:`AuthError` otherwise."""
        if token is None:
            self._count_rejection()
            raise AuthError(
                "missing auth token (send the 'auth' envelope field, or "
                "an Authorization: Bearer header over HTTP)"
            )
        if not isinstance(token, str):
            self._count_rejection()
            raise AuthError("auth token must be a string")
        encoded = token.encode("utf-8")
        matched: str | None = None
        with self._lock:
            # Compare against *every* entry, never breaking early, so the
            # timing of a rejection is independent of the table contents.
            for candidate, user in self._tokens.items():
                if hmac.compare_digest(candidate.encode("utf-8"), encoded):
                    matched = user
        if matched is None:
            self._count_rejection()
            raise AuthError("invalid or revoked auth token")
        return matched

    def _count_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    # -- revocation ----------------------------------------------------------

    def revoke_token(self, token: str) -> bool:
        """Drop one token; True if it existed."""
        with self._lock:
            return self._tokens.pop(token, None) is not None

    def revoke_user(self, user: str) -> int:
        """Drop every token of *user*; returns how many were dropped."""
        with self._lock:
            doomed = [
                token for token, owner in self._tokens.items()
                if owner == user
            ]
            for token in doomed:
                del self._tokens[token]
        return len(doomed)

    # -- introspection -------------------------------------------------------

    def users(self) -> list[str]:
        with self._lock:
            return sorted(set(self._tokens.values()))

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "users": sorted(set(self._tokens.values())),
                "tokens": len(self._tokens),
                "rejected": self.rejected,
            }


def identify(auth: AuthService | None, token: object) -> str:
    """The quota/session identity of a request.

    With an auth service, the authenticated user (raises
    :class:`AuthError` on failure).  Without one — the open,
    backward-compatible mode — every caller is :data:`ANONYMOUS_USER`
    and any stray token is ignored.
    """
    if auth is None:
        return ANONYMOUS_USER
    return auth.authenticate(token)


def parse_bearer(header: object) -> str | None:
    """Extract the token from an ``Authorization: Bearer ...`` header."""
    if not isinstance(header, str):
        return None
    scheme, _, token = header.partition(" ")
    if scheme.lower() != "bearer" or not token.strip():
        return None
    return token.strip()


def write_token_file(
    path: str | Path, entries: Iterable[tuple[str, str]]
) -> Path:
    """Write a ``user:token`` file (test/bench/CI helper)."""
    path = Path(path)
    lines = ["# repro auth tokens — user:token per line"]
    lines += ["%s:%s" % (user, token) for user, token in entries]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path
