"""repro — reproduction of "Interactive Summarization and Exploration of
Top Aggregate Query Answers" (Wen, Zhu, Roy, Yang; VLDB 2018).

The package summarizes the high-valued answers of an aggregate query as at
most ``k`` clusters (patterns with don't-care ``*`` values) that cover the
top-``L`` original answers and are pairwise at distance >= ``D``, maximizing
the average value of everything the clusters cover (Max-Avg).

Quickstart (service API)::

    from repro import AnswerSet, Engine, SummaryRequest

    engine = Engine()
    engine.register_dataset(
        "answers", AnswerSet.from_rows(rows, values, attributes=names))
    response = engine.submit(
        SummaryRequest(dataset="answers", k=4, L=8, D=2))
    print(response.objective, response.cache_hit)

The engine caches initialization per (dataset, L), so resubmitting with
tweaked parameters is answered at interactive speed — the paper's Section 6
serving model.  Every request/response round-trips through JSON
(``to_dict``/``from_dict``), which is also what ``repro-summarize --json``
and ``repro-serve`` emit.  The older one-call :func:`repro.summarize` still
works but is deprecated in favour of the engine.

Subpackages
-----------
``repro.core``
    Pattern algebra, problem model, the pluggable algorithm registry,
    greedy + exact algorithms (Sections 3-5).
``repro.service``
    Typed request/response wire format, the shared cached engine, and the
    JSON-lines serving loop behind ``repro-serve``.
``repro.server``
    The concurrent TCP serving tier: sharded worker pools, single-flight
    coalescing of identical in-flight requests, bounded-queue admission
    control, and latency/coalesce metrics (``repro-serve --tcp``).
``repro.interactive``
    Incremental precomputation, interval-tree solution store, parameter
    guidance view, exploration sessions (Section 6).
``repro.viz``
    Successive-solution comparison layout optimization (Appendix A.7).
``repro.query``
    In-memory relational substrate and restricted SQL parser.
``repro.datasets``
    Synthetic MovieLens-like and TPC-DS-like generators (Section 7).
``repro.baselines``
    Smart drill-down, diversified top-k, DisC, MMR, decision tree, k-modes.
``repro.hierarchy``
    Concept-hierarchy / range-value extension (Appendix A.6).
``repro.userstudy``
    Simulated user-study harness regenerating Table 1 / Table 2 (Section 8).
"""

from repro.core import (
    ALGORITHMS,
    AlgorithmInfo,
    AnswerSet,
    Cluster,
    ClusterPool,
    ProblemInstance,
    Solution,
    algorithm_infos,
    algorithm_names,
    check_feasibility,
    get_algorithm,
    is_feasible,
    register_algorithm,
    summarize,
)
from repro.service import (
    Engine,
    ExploreRequest,
    GuidanceRequest,
    SummaryRequest,
    SummaryResponse,
)

__version__ = "1.1.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "AnswerSet",
    "Cluster",
    "ClusterPool",
    "Engine",
    "ExploreRequest",
    "GuidanceRequest",
    "ProblemInstance",
    "Solution",
    "SummaryRequest",
    "SummaryResponse",
    "algorithm_infos",
    "algorithm_names",
    "check_feasibility",
    "get_algorithm",
    "is_feasible",
    "register_algorithm",
    "summarize",
    "__version__",
]
