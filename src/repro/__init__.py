"""repro — reproduction of "Interactive Summarization and Exploration of
Top Aggregate Query Answers" (Wen, Zhu, Roy, Yang; VLDB 2018).

The package summarizes the high-valued answers of an aggregate query as at
most ``k`` clusters (patterns with don't-care ``*`` values) that cover the
top-``L`` original answers and are pairwise at distance >= ``D``, maximizing
the average value of everything the clusters cover (Max-Avg).

Quickstart::

    from repro import AnswerSet, summarize

    answers = AnswerSet.from_rows(rows, values, attributes=names)
    solution = summarize(answers, k=4, L=8, D=2)
    print(solution.describe(answers))

Subpackages
-----------
``repro.core``
    Pattern algebra, problem model, greedy + exact algorithms (Sections 3-5).
``repro.interactive``
    Incremental precomputation, interval-tree solution store, parameter
    guidance view, exploration sessions (Section 6).
``repro.viz``
    Successive-solution comparison layout optimization (Appendix A.7).
``repro.query``
    In-memory relational substrate and restricted SQL parser.
``repro.datasets``
    Synthetic MovieLens-like and TPC-DS-like generators (Section 7).
``repro.baselines``
    Smart drill-down, diversified top-k, DisC, MMR, decision tree, k-modes.
``repro.hierarchy``
    Concept-hierarchy / range-value extension (Appendix A.6).
``repro.userstudy``
    Simulated user-study harness regenerating Table 1 / Table 2 (Section 8).
"""

from repro.core import (
    ALGORITHMS,
    AnswerSet,
    Cluster,
    ClusterPool,
    ProblemInstance,
    Solution,
    check_feasibility,
    is_feasible,
    summarize,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AnswerSet",
    "Cluster",
    "ClusterPool",
    "ProblemInstance",
    "Solution",
    "check_feasibility",
    "is_feasible",
    "summarize",
    "__version__",
]
