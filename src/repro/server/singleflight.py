"""Single-flight coalescing: identical in-flight requests share one run.

Interactive summarization traffic is duplicate-heavy — many analysts
poking the same (dataset, k, L, D) corner at once — and the engine's
caches only deduplicate the *initialization* (pools, stores), not the
per-request algorithm run.  :class:`SingleFlight` closes that gap at the
request level: the first arrival of a canonical key becomes the *leader*
and actually computes; every identical request that arrives while the
leader is in flight becomes a *follower* that waits on the leader's
future and receives the same response object, fanned out on completion.

The canonical key mirrors the engine's cache-key philosophy — anything
that could change the response bytes is part of the identity:

>>> request_key({"kind": "summary", "dataset": "d", "k": 2})
'{"dataset":"d","k":2,"kind":"summary"}'
>>> request_key({"k": 2, "dataset": "d", "kind": "summary"})
'{"dataset":"d","k":2,"kind":"summary"}'
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import Future
from typing import Any


def request_key(payload: dict[str, Any]) -> str:
    """Canonical identity of a request payload.

    Whitespace-free JSON with sorted keys: two payloads that parse equal
    get the same key regardless of key order or formatting on the wire.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


class SingleFlight:
    """Thread-safe map from in-flight keys to shared result futures.

    Protocol: ``begin(key)`` returns ``(future, is_leader)``; exactly one
    caller per key is the leader while the key is in flight.  The leader
    computes and calls ``finish(key, future, result)``, which removes the
    key *before* resolving the future — a request arriving after that
    starts a fresh flight (responses are never served stale; only
    genuinely concurrent duplicates coalesce).
    """

    def __init__(self) -> None:
        self._lock = threading.Condition(threading.Lock())
        self._inflight: dict[str, Future] = {}
        self.leaders = 0
        self.coalesced = 0

    def begin(self, key: str) -> tuple[Future, bool]:
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.coalesced += 1
                self._lock.notify_all()
                return future, False
            future = Future()
            self._inflight[key] = future
            self.leaders += 1
            self._lock.notify_all()
            return future, True

    def wait_coalesced(self, minimum: int, timeout: float = 10.0) -> bool:
        """Event-driven gate: block until at least *minimum* duplicates
        have coalesced onto in-flight leaders.

        Tests and orchestration use this instead of sleep-polling
        :meth:`stats` — the counter's own condition variable wakes the
        waiter the moment the threshold is crossed.  Returns ``False``
        on timeout.
        """
        with self._lock:
            return self._lock.wait_for(
                lambda: self.coalesced >= minimum, timeout
            )

    def finish(self, key: str, future: Future, result: Any) -> None:
        """Resolve the leader's future and retire the key."""
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]
        future.set_result(result)

    def in_flight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            total = self.leaders + self.coalesced
            return {
                "leaders": self.leaders,
                "coalesced": self.coalesced,
                "in_flight": len(self._inflight),
                "hit_rate": self.coalesced / total if total else 0.0,
            }
