"""Server subsystem: the concurrent TCP serving tier over the engine.

The paper's system is interactive and multi-user — many analysts issuing
summarize/explore requests against shared precomputed state.  This
package is that serving tier, layered strictly on top of
:mod:`repro.service` (which stays transport-free):

``repro.server.tcp``
    :class:`TCPServer`: asyncio transport speaking the schema-v2
    JSON-lines wire protocol to many concurrent clients, plus
    :class:`BackgroundServer` for running it from synchronous code.
``repro.server.scheduler``
    :class:`ShardedScheduler`: per-dataset shard worker pools with
    bounded queues and ``Overloaded`` admission control.
``repro.server.singleflight``
    :class:`SingleFlight` + :func:`request_key`: identical in-flight
    requests share one computation, fanned out to all waiters.
``repro.server.metrics``
    :class:`ServerMetrics` / :class:`LatencyHistogram`: queue depths,
    coalesce hit rate, per-kind latency quantiles — exposed through the
    ``stats`` admin kind.
``repro.server.client``
    :class:`LineClient`: a minimal synchronous client for tests and the
    load harness; :class:`RetryingClient`: the resilient wrapper with
    jittered exponential backoff, reconnects, and an attempt budget.

Quickstart::

    from repro.server import BackgroundServer, LineClient, TCPServer

    with BackgroundServer(TCPServer(engine)) as handle:
        with LineClient(handle.host, handle.port) as client:
            print(client.request({"kind": "ping"}))
"""

from repro.common.errors import Overloaded, TransportError
from repro.server.client import LineClient, RetryingClient
from repro.server.metrics import LatencyHistogram, ServerMetrics
from repro.server.scheduler import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SHARDS,
    DEFAULT_WORKERS_PER_SHARD,
    ShardedScheduler,
)
from repro.server.singleflight import SingleFlight, request_key
from repro.server.tcp import BackgroundServer, TCPServer

__all__ = [
    "BackgroundServer",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_SHARDS",
    "DEFAULT_WORKERS_PER_SHARD",
    "LatencyHistogram",
    "LineClient",
    "Overloaded",
    "RetryingClient",
    "ServerMetrics",
    "ShardedScheduler",
    "SingleFlight",
    "TCPServer",
    "TransportError",
    "request_key",
]
