"""Sharded worker pools with bounded queues and admission control.

One heavy ``summary`` must not starve every other dataset: requests are
routed to a *shard* chosen by a stable hash of their ``dataset`` field,
and each shard owns its own worker threads and its own bounded queue.
A flood against one dataset fills one shard's queue (new arrivals get
``kind="error", error_type="Overloaded"`` immediately — load shedding,
not unbounded buffering) while the other shards keep serving.

Single-flight coalescing sits *in front* of the queues: followers of an
in-flight identical request share the leader's future without consuming
a queue slot, so duplicate-heavy traffic costs one computation and one
slot per distinct request (see :mod:`repro.server.singleflight`).

Workers are threads because the kernels are CPU-bound pure Python — the
GIL serializes compute, so throughput comes from coalescing and from
never blocking the transport, while sharding buys isolation/fairness,
not parallel CPU.  The executor is deliberately pluggable-shaped (one
``submit -> Future`` seam) so a process pool can slot in later.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from concurrent.futures import Future
from typing import Any, Callable

from repro.common.errors import Overloaded
from repro.service.api import ErrorResponse
from repro.server.singleflight import SingleFlight, request_key

_STOP = object()

#: Defaults for the TCP server and CLI.
DEFAULT_SHARDS = 4
DEFAULT_WORKERS_PER_SHARD = 1
DEFAULT_QUEUE_DEPTH = 64


def _error_dict(error: Exception) -> dict[str, Any]:
    return ErrorResponse(
        error_type=type(error).__name__, message=str(error)
    ).to_dict()


class _Shard:
    __slots__ = ("index", "queue", "threads", "served")

    def __init__(self, index: int, depth: int) -> None:
        self.index = index
        self.queue: queue.Queue = queue.Queue(maxsize=depth)
        self.threads: list[threading.Thread] = []
        self.served = 0


class ShardedScheduler:
    """Route request payloads to per-dataset shard queues; return futures.

    Parameters
    ----------
    submit:
        The computation for one payload — normally
        :meth:`repro.service.engine.Engine.submit_dict`.  It runs on a
        shard worker thread; exceptions become ``kind="error"`` payloads.
    shards / workers_per_shard / queue_depth:
        Pool shape.  ``queue_depth`` bounds *waiting* requests per shard;
        in-service requests hold no slot.
    coalesce:
        Disable to measure the no-single-flight baseline (every request,
        duplicate or not, takes a queue slot and a computation).
    """

    def __init__(
        self,
        submit: Callable[[dict[str, Any]], dict[str, Any]],
        *,
        shards: int = DEFAULT_SHARDS,
        workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        coalesce: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        if workers_per_shard < 1:
            raise ValueError(
                "workers_per_shard must be >= 1, got %d" % workers_per_shard
            )
        if queue_depth < 1:
            raise ValueError(
                "queue_depth must be >= 1, got %d" % queue_depth
            )
        self._submit = submit
        self.coalesce = bool(coalesce)
        self.flight = SingleFlight()
        self._shards = [_Shard(i, queue_depth) for i in range(shards)]
        self._overloaded = 0
        self._inflight = 0  # accepted (queued or in-service) leaders
        self._idle = threading.Condition(threading.Lock())
        self._stats_lock = threading.Lock()
        self._stopped = False
        for shard in self._shards:
            for worker in range(workers_per_shard):
                thread = threading.Thread(
                    target=self._worker,
                    args=(shard,),
                    name="repro-shard-%d-%d" % (shard.index, worker),
                    daemon=True,
                )
                shard.threads.append(thread)
                thread.start()

    # -- routing -------------------------------------------------------------

    def shard_index(self, payload: dict[str, Any]) -> int:
        """Stable dataset->shard routing (crc32, not the salted ``hash``)."""
        dataset = payload.get("dataset")
        if not isinstance(dataset, str):
            return 0
        return zlib.crc32(dataset.encode("utf-8")) % len(self._shards)

    # -- submission ----------------------------------------------------------

    def submit(self, payload: dict[str, Any]) -> Future:
        """Enqueue one payload; always returns a future of a response dict.

        Identical in-flight requests share one future (unless coalescing
        is off); a full shard queue resolves the future immediately with
        an ``Overloaded`` error payload.
        """
        if not self.coalesce:
            future: Future = Future()
            self._enqueue(None, payload, future)
            return future
        key = request_key(payload)
        future, is_leader = self.flight.begin(key)
        if is_leader:
            self._enqueue(key, payload, future)
        return future

    def _enqueue(
        self, key: str | None, payload: dict[str, Any], future: Future
    ) -> None:
        shard = self._shards[self.shard_index(payload)]
        with self._idle:
            self._inflight += 1
        try:
            shard.queue.put_nowait((key, payload, future))
        except queue.Full:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()
            with self._stats_lock:
                self._overloaded += 1
            self._resolve(key, future, _error_dict(Overloaded(
                "shard %d queue full (depth %d); retry later"
                % (shard.index, shard.queue.maxsize)
            )))

    def _resolve(
        self, key: str | None, future: Future, response: dict[str, Any]
    ) -> None:
        if key is not None:
            # Retires the key before resolving, so followers that joined
            # while we computed get this response and later arrivals
            # start a fresh flight.
            self.flight.finish(key, future, response)
        else:
            future.set_result(response)

    # -- workers -------------------------------------------------------------

    def _worker(self, shard: _Shard) -> None:
        while True:
            item = shard.queue.get()
            if item is _STOP:
                return
            key, payload, future = item
            try:
                response = self._submit(payload)
            except Exception as error:  # submit_dict shouldn't raise; belt
                response = _error_dict(error)  # and suspenders for workers
            with self._stats_lock:
                shard.served += 1
            self._resolve(key, future, response)
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()

    # -- lifecycle / introspection -------------------------------------------

    def drain(self, timeout: float | None = 5.0) -> bool:
        """Wait (bounded) until every accepted request has resolved.

        This is the graceful half of server shutdown: requests already
        admitted to a shard queue — whose clients are blocked on their
        futures — get served before the transport tears connections
        down, instead of being abandoned mid-flight.  Returns ``True``
        when the queues went idle within *timeout*, ``False`` when the
        deadline passed with work still in flight (the caller proceeds
        with shutdown either way; the bound is the point).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def stop(self, timeout: float | None = 10.0) -> None:
        """Drain queued work, then stop every worker thread.

        Honors *timeout* end to end: enqueuing the stop sentinels uses
        non-blocking puts with a deadline (a wedged worker behind a full
        queue must not hang shutdown forever — the workers are daemon
        threads, so giving up on them cannot block process exit).
        """
        if self._stopped:
            return
        self._stopped = True
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self._shards:
            for _ in shard.threads:
                while True:
                    try:
                        shard.queue.put_nowait(_STOP)
                        break
                    except queue.Full:
                        if (deadline is not None
                                and time.monotonic() >= deadline):
                            break
                        time.sleep(0.005)
        for shard in self._shards:
            for thread in shard.threads:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                thread.join(remaining)

    def queue_depths(self) -> list[int]:
        return [shard.queue.qsize() for shard in self._shards]

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            overloaded = self._overloaded
            served = [shard.served for shard in self._shards]
        with self._idle:
            inflight = self._inflight
        return {
            "inflight": inflight,
            "shards": len(self._shards),
            "workers_per_shard": len(self._shards[0].threads),
            "queue_depth": self._shards[0].queue.maxsize,
            "queue_depths": self.queue_depths(),
            "served_per_shard": served,
            "overloaded": overloaded,
            "coalesce_enabled": self.coalesce,
            "singleflight": self.flight.stats(),
        }
