"""Sharded worker pools with bounded queues and admission control.

One heavy ``summary`` must not starve every other dataset: requests are
routed to a *shard* chosen by a stable hash of their ``dataset`` field,
and each shard owns its own worker threads and its own bounded queue.
A flood against one dataset fills one shard's queue (new arrivals get
``kind="error", error_type="Overloaded"`` immediately — load shedding,
not unbounded buffering) while the other shards keep serving.

Single-flight coalescing sits *in front* of the queues: followers of an
in-flight identical request share the leader's future without consuming
a queue slot, so duplicate-heavy traffic costs one computation and one
slot per distinct request (see :mod:`repro.server.singleflight`).
Requests carrying a :class:`~repro.common.budget.Budget` bypass
coalescing: a short-deadline leader must not poison deadline-free
followers with *its* ``DeadlineExceeded``, so deadlined requests are
always their own flight.

Workers are threads because the kernels are CPU-bound pure Python — the
GIL serializes compute, so throughput comes from coalescing and from
never blocking the transport, while sharding buys isolation/fairness,
not parallel CPU.  The executor is deliberately pluggable-shaped (one
``submit -> Future`` seam) so a process pool can slot in later.

Resilience (PR 7):

* a request whose budget expired while queued is shed at dequeue — it
  never touches compute (``deadline_shed``); one that expires *during*
  compute is abandoned at the next kernel checkpoint
  (``deadline_exceeded``);
* workers that die on an unhandled non-``Exception`` (a real crash, or
  the fault injector's :class:`~repro.common.faults.FaultCrash`) are
  restarted by the supervisor with exponential backoff
  (``worker_restarts``); the in-hand request is retried once, and a
  request that *repeatedly* kills workers is quarantined and answered
  with ``PoisonedRequest`` instead of being retried forever;
* ``stop()`` counts wedged workers that outlived the shutdown deadline
  (``workers_leaked``) and logs a warning instead of silently leaking
  them.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable

from repro.common.budget import Budget, budget_scope
from repro.common.errors import DeadlineExceeded, Overloaded, PoisonedRequest
from repro.common.faults import fault_point
from repro.obs.tracing import RequestTrace, span, trace_scope
from repro.service.api import ErrorResponse
from repro.server.singleflight import SingleFlight, request_key

logger = logging.getLogger(__name__)

_STOP = object()

#: Defaults for the TCP server and CLI.
DEFAULT_SHARDS = 4
DEFAULT_WORKERS_PER_SHARD = 1
DEFAULT_QUEUE_DEPTH = 64

#: A request whose worker dies this many times is quarantined.
DEFAULT_QUARANTINE_AFTER = 2
#: Bound on remembered poisoned fingerprints (oldest evicted first).
QUARANTINE_CAPACITY = 128
#: Supervisor restart backoff: base * 2^(deaths-1), capped.
RESTART_BACKOFF_BASE = 0.01
RESTART_BACKOFF_MAX = 1.0


def _error_dict(error: Exception) -> dict[str, Any]:
    return ErrorResponse(
        error_type=type(error).__name__, message=str(error)
    ).to_dict()


class _Shard:
    __slots__ = ("index", "queue", "threads", "served", "deaths")

    def __init__(self, index: int, depth: int) -> None:
        self.index = index
        self.queue: queue.Queue = queue.Queue(maxsize=depth)
        self.threads: list[threading.Thread] = []
        self.served = 0
        self.deaths = 0


class ShardedScheduler:
    """Route request payloads to per-dataset shard queues; return futures.

    Parameters
    ----------
    submit:
        The computation for one payload — normally
        :meth:`repro.service.engine.Engine.submit_dict`.  It runs on a
        shard worker thread; exceptions become ``kind="error"`` payloads.
    shards / workers_per_shard / queue_depth:
        Pool shape.  ``queue_depth`` bounds *waiting* requests per shard;
        in-service requests hold no slot.
    coalesce:
        Disable to measure the no-single-flight baseline (every request,
        duplicate or not, takes a queue slot and a computation).
    quarantine_after:
        Worker deaths the same request may cause before it is
        quarantined and answered with ``PoisonedRequest``.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; supervision events
        (worker restarts, quarantines) become structured lifecycle log
        records when it carries a logger.  Request *traces* arrive via
        :meth:`submit`'s ``trace`` argument, not through this.
    """

    def __init__(
        self,
        submit: Callable[..., dict[str, Any]],
        *,
        shards: int = DEFAULT_SHARDS,
        workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        coalesce: bool = True,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        telemetry=None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1, got %d" % shards)
        if workers_per_shard < 1:
            raise ValueError(
                "workers_per_shard must be >= 1, got %d" % workers_per_shard
            )
        if queue_depth < 1:
            raise ValueError(
                "queue_depth must be >= 1, got %d" % queue_depth
            )
        if quarantine_after < 1:
            raise ValueError(
                "quarantine_after must be >= 1, got %d" % quarantine_after
            )
        self._submit = submit
        self.coalesce = bool(coalesce)
        self.quarantine_after = quarantine_after
        self.telemetry = telemetry
        self.flight = SingleFlight()
        #: flight key -> the leader's trace_id, for follower linkage.
        self._flight_traces: dict[str, str] = {}
        self._shards = [_Shard(i, queue_depth) for i in range(shards)]
        self._workers_per_shard = workers_per_shard
        self._overloaded = 0
        self._inflight = 0  # accepted (queued or in-service) leaders
        self._idle = threading.Condition(threading.Lock())
        # A condition (not a bare lock) so supervision events — worker
        # restarts, crash retries, quarantines — can be *waited on*
        # instead of sleep-polled (see wait_stat).
        self._stats_lock = threading.Condition(threading.Lock())
        self._stopped = False
        self._worker_restarts = 0
        self._workers_leaked = 0
        self._deadline_shed = 0
        self._deadline_exceeded = 0
        self._poisoned = 0
        self._crash_retries = 0
        #: fingerprint -> worker deaths caused by its current attempt run.
        self._crash_counts: dict[str, int] = {}
        #: fingerprints answered with PoisonedRequest from now on (bounded).
        self._quarantine: OrderedDict[str, int] = OrderedDict()
        self._worker_serial = 0
        for shard in self._shards:
            for _ in range(workers_per_shard):
                self._spawn_worker(shard)

    def _spawn_worker(self, shard: _Shard, delay: float = 0.0) -> None:
        """Start one worker thread for *shard* (optionally after backoff).

        Callers hold no lock; the serial counter keeps thread names
        unique across restarts.
        """
        with self._stats_lock:
            serial = self._worker_serial
            self._worker_serial += 1
        thread = threading.Thread(
            target=self._worker,
            args=(shard, delay),
            name="repro-shard-%d-w%d" % (shard.index, serial),
            daemon=True,
        )
        with self._stats_lock:
            shard.threads.append(thread)
        thread.start()

    # -- routing -------------------------------------------------------------

    def shard_index(self, payload: dict[str, Any]) -> int:
        """Stable dataset->shard routing (crc32, not the salted ``hash``)."""
        dataset = payload.get("dataset")
        if not isinstance(dataset, str):
            return 0
        return zlib.crc32(dataset.encode("utf-8")) % len(self._shards)

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        payload: dict[str, Any],
        budget: Budget | None = None,
        trace: RequestTrace | None = None,
    ) -> Future:
        """Enqueue one payload; always returns a future of a response dict.

        Identical in-flight requests share one future (unless coalescing
        is off, or the request carries a *budget* — deadlined requests
        never coalesce, see the module docstring); a full shard queue
        resolves the future immediately with an ``Overloaded`` error
        payload, and a quarantined request resolves immediately with
        ``PoisonedRequest`` without consuming a slot.

        *trace* (optional) rides with the request: the dequeuing worker
        records a ``scheduler.queue`` span for its queue wait and a
        ``scheduler.worker`` span around compute, coalesced followers
        are annotated with their leader's trace_id, and shed/quarantine
        outcomes are annotated instead of silently absorbed.
        """
        if self._quarantine:
            fingerprint = request_key(payload)
            with self._stats_lock:
                quarantined = fingerprint in self._quarantine
                if quarantined:
                    self._poisoned += 1
            if quarantined:
                if trace is not None:
                    trace.annotate("poisoned", True)
                future: Future = Future()
                future.set_result(_error_dict(PoisonedRequest(
                    "request quarantined: it repeatedly crashed workers"
                )))
                return future
        if budget is not None and budget.expired():
            # Dead on arrival: shed without consuming a queue slot.
            with self._stats_lock:
                self._deadline_shed += 1
            if trace is not None:
                trace.annotate("deadline_shed", "pre-queue")
            future = Future()
            future.set_result(_error_dict(DeadlineExceeded(
                "deadline expired before the request was queued"
            )))
            return future
        if not self.coalesce or budget is not None:
            future = Future()
            self._enqueue(None, payload, future, budget, trace)
            return future
        key = request_key(payload)
        future, is_leader = self.flight.begin(key)
        if is_leader:
            if trace is not None:
                with self._stats_lock:
                    self._flight_traces[key] = trace.trace_id
            self._enqueue(key, payload, future, None, trace)
        elif trace is not None:
            # Follower: no queue slot, no compute — link it to the
            # leader whose result it will share.
            trace.annotate("coalesced", True)
            with self._stats_lock:
                leader_id = self._flight_traces.get(key)
            if leader_id is not None:
                trace.annotate("leader_trace_id", leader_id)
        return future

    def _enqueue(
        self,
        key: str | None,
        payload: dict[str, Any],
        future: Future,
        budget: Budget | None,
        trace: RequestTrace | None = None,
    ) -> None:
        shard = self._shards[self.shard_index(payload)]
        with self._idle:
            self._inflight += 1
        try:
            shard.queue.put_nowait(
                (key, payload, future, budget, trace, time.perf_counter())
            )
        except queue.Full:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()
            with self._stats_lock:
                self._overloaded += 1
            if trace is not None:
                trace.annotate("overloaded", shard.index)
            self._resolve(key, future, _error_dict(Overloaded(
                "shard %d queue full (depth %d); retry later"
                % (shard.index, shard.queue.maxsize)
            )))

    def _resolve(
        self, key: str | None, future: Future, response: dict[str, Any]
    ) -> None:
        if key is not None:
            if self._flight_traces:
                with self._stats_lock:
                    self._flight_traces.pop(key, None)
            # Retires the key before resolving, so followers that joined
            # while we computed get this response and later arrivals
            # start a fresh flight.
            self.flight.finish(key, future, response)
        else:
            future.set_result(response)

    # -- workers -------------------------------------------------------------

    def _worker(self, shard: _Shard, delay: float = 0.0) -> None:
        """Thread target: the serve loop wrapped in crash supervision."""
        if delay > 0.0:
            time.sleep(delay)
        try:
            self._worker_loop(shard)
        except BaseException:
            # A request escaped every error belt and killed this worker
            # (the in-hand request was already retried or quarantined by
            # _handle_crash).  Log, then hand the shard a replacement.
            logger.warning(
                "shard %d worker %s died; restarting",
                shard.index, threading.current_thread().name,
                exc_info=True,
            )
            self._restart_worker(shard)

    def _worker_loop(self, shard: _Shard) -> None:
        while True:
            item = shard.queue.get()
            if item is _STOP:
                return
            key, payload, future, budget, trace, enqueued_at = item
            if budget is not None and budget.expired():
                # Expired while queued: shed without touching compute.
                with self._stats_lock:
                    self._deadline_shed += 1
                if trace is not None:
                    trace.annotate("deadline_shed", "queued")
                self._finish(key, future, _error_dict(DeadlineExceeded(
                    "deadline expired while the request was queued"
                )))
                continue
            if trace is not None:
                # The queue-wait half of the queue/compute split: started
                # at enqueue on the transport thread, ends here at
                # dequeue — recorded from explicit instants because the
                # two ends live on different threads.
                trace.add_span(
                    "scheduler.queue", enqueued_at, time.perf_counter(),
                    shard=shard.index,
                )
            try:
                with trace_scope(trace):
                    with span(
                        "scheduler.worker", shard=shard.index,
                        worker=threading.current_thread().name,
                    ):
                        fault_point("scheduler.worker")
                        with budget_scope(budget):
                            response = self._submit(payload)
            except Exception as error:  # submit_dict shouldn't raise; belt
                response = _error_dict(error)  # and suspenders for workers
            except BaseException:
                # Worker death (FaultCrash or a genuine non-Exception).
                # Settle the in-hand request, then let the crash escape
                # to the supervision wrapper.
                self._handle_crash(
                    shard, key, payload, future, budget, trace
                )
                raise
            # A clean completion retires any earlier crash strikes:
            # only *consecutive* worker kills quarantine a request.
            # (Fingerprinting costs a canonical JSON dump, so skip it
            # unless some request actually has strikes outstanding.)
            fingerprint = None
            if self._crash_counts:
                fingerprint = (
                    key if key is not None else request_key(payload)
                )
            with self._stats_lock:
                shard.served += 1
                if fingerprint is not None:
                    self._crash_counts.pop(fingerprint, None)
                if response.get("error_type") == "DeadlineExceeded":
                    self._deadline_exceeded += 1
            self._finish(key, future, response)

    def _finish(
        self, key: str | None, future: Future, response: dict[str, Any]
    ) -> None:
        self._resolve(key, future, response)
        with self._idle:
            self._inflight -= 1
            self._idle.notify_all()

    def _handle_crash(
        self,
        shard: _Shard,
        key: str | None,
        payload: dict[str, Any],
        future: Future,
        budget: Budget | None,
        trace: RequestTrace | None = None,
    ) -> None:
        """The dying worker settles its in-hand request: retry once per
        allowed strike, quarantine past the threshold."""
        fingerprint = key if key is not None else request_key(payload)
        with self._stats_lock:
            strikes = self._crash_counts.get(fingerprint, 0) + 1
            self._crash_counts[fingerprint] = strikes
            poison = strikes >= self.quarantine_after
            if poison:
                self._crash_counts.pop(fingerprint, None)
                self._quarantine[fingerprint] = strikes
                while len(self._quarantine) > QUARANTINE_CAPACITY:
                    self._quarantine.popitem(last=False)
                self._poisoned += 1
                self._stats_lock.notify_all()
        if poison:
            logger.warning(
                "request crashed %d workers; quarantined (fingerprint %s)",
                strikes, fingerprint[:64],
            )
            if trace is not None:
                trace.annotate("quarantined", strikes)
            if self.telemetry is not None:
                self.telemetry.event(
                    "quarantine",
                    shard=shard.index,
                    strikes=strikes,
                    fingerprint=fingerprint[:64],
                )
            self._finish(key, future, _error_dict(PoisonedRequest(
                "request crashed %d workers and was quarantined" % strikes
            )))
            return
        if trace is not None:
            trace.annotate("crash_retries", strikes)
        try:
            shard.queue.put_nowait(
                (key, payload, future, budget, trace, time.perf_counter())
            )
            with self._stats_lock:
                self._crash_retries += 1
                self._stats_lock.notify_all()
        except queue.Full:
            with self._stats_lock:
                self._overloaded += 1
            self._finish(key, future, _error_dict(Overloaded(
                "shard %d queue full while retrying a crashed request"
                % shard.index
            )))

    def _restart_worker(self, shard: _Shard) -> None:
        current = threading.current_thread()
        with self._stats_lock:
            self._worker_restarts += 1
            shard.deaths += 1
            deaths = shard.deaths
            if current in shard.threads:
                shard.threads.remove(current)
            stopped = self._stopped
            self._stats_lock.notify_all()
        if stopped:
            return
        delay = min(
            RESTART_BACKOFF_BASE * (2 ** (deaths - 1)), RESTART_BACKOFF_MAX
        )
        if self.telemetry is not None:
            self.telemetry.event(
                "worker_restart",
                shard=shard.index,
                deaths=deaths,
                backoff_seconds=delay,
                worker=current.name,
            )
        self._spawn_worker(shard, delay=delay)

    #: Supervision counters that wait_stat can gate on.
    _WAITABLE_STATS = {
        "worker_restarts": "_worker_restarts",
        "crash_retries": "_crash_retries",
        "poisoned": "_poisoned",
    }

    def wait_stat(
        self, name: str, minimum: int = 1, timeout: float = 10.0
    ) -> bool:
        """Event-driven gate: block until ``stats()[name] >= minimum``.

        Supervision events (worker restarts, crash retries, quarantines)
        happen on worker threads at their own pace; tests and
        orchestration wait on the counter's condition variable instead
        of sleep-polling :meth:`stats`.  Returns ``False`` on timeout.
        """
        try:
            attr = self._WAITABLE_STATS[name]
        except KeyError:
            raise ValueError(
                "wait_stat supports %s, got %r"
                % (sorted(self._WAITABLE_STATS), name)
            ) from None
        with self._stats_lock:
            return self._stats_lock.wait_for(
                lambda: getattr(self, attr) >= minimum, timeout
            )

    # -- lifecycle / introspection -------------------------------------------

    def drain(self, timeout: float | None = 5.0) -> bool:
        """Wait (bounded) until every accepted request has resolved.

        This is the graceful half of server shutdown: requests already
        admitted to a shard queue — whose clients are blocked on their
        futures — get served before the transport tears connections
        down, instead of being abandoned mid-flight.  Returns ``True``
        when the queues went idle within *timeout*, ``False`` when the
        deadline passed with work still in flight (the caller proceeds
        with shutdown either way; the bound is the point).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def stop(self, timeout: float | None = 10.0) -> None:
        """Drain queued work, then stop every worker thread.

        Honors *timeout* end to end: enqueuing the stop sentinels uses
        non-blocking puts with a deadline (a wedged worker behind a full
        queue must not hang shutdown forever — the workers are daemon
        threads, so giving up on them cannot block process exit).
        Workers still alive past the deadline are *counted* (the
        ``workers_leaked`` stat) and logged, not silently abandoned.
        """
        if self._stopped:
            return
        self._stopped = True
        deadline = None if timeout is None else time.monotonic() + timeout
        for shard in self._shards:
            for _ in shard.threads:
                while True:
                    try:
                        shard.queue.put_nowait(_STOP)
                        break
                    except queue.Full:
                        if (deadline is not None
                                and time.monotonic() >= deadline):
                            break
                        time.sleep(0.005)
        for shard in self._shards:
            for thread in shard.threads:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                thread.join(remaining)
        leaked = [
            thread
            for shard in self._shards
            for thread in shard.threads
            if thread.is_alive()
        ]
        with self._stats_lock:
            self._workers_leaked = len(leaked)
        if leaked:
            logger.warning(
                "scheduler stop(): %d worker thread(s) still wedged past "
                "the %s deadline: %s",
                len(leaked),
                "%.1fs" % timeout if timeout is not None else "unbounded",
                ", ".join(thread.name for thread in leaked),
            )

    def queue_depths(self) -> list[int]:
        return [shard.queue.qsize() for shard in self._shards]

    def stats(self) -> dict[str, Any]:
        with self._stats_lock:
            overloaded = self._overloaded
            served = [shard.served for shard in self._shards]
            worker_restarts = self._worker_restarts
            workers_leaked = self._workers_leaked
            deadline_shed = self._deadline_shed
            deadline_exceeded = self._deadline_exceeded
            poisoned = self._poisoned
            crash_retries = self._crash_retries
            quarantined = len(self._quarantine)
        with self._idle:
            inflight = self._inflight
        return {
            "inflight": inflight,
            "shards": len(self._shards),
            "workers_per_shard": self._workers_per_shard,
            "queue_depth": self._shards[0].queue.maxsize,
            "queue_depths": self.queue_depths(),
            "served_per_shard": served,
            "overloaded": overloaded,
            "coalesce_enabled": self.coalesce,
            "singleflight": self.flight.stats(),
            "worker_restarts": worker_restarts,
            "workers_leaked": workers_leaked,
            "deadline_shed": deadline_shed,
            "deadline_exceeded": deadline_exceeded,
            "poisoned": poisoned,
            "crash_retries": crash_retries,
            "quarantined": quarantined,
        }
