"""The concurrent TCP front-end: asyncio transport over the dispatcher.

Framing is the stdio protocol verbatim — newline-delimited UTF-8 JSON,
one request object per line, one response object per line, *in order per
connection* — so any stdio client works over a socket unchanged and the
two transports produce byte-identical responses (modulo wall-clock
timing fields; the load harness checks this).

Concurrency model:

* the event loop only reads and writes — parsing/admin dispatch runs on
  the default executor and CPU-bound analytical work on the
  :class:`~repro.server.scheduler.ShardedScheduler`'s worker threads,
  reached by awaiting their futures, so a heavy request on one
  connection never blocks another connection's admin ping;
* per-connection requests are served strictly in order (a connection is a
  session); cross-connection concurrency plus single-flight coalescing is
  where the throughput comes from;
* per-connection input is bounded by ``max_line_bytes`` — oversized lines
  are *discarded while streaming* (never buffered whole) and answered
  with ``error_type="LineTooLong"`` — and output is bounded by awaiting
  ``drain()`` after every response, so a client that stops reading stalls
  only its own session (TCP backpressure), not server memory;
* per-shard queues are bounded with ``Overloaded`` admission control
  (see the scheduler module).

``{"kind": "shutdown"}`` ends the connection after the ack;
``scope="server"`` additionally stops the whole server — the load-test
harness and the CI smoke step use that for deterministic teardown.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import Future
from typing import Any, AsyncIterator, Callable

from repro.common.faults import fault_point
from repro.obs import Telemetry, TelemetryRegistry
from repro.service.api import SCHEMA_VERSION
from repro.service.engine import Engine
from repro.service.serve import (
    DEFAULT_MAX_LINE_BYTES,
    DispatchOutcome,
    Dispatcher,
    SERVER_SCOPE,
)
from repro.server.metrics import ServerMetrics
from repro.server.scheduler import (
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SHARDS,
    DEFAULT_WORKERS_PER_SHARD,
    ShardedScheduler,
)

_READ_CHUNK = 1 << 16

#: Sentinel yielded by the framing iterator for a line that exceeded
#: ``max_line_bytes`` (the line itself was discarded, never accumulated).
_OVERSIZED = object()


async def _iter_wire_lines(
    reader: asyncio.StreamReader, max_line_bytes: int
) -> AsyncIterator[Any]:
    """Yield newline-delimited frames (bytes) or :data:`_OVERSIZED`.

    The buffer never grows past ``max_line_bytes`` + one read chunk: once
    a partial line exceeds the limit the iterator switches to discard
    mode until the next newline and yields a single oversize marker for
    the whole line.  A final unterminated frame at EOF is still served.
    """
    buffer = b""
    discarding = False
    while True:
        chunk = await reader.read(_READ_CHUNK)
        if not chunk:
            if discarding:
                yield _OVERSIZED
            elif buffer:
                yield buffer
            return
        buffer += chunk
        while True:
            newline = buffer.find(b"\n")
            if newline < 0:
                break
            line, buffer = buffer[:newline], buffer[newline + 1:]
            if discarding:
                discarding = False
                yield _OVERSIZED
            elif len(line.rstrip(b"\r")) > max_line_bytes:
                yield _OVERSIZED
            else:
                yield line
        if not discarding and len(buffer) > max_line_bytes:
            discarding = True
            buffer = b""
        elif discarding:
            buffer = b""


class TCPServer:
    """Serve the JSON-lines protocol to many concurrent TCP clients.

    Usage (blocking)::

        server = TCPServer(engine, "127.0.0.1", 9037)
        asyncio.run(server.run())

    or from synchronous code via :class:`BackgroundServer`.  ``port=0``
    binds an ephemeral port; ``bound_port`` reports it once running.
    """

    def __init__(
        self,
        engine: Engine,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        shards: int = DEFAULT_SHARDS,
        workers_per_shard: int = DEFAULT_WORKERS_PER_SHARD,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        coalesce: bool = True,
        submit: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
        auth=None,
        quota=None,
        drain_timeout: float = 5.0,
        default_deadline_ms: float | None = None,
        telemetry: Telemetry | None = None,
        durability=None,
        lifecycle=None,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self.shards = shards
        self.workers_per_shard = workers_per_shard
        self.queue_depth = queue_depth
        self.max_line_bytes = max_line_bytes
        self.coalesce = coalesce
        self.auth = auth
        self.quota = quota
        self.drain_timeout = drain_timeout
        self.default_deadline_ms = default_deadline_ms
        self.telemetry = telemetry
        self._submit = submit if submit is not None else engine.submit_dict
        self.durability = durability
        self.lifecycle = lifecycle
        self.metrics = ServerMetrics()
        self.registry = TelemetryRegistry(telemetry)
        self.registry.register("metrics", self.metrics.snapshot)
        self.registry.register("engine", engine.stats)
        if durability is not None:
            self.registry.register("durability", durability.stats)
        if lifecycle is not None:
            self.registry.register("lifecycle", lifecycle.describe)
        self.scheduler: ShardedScheduler | None = None
        self.dispatcher: Dispatcher | None = None
        self.bound_port: int | None = None
        self.started_at: float | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._writers: set[asyncio.StreamWriter] = set()

    # -- lifecycle -----------------------------------------------------------

    async def run(
        self, ready: Callable[["TCPServer"], None] | None = None
    ) -> None:
        """Bind, serve until :meth:`request_stop`, then tear down cleanly."""
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self.scheduler = ShardedScheduler(
            self._submit,
            shards=self.shards,
            workers_per_shard=self.workers_per_shard,
            queue_depth=self.queue_depth,
            coalesce=self.coalesce,
            telemetry=self.telemetry,
        )
        self.registry.register("scheduler", self.scheduler.stats)
        # From here on the scheduler's worker threads exist; every exit
        # path (including a failed bind) must run scheduler.stop().
        try:
            self.dispatcher = Dispatcher(
                self.engine,
                max_line_bytes=self.max_line_bytes,
                submit=self.scheduler.submit,
                extra_stats=self.server_stats,
                auth=self.auth,
                quota=self.quota,
                default_deadline_ms=self.default_deadline_ms,
                telemetry=self.telemetry,
                durability=self.durability,
                lifecycle=self.lifecycle,
            )
            server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
            self.bound_port = server.sockets[0].getsockname()[1]
            self.started_at = time.time()
            try:
                if ready is not None:
                    ready(self)
                await self._stop_event.wait()
            finally:
                if self.lifecycle is not None:
                    self.lifecycle.to_draining()
                server.close()
                await server.wait_closed()
                # Graceful drain: requests already admitted to shard
                # queues have clients awaiting their futures — let them
                # resolve (bounded) before tearing the connections down,
                # so a server-scope shutdown never abandons queued work.
                drained = await self._loop.run_in_executor(
                    None, self.scheduler.drain, self.drain_timeout
                )
                if self.telemetry is not None:
                    self.telemetry.event(
                        "drain", transport="tcp", drained=drained,
                        timeout_seconds=self.drain_timeout,
                    )
                if drained:
                    # The futures are resolved but handlers still need
                    # loop turns to write the responses; give them a
                    # short, bounded grace before closing writers.
                    for _ in range(100):
                        await asyncio.sleep(0)
                    await asyncio.sleep(0.05)
                if self.durability is not None:
                    # After the scheduler drain (no more appends can be
                    # in flight) and before the process exits: final
                    # flush + fsync, then the WAL refuses stragglers.
                    await self._loop.run_in_executor(
                        None, self.durability.seal
                    )
                for writer in list(self._writers):
                    writer.close()
                # Give connection handlers a beat to observe EOF and finish.
                await asyncio.sleep(0)
        finally:
            self.scheduler.stop()

    def request_stop(self) -> None:
        """Stop the server; safe from any thread (and from handlers)."""
        loop, event = self._loop, self._stop_event
        if loop is None or event is None or loop.is_closed():
            return
        loop.call_soon_threadsafe(event.set)

    # -- serving -------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        assert self.dispatcher is not None
        loop = asyncio.get_running_loop()
        self.metrics.incr("connections_opened")
        self._writers.add(writer)
        try:
            async for frame in _iter_wire_lines(reader, self.max_line_bytes):
                started = time.perf_counter()
                if frame is _OVERSIZED:
                    outcome = DispatchOutcome(
                        self.dispatcher.oversized_error(), kind="invalid"
                    )
                else:
                    # Dispatch on the default executor, not the event
                    # loop: admin kinds like load_csv do real I/O and
                    # parsing, and even JSON-decoding a max-size line is
                    # work other connections should not wait behind.
                    outcome = await loop.run_in_executor(
                        None, self.dispatcher.dispatch_line, frame
                    )
                response = outcome.response
                if response is None:
                    continue
                if isinstance(response, Future):
                    response = await asyncio.wrap_future(response)
                # Chaos site: an injected disconnect/latency here models
                # the response write failing, not the compute.
                fault_point("tcp.write")
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
                self.metrics.observe(
                    outcome.kind or "invalid", time.perf_counter() - started
                )
                self.metrics.incr("responses")
                if outcome.shutdown is not None:
                    if outcome.shutdown == SERVER_SCOPE:
                        self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self.metrics.incr("connections_closed")

    # -- introspection -------------------------------------------------------

    def server_stats(self) -> dict[str, Any]:
        """The ``"server"`` section of the ``stats`` admin response
        (assembled by the telemetry registry; key shapes are stable)."""
        return self.registry.server_stats({
            "transport": "tcp",
            "host": self.host,
            "port": self.bound_port,
            "max_line_bytes": self.max_line_bytes,
            "uptime_seconds": (
                time.time() - self.started_at if self.started_at else 0.0
            ),
        })

    def ready_banner(self) -> dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "ready",
            "transport": "tcp",
            "host": self.host,
            "port": self.bound_port,
            "datasets": self.engine.dataset_names(),
        }


class BackgroundServer:
    """Run a :class:`TCPServer` on a daemon thread (tests, benchmarks,
    embedding in synchronous programs).

    ``start()`` blocks until the port is bound; ``stop()`` requests a
    clean shutdown and joins the thread, returning ``True`` when the
    server actually wound down within the timeout.
    """

    def __init__(self, server: TCPServer) -> None:
        self.server = server
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="repro-tcp-server", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self.server.run(ready=lambda _: self._ready.set()))
        except BaseException as error:  # surface startup failures to start()
            self._error = error
        finally:
            self._ready.set()

    def start(self, timeout: float = 30.0) -> "BackgroundServer":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("TCP server did not start within %gs" % timeout)
        if self._error is not None:
            raise RuntimeError("TCP server failed to start") from self._error
        return self

    @property
    def port(self) -> int:
        port = self.server.bound_port
        if port is None:
            raise RuntimeError("server is not running")
        return port

    @property
    def host(self) -> str:
        return self.server.host

    def is_alive(self) -> bool:
        return self._thread.is_alive()

    def stop(self, timeout: float = 30.0) -> bool:
        self.server.request_stop()
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
