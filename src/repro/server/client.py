"""Minimal synchronous JSON-lines TCP client.

The protocol needs nothing beyond a socket and ``json`` — this tiny
client exists so tests, the load harness, and examples do not each
reimplement line framing.  One ``request()`` is one round trip; the
server answers in order, so pipelining via ``send`` + ``recv`` also
works on a single connection.
"""

from __future__ import annotations

import json
import socket
from typing import Any


class LineClient:
    """One TCP connection speaking newline-delimited JSON requests."""

    def __init__(
        self, host: str, port: int, timeout: float | None = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def send(self, payload: dict[str, Any]) -> None:
        self.send_raw(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (tests use this for hostile framing)."""
        self._file.write(data)
        self._file.flush()

    def recv(self) -> dict[str, Any] | None:
        """Next response object, or None on clean EOF from the server."""
        line = self._file.readline()
        if not line:
            return None
        return json.loads(line)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.send(payload)
        response = self.recv()
        if response is None:
            raise ConnectionError("server closed the connection mid-request")
        return response

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
