"""Synchronous JSON-lines TCP clients: bare connection + retrying wrapper.

The protocol needs nothing beyond a socket and ``json`` —
:class:`LineClient` exists so tests, the load harness, and examples do
not each reimplement line framing.  One ``request()`` is one round trip;
the server answers in order, so pipelining via ``send`` + ``recv`` also
works on a single connection.

:class:`RetryingClient` layers availability on top: jittered exponential
backoff on ``Overloaded`` responses and on connection/transport
failures (reconnecting between attempts), an attempt budget so a dead
server fails fast instead of forever, and quota-aware waits (it parses
the ``QuotaExceeded`` message's retry hint — the TCP transport's
equivalent of HTTP's ``Retry-After`` header).
"""

from __future__ import annotations

import json
import random
import re
import socket
import time
from typing import Any

from repro.common.errors import TransportError

#: Error types worth retrying on a fresh attempt: transient server-side
#: pushback, not caller mistakes (a SchemaError retried is still a
#: SchemaError).
RETRYABLE_ERROR_TYPES = frozenset({"Overloaded"})

#: The QuotaExceeded message's machine-readable wait hint (see
#: repro.web.quota.QuotaService.charge).
_RETRY_HINT = re.compile(r"retry in ([0-9.]+)s")


class LineClient:
    """One TCP connection speaking newline-delimited JSON requests.

    After a socket timeout or OS-level send/receive failure the line
    framing is undefined (a half-read response may sit in the buffer),
    so the client closes the connection and raises
    :class:`~repro.common.errors.TransportError`; every later call
    fails the same way.  Callers retry on a *fresh* connection
    (:class:`RetryingClient` automates exactly that).
    """

    def __init__(
        self, host: str, port: int, timeout: float | None = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._broken: str | None = None

    def _check_usable(self) -> None:
        if self._broken is not None:
            raise TransportError(
                "connection already failed (%s); open a new client"
                % self._broken
            )

    def _mark_broken(self, reason: str) -> TransportError:
        self._broken = reason
        self.close()
        return TransportError(
            "connection closed after %s; line framing would be undefined "
            "— retry on a fresh connection" % reason
        )

    def send(self, payload: dict[str, Any]) -> None:
        self.send_raw(
            json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
        )

    def send_raw(self, data: bytes) -> None:
        """Write raw bytes (tests use this for hostile framing)."""
        self._check_usable()
        try:
            self._file.write(data)
            self._file.flush()
        except TimeoutError:
            raise self._mark_broken("a send timeout") from None
        except OSError as error:
            raise self._mark_broken("a send failure (%s)" % error) from None

    def recv(self) -> dict[str, Any] | None:
        """Next response object, or None on clean EOF from the server."""
        self._check_usable()
        try:
            line = self._file.readline()
        except TimeoutError:
            # socket.timeout is an alias of TimeoutError since 3.10.
            raise self._mark_broken("a receive timeout") from None
        except OSError as error:
            raise self._mark_broken(
                "a receive failure (%s)" % error
            ) from None
        if not line:
            return None
        return json.loads(line)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        self.send(payload)
        response = self.recv()
        if response is None:
            raise ConnectionError("server closed the connection mid-request")
        return response

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "LineClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RetryingClient:
    """A :class:`LineClient` wrapper that retries transient failures.

    Parameters
    ----------
    host / port / timeout:
        Passed to each underlying :class:`LineClient` (a fresh
        connection is opened lazily and after any transport failure).
    attempts:
        Total tries per ``request()`` — the attempt budget.  When it
        runs out the last server error response is returned as-is, or
        the last connection failure is re-raised.
    base_delay / max_delay:
        Jittered exponential backoff: attempt *i* sleeps
        ``uniform(0, min(max_delay, base_delay * 2**i))`` (full jitter —
        retries from many clients decorrelate instead of thundering).
        A ``QuotaExceeded`` response with a parsable ``retry in X s``
        hint sleeps ``min(X, max_delay)`` instead.
    retry_quota:
        Also retry ``QuotaExceeded`` responses (honoring the hint).
        Off by default: a drained bucket usually outlives a backoff
        window, so returning the typed error is the safer default.
    rng:
        Injectable :class:`random.Random` for deterministic tests.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = 60.0,
        attempts: int = 4,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        retry_quota: bool = False,
        rng: random.Random | None = None,
    ) -> None:
        if attempts < 1:
            raise ValueError("attempts must be >= 1, got %d" % attempts)
        self._host = host
        self._port = port
        self._timeout = timeout
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.retry_quota = retry_quota
        self._rng = rng if rng is not None else random.Random()
        self._client: LineClient | None = None
        self.retries = 0
        self.reconnects = 0

    def _connected(self) -> LineClient:
        if self._client is None:
            self._client = LineClient(
                self._host, self._port, timeout=self._timeout
            )
        return self._client

    def _drop_connection(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
            self.reconnects += 1

    def _backoff(self, attempt: int, hint: float | None = None) -> None:
        if hint is not None:
            delay = min(hint, self.max_delay)
        else:
            delay = self._rng.uniform(
                0.0, min(self.max_delay, self.base_delay * (2 ** attempt))
            )
        if delay > 0:
            time.sleep(delay)

    def request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One logical request; retries ride inside.

        Returns the first non-retryable response (success *or* typed
        error — a ``SchemaError`` is the caller's bug, not transience).
        Connection and transport failures reconnect and retry; when the
        attempt budget is exhausted the last failure is re-raised (or
        the last retryable error response returned).
        """
        last_error: Exception | None = None
        last_response: dict[str, Any] | None = None
        for attempt in range(self.attempts):
            if attempt:
                self.retries += 1
            try:
                response = self._connected().request(payload)
            except (TransportError, ConnectionError, OSError) as error:
                last_error = error
                last_response = None
                self._drop_connection()
                self._backoff(attempt)
                continue
            if response.get("kind") != "error":
                return response
            error_type = response.get("error_type")
            if error_type in RETRYABLE_ERROR_TYPES:
                last_error = None
                last_response = response
                self._backoff(attempt)
                continue
            if error_type == "QuotaExceeded" and self.retry_quota:
                last_error = None
                last_response = response
                hint = _RETRY_HINT.search(response.get("message", ""))
                self._backoff(
                    attempt, hint=float(hint.group(1)) if hint else None
                )
                continue
            return response
        if last_response is not None:
            return last_response
        assert last_error is not None
        raise last_error

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
