"""Server lifecycle: the readiness state machine behind ``/healthz``.

A durable server is not ready the instant the process starts — it may
be replaying a write-ahead log.  :class:`ServerLifecycle` names the
phases and enforces their order::

    starting ──> recovering ──> ready ──> draining
        └──────────────────────────┘

(``starting -> ready`` directly when there is nothing to recover.)

``/healthz`` reports the current state and answers 200 only in
``ready`` — a load balancer keeps traffic away while recovery replays
and stops sending new work the moment drain begins.  Transports flip
``draining`` before their scheduler drain + WAL seal, so the window
between "stopped accepting" and "exited" is observable.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.common.errors import ReproError

__all__ = [
    "ServerLifecycle",
    "STARTING",
    "RECOVERING",
    "READY",
    "DRAINING",
    "STATES",
]

STARTING = "starting"
RECOVERING = "recovering"
READY = "ready"
DRAINING = "draining"

STATES = (STARTING, RECOVERING, READY, DRAINING)

_ALLOWED = {
    STARTING: (RECOVERING, READY, DRAINING),
    RECOVERING: (READY, DRAINING),
    READY: (DRAINING,),
    DRAINING: (),
}


class ServerLifecycle:
    """Thread-safe, forward-only readiness state.

    Transitions that skip backward (or repeat) raise
    :class:`~repro.common.errors.ReproError`, except that every
    ``to_*`` method is idempotent for its own target state — two
    transports racing to drain one process must both succeed.
    """

    def __init__(self, initial: str = STARTING) -> None:
        if initial not in STATES:
            raise ReproError(
                "unknown lifecycle state %r (states: %s)"
                % (initial, ", ".join(STATES))
            )
        self._lock = threading.Lock()
        self._state = initial
        self._entered = time.monotonic()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def is_ready(self) -> bool:
        return self.state == READY

    @property
    def is_draining(self) -> bool:
        return self.state == DRAINING

    def _transition(self, target: str) -> None:
        with self._lock:
            if self._state == target:
                return
            if target not in _ALLOWED[self._state]:
                raise ReproError(
                    "illegal lifecycle transition %s -> %s"
                    % (self._state, target)
                )
            self._state = target
            self._entered = time.monotonic()

    def to_recovering(self) -> None:
        self._transition(RECOVERING)

    def to_ready(self) -> None:
        self._transition(READY)

    def to_draining(self) -> None:
        self._transition(DRAINING)

    def describe(self) -> dict[str, Any]:
        """The healthz/stats view: state + time spent in it."""
        with self._lock:
            return {
                "state": self._state,
                "state_seconds": time.monotonic() - self._entered,
            }
