"""Server observability: counters and fixed-bucket latency histograms.

The serving tier's health is summarized by a handful of numbers — queue
depths, coalesce hit rate, per-kind latency quantiles — that ride in the
``stats`` admin response (under the open ``"server"`` key) so any wire
client can watch them without a separate metrics port.  The same
counters and histograms render as Prometheus text exposition via
:func:`prometheus_text` — the HTTP front door serves that at
``/metrics``, so the tier is scrapeable by standard tooling.

:class:`LatencyHistogram` uses fixed log-spaced buckets (0.5 ms … 30 s
plus an unbounded terminal bucket), the standard server-metrics trade:
O(1) memory per kind, quantiles read as the upper bound of the bucket
where the cumulative count crosses the rank, exact max tracked
separately.  All classes are thread-safe; observation is a counter bump
under a lock.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Any, Mapping

#: Upper bounds (seconds) of the latency buckets; the last bucket is
#: unbounded and reports the exact observed max instead of a bound.
BUCKET_BOUNDS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Histogram keys are bounded to the known wire kinds plus ``"invalid"``
#: (unparseable lines) and ``"other"`` (unknown kinds).  The kind string
#: comes from the client, so keying histograms on it verbatim would let a
#: hostile client grow server memory one invented kind at a time.
#: ``session``/``healthz``/``metrics`` are the HTTP front door's own
#: routes (session CRUD, liveness, the Prometheus scrape itself).
TRACKED_KINDS = frozenset({
    "summary", "explore", "guidance",
    "ping", "load_csv", "datasets", "algorithms", "stats", "shutdown",
    "faults", "trace",
    "session", "healthz", "metrics",
    "invalid",
})


class LatencyHistogram:
    """Fixed-bucket latency distribution with count/mean/max/quantiles."""

    __slots__ = ("_lock", "_counts", "_count", "_sum", "_max")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(BUCKET_BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds > self._max:
                self._max = seconds

    @staticmethod
    def _quantile_from(
        counts: list[int], count: int, maximum: float, q: float
    ) -> float:
        """Quantile from an already-snapshotted bucket state."""
        if count == 0:
            return 0.0
        rank = q * count
        cumulative = 0
        for index, bucket in enumerate(counts):
            cumulative += bucket
            if cumulative >= rank:
                if index < len(BUCKET_BOUNDS):
                    return BUCKET_BOUNDS[index]
                return maximum
        return maximum

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the *q*-quantile observation.

        0.0 when nothing was observed; the exact max for the unbounded
        terminal bucket (so p99 of a one-sample histogram is that sample's
        bucket bound, never infinity).
        """
        counts, count, _total, maximum = self.export()
        return self._quantile_from(counts, count, maximum, q)

    def export(self) -> tuple[list[int], int, float, float]:
        """Consistent snapshot for exposition: per-bucket counts (the
        last entry is the unbounded terminal bucket), total count, sum
        of observations, and the exact max."""
        with self._lock:
            return list(self._counts), self._count, self._sum, self._max

    def summary(self) -> dict[str, float]:
        # One lock acquisition for every field: quantiles computed from
        # the same snapshot as count/mean/max, so a concurrent observe
        # can never tear the summary (p50 > p95 was possible when each
        # quantile re-read live state).
        counts, count, total, maximum = self.export()
        return {
            "count": count,
            "mean_seconds": total / count if count else 0.0,
            "max_seconds": maximum,
            "p50_seconds": self._quantile_from(counts, count, maximum, 0.50),
            "p95_seconds": self._quantile_from(counts, count, maximum, 0.95),
            "p99_seconds": self._quantile_from(counts, count, maximum, 0.99),
        }


class ServerMetrics:
    """Named counters plus one latency histogram per request kind."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._latency: dict[str, LatencyHistogram] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def observe(self, kind: str, seconds: float) -> None:
        if kind not in TRACKED_KINDS:
            kind = "other"
        with self._lock:
            histogram = self._latency.get(kind)
            if histogram is None:
                histogram = self._latency[kind] = LatencyHistogram()
        histogram.observe(seconds)

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            latency = dict(self._latency)
        return {
            "counters": counters,
            "latency": {
                kind: histogram.summary()
                for kind, histogram in sorted(latency.items())
            },
        }

    def histograms(self) -> dict[str, LatencyHistogram]:
        with self._lock:
            return dict(self._latency)


# -- Prometheus exposition -----------------------------------------------------

_METRIC_NAME_OK = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"
)


def _sanitize_metric_name(name: str) -> str:
    return "".join(c if c in _METRIC_NAME_OK else "_" for c in name)


def _escape_label(value: str) -> str:
    """Escape a label *value* per the Prometheus text exposition format:
    backslash, double quote, and line feed must be escaped or the
    exposition is unparseable (and a hostile value could inject whole
    fake sample lines)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def label_suffix(**labels: Any) -> str:
    """Build an escaped ``{name="value",...}`` suffix for an extra-gauge
    key, so callers never hand-format label values.

    >>> label_suffix(shard=3)
    '{shard="3"}'
    """
    return "{%s}" % ",".join(
        '%s="%s"' % (_sanitize_metric_name(name), _escape_label(value))
        for name, value in sorted(labels.items())
    )


#: A whole suffix body that is already well-escaped: comma-joined
#: ``name="value"`` pairs whose values contain no raw quote, backslash,
#: or newline (only ``\\``-escape sequences).  :func:`label_suffix`
#: output and the historical digit-only ``shard="0"`` keys both match,
#: so they are emitted verbatim and the scrape contract is unchanged.
_WELL_ESCAPED_SUFFIX = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\.)*")*$'
)

#: One ``name="raw value"`` pair inside a legacy string label suffix.
#: The value is everything up to a quote that closes the pair (followed
#: by ``,`` or the end), so common raw values round-trip even when they
#: contain quotes or newlines; raw values containing the exact sequence
#: ``",`` need the structured :func:`label_suffix` path.
_LABEL_PAIR = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="(.*?)"(?=,|$)', re.DOTALL
)


def _reescape_label_suffix(labels: str) -> str:
    """Render a caller-supplied ``{...}`` suffix body safely escaped.

    Already well-escaped suffixes (the :func:`label_suffix` path, plain
    legacy keys) pass through verbatim; anything else is treated as raw
    label values and escaped pair by pair, so a hostile value can never
    inject fake sample lines into the exposition."""
    if _WELL_ESCAPED_SUFFIX.match(labels):
        return labels
    pairs = _LABEL_PAIR.findall(labels)
    if not pairs:
        return labels  # not label-shaped; emit verbatim (legacy behavior)
    return ",".join(
        '%s="%s"' % (name, _escape_label(value)) for name, value in pairs
    )


def _format_value(value: float) -> str:
    # Integral values print without an exponent or trailing zeros; repr
    # keeps full float precision for the rest.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    metrics: "ServerMetrics",
    extra: Mapping[str, float] | None = None,
    *,
    namespace: str = "repro",
) -> str:
    """Render counters + latency histograms in Prometheus text format.

    Counters become ``<ns>_<name>_total``; each per-kind latency
    histogram becomes one ``<ns>_request_latency_seconds`` histogram
    series labelled ``{kind="..."}`` with the standard cumulative
    ``_bucket{le=...}`` / ``_sum`` / ``_count`` triplet.  *extra* adds
    flat gauges (the caller may embed its own ``{label="..."}`` suffix
    in a key); it is how the HTTP front door folds in scheduler queue
    depths, quota counters, and session-store health.
    """
    lines: list[str] = []
    snapshot_counters = metrics.snapshot()["counters"]
    for name in sorted(snapshot_counters):
        metric = "%s_%s_total" % (namespace, _sanitize_metric_name(name))
        lines.append("# TYPE %s counter" % metric)
        lines.append(
            "%s %s" % (metric, _format_value(snapshot_counters[name]))
        )
    histograms = metrics.histograms()
    if histograms:
        metric = "%s_request_latency_seconds" % namespace
        lines.append("# TYPE %s histogram" % metric)
        for kind in sorted(histograms):
            label = _escape_label(kind)
            counts, count, total, _maximum = histograms[kind].export()
            cumulative = 0
            for bound, bucket in zip(BUCKET_BOUNDS, counts):
                cumulative += bucket
                lines.append(
                    '%s_bucket{kind="%s",le="%s"} %d'
                    % (metric, label, _format_value(bound), cumulative)
                )
            cumulative += counts[-1]
            lines.append(
                '%s_bucket{kind="%s",le="+Inf"} %d'
                % (metric, label, cumulative)
            )
            lines.append(
                '%s_sum{kind="%s"} %s' % (metric, label, _format_value(total))
            )
            lines.append('%s_count{kind="%s"} %d' % (metric, label, count))
    typed: set[str] = set()
    for key in sorted(extra or {}):
        name, brace, labels = key.partition("{")
        base = "%s_%s" % (namespace, _sanitize_metric_name(name))
        if base not in typed:  # one TYPE line per family, not per label
            typed.add(base)
            lines.append("# TYPE %s gauge" % base)
        if brace:
            # Caller-supplied {label="..."} suffix: label values arrive
            # raw, so escape them here before they hit the exposition.
            labels = _reescape_label_suffix(labels.rstrip("}")) + "}"
        lines.append(
            "%s%s%s %s" % (base, brace, labels, _format_value(extra[key]))
        )
    return "\n".join(lines) + "\n"
