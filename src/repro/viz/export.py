"""JSON assembly of results (Appendix A.3, step three of the action flow).

The paper's prototype "assembles the result as a JSON string and sends it
back to the browser".  This module provides the same serialization layer
for library users building UIs: solutions (both display layers), guidance
views, and comparison views all flatten to plain JSON-compatible dicts with
stable field names, plus round-trip helpers for the solution payload.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.answers import AnswerSet
from repro.core.solution import Solution
from repro.interactive.guidance import GuidanceView
from repro.viz.comparison import ComparisonView


def _decoded(answers: AnswerSet, pattern: tuple[int, ...]) -> list[Any]:
    if answers.codec is not None:
        return list(answers.decode(pattern))
    return ["*" if code == -1 else code for code in pattern]


def solution_payload(
    solution: Solution,
    answers: AnswerSet,
    include_members: bool = True,
) -> dict[str, Any]:
    """The two-layer result payload (Figure 1b/1c as data)."""
    clusters = []
    for cluster in solution.clusters:
        entry: dict[str, Any] = {
            "pattern": _decoded(answers, cluster.pattern),
            "avg": cluster.avg,
            "size": cluster.size,
            "level": cluster.level,
        }
        if include_members:
            entry["members"] = [
                {
                    "rank": index + 1,
                    "values": _decoded(answers, answers.elements[index]),
                    "val": answers.values[index],
                }
                for index in sorted(cluster.covered)
            ]
        clusters.append(entry)
    return {
        "attributes": list(
            answers.codec.attributes
            if answers.codec is not None
            else ["A%d" % (i + 1) for i in range(answers.m)]
        ),
        "objective": solution.avg,
        "covered": len(solution.covered),
        "clusters": clusters,
    }


def guidance_payload(view: GuidanceView) -> dict[str, Any]:
    """The Figure 2 plot as data: one series per D."""
    return {
        "L": view.L,
        "series": [
            {
                "D": series.D,
                "points": [
                    {"k": k, "avg": avg} for k, avg in series.as_pairs()
                ],
            }
            for series in view.series
        ],
        "bundles": [list(bundle) for bundle in
                    view.overlapping_distance_bundles()],
    }


def comparison_payload(view: ComparisonView) -> dict[str, Any]:
    """The Appendix A.7 view as data: boxes, bands, clutter metrics."""

    def box(b) -> dict[str, Any]:
        return {
            "side": b.side,
            "index": b.index,
            "position": b.position,
            "label": b.label,
            "size": b.size,
            "top_count": b.top_count,
            "avg": b.avg,
        }

    return {
        "old": [box(b) for b in view.old_boxes],
        "new": [box(b) for b in view.new_boxes],
        "bands": [
            {"old": band.old_index, "new": band.new_index,
             "shared": band.shared}
            for band in view.bands
        ],
        "metrics": {
            "matched_distance": view.matched_distance,
            "default_distance": view.default_distance,
            "matched_crossings": view.matched_crossings,
            "default_crossings": view.default_crossings,
        },
    }


def to_json(payload: dict[str, Any], indent: int | None = None) -> str:
    """Serialize a payload (stable key order for diff-able output)."""
    return json.dumps(payload, indent=indent, sort_keys=True)
