"""The successive-solution comparison view (Appendix A.7.1, Figure 13/14).

When the user changes a parameter, the prototype shows the old and new
cluster sets side by side: boxes whose width is proportional to cluster
size, darker segments for the fraction of top-L tuples inside, and bands
(ribbons) whose thickness is the number of shared tuples.  This module
computes that picture as plain data — the overlap matrix, the optimally
ordered boxes (via :mod:`repro.viz.placement`), the bands, and the two
clutter metrics of Figure 16 — plus an ASCII rendering for the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.answers import AnswerSet
from repro.core.solution import Solution
from repro.viz.placement import (
    count_crossings,
    default_ordering,
    optimal_ordering,
    total_distance,
)


@dataclass(frozen=True)
class ClusterBox:
    """One box of the comparison view."""

    side: str  # "old" | "new"
    index: int  # index within its solution's cluster list
    position: int  # vertical slot after ordering
    label: str
    size: int  # number of covered tuples (box width)
    top_count: int  # covered tuples inside the top-L (darker segment)
    avg: float


@dataclass(frozen=True)
class Band:
    """A ribbon connecting an old cluster with a new one."""

    old_index: int
    new_index: int
    shared: int  # number of shared tuples (band thickness)


@dataclass(frozen=True)
class ComparisonView:
    """Full data for the Appendix A.7 visualization."""

    old_boxes: tuple[ClusterBox, ...]
    new_boxes: tuple[ClusterBox, ...]
    bands: tuple[Band, ...]
    overlap: tuple[tuple[int, ...], ...]
    matched_distance: int
    default_distance: int
    matched_crossings: int
    default_crossings: int

    def render_ascii(self) -> str:
        """Terminal rendering: boxes by position, bands with thickness."""
        lines = ["old clusters                ->  new clusters"]
        old_by_pos = sorted(self.old_boxes, key=lambda b: b.position)
        new_by_pos = sorted(self.new_boxes, key=lambda b: b.position)
        height = max(len(old_by_pos), len(new_by_pos))
        for row in range(height):
            left = (
                "[%s |%d|]" % (old_by_pos[row].label, old_by_pos[row].size)
                if row < len(old_by_pos)
                else ""
            )
            right = (
                "[%s |%d|]" % (new_by_pos[row].label, new_by_pos[row].size)
                if row < len(new_by_pos)
                else ""
            )
            lines.append("%-30s    %s" % (left, right))
        lines.append("bands (old -> new: shared):")
        for band in sorted(
            self.bands, key=lambda b: (-b.shared, b.old_index, b.new_index)
        ):
            lines.append(
                "  %d -> %d : %d" % (band.old_index, band.new_index, band.shared)
            )
        lines.append(
            "distance: matched=%d default=%d   crossings: matched=%d default=%d"
            % (
                self.matched_distance,
                self.default_distance,
                self.matched_crossings,
                self.default_crossings,
            )
        )
        return "\n".join(lines)


def overlap_matrix(old: Solution, new: Solution) -> list[list[int]]:
    """m_ij = |cov(old_i) intersect cov(new_j)|."""
    return [
        [len(c_old.covered & c_new.covered) for c_new in new.clusters]
        for c_old in old.clusters
    ]


def _label(pattern: tuple[int, ...], answers: AnswerSet) -> str:
    if answers.codec is not None:
        return "(%s)" % ", ".join(str(v) for v in answers.decode(pattern))
    return "(%s)" % ", ".join(
        "*" if v == -1 else str(v) for v in pattern
    )


def build_comparison(
    old: Solution,
    new: Solution,
    answers: AnswerSet,
    L: int | None = None,
) -> ComparisonView:
    """Assemble the comparison view with optimal placement of the new side.

    The old side keeps its by-value ordering (it is already on screen); the
    new side is ordered by the min-cost bipartite matching.  *L* (for the
    darker top-L segments) defaults to the number of top elements covered
    by the old solution.
    """
    overlap = overlap_matrix(old, new)
    pa = default_ordering(len(old.clusters))
    pb_default = default_ordering(len(new.clusters))
    pb_matched = optimal_ordering(overlap, pa)
    if L is None:
        L = 0
        for rank in range(answers.n):
            if rank in old.covered or rank in new.covered:
                L = rank + 1
            else:
                break
    top_ranks = set(range(L))
    old_boxes = tuple(
        ClusterBox(
            side="old",
            index=i,
            position=pa[i],
            label=_label(cluster.pattern, answers),
            size=cluster.size,
            top_count=len(set(cluster.covered) & top_ranks),
            avg=cluster.avg,
        )
        for i, cluster in enumerate(old.clusters)
    )
    new_boxes = tuple(
        ClusterBox(
            side="new",
            index=j,
            position=pb_matched[j],
            label=_label(cluster.pattern, answers),
            size=cluster.size,
            top_count=len(set(cluster.covered) & top_ranks),
            avg=cluster.avg,
        )
        for j, cluster in enumerate(new.clusters)
    )
    bands = tuple(
        Band(old_index=i, new_index=j, shared=overlap[i][j])
        for i in range(len(old.clusters))
        for j in range(len(new.clusters))
        if overlap[i][j] > 0
    )
    return ComparisonView(
        old_boxes=old_boxes,
        new_boxes=new_boxes,
        bands=bands,
        overlap=tuple(tuple(row) for row in overlap),
        matched_distance=total_distance(overlap, pa, pb_matched),
        default_distance=total_distance(overlap, pa, pb_default),
        matched_crossings=count_crossings(overlap, pa, pb_matched),
        default_crossings=count_crossings(overlap, pa, pb_default),
    )
