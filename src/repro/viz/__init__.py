"""Comparison visualization of successive solutions (Appendix A.7)."""

from repro.viz.comparison import (
    Band,
    ClusterBox,
    ComparisonView,
    build_comparison,
    overlap_matrix,
)
from repro.viz.placement import (
    brute_force_ordering,
    count_crossings,
    default_ordering,
    optimal_ordering,
    position_cost_matrix,
    total_distance,
)
from repro.viz.export import (
    comparison_payload,
    guidance_payload,
    solution_payload,
    to_json,
)

__all__ = [
    "comparison_payload",
    "guidance_payload",
    "solution_payload",
    "to_json",
    "Band",
    "ClusterBox",
    "ComparisonView",
    "build_comparison",
    "overlap_matrix",
    "brute_force_ordering",
    "count_crossings",
    "default_ordering",
    "optimal_ordering",
    "position_cost_matrix",
    "total_distance",
]
