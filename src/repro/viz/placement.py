"""Cluster placement optimization for the comparison view (Appendix A.7.2).

When two successive solutions are drawn side by side with bands connecting
clusters that share tuples, the vertical ordering of the new solution's
boxes determines how tangled the picture is.  The paper scores an ordering
by a weighted earth-mover-style distance::

    d_ij = m_ij * |pa_i - pb_j|       D = sum_ij d_ij

where ``m_ij`` is the number of shared tuples between old cluster i and new
cluster j, ``pa`` is the (fixed) ordering of the old clusters and ``pb`` the
ordering being chosen.  Minimizing D over permutations ``pb`` reduces to
minimum-cost perfect matching on a complete bipartite graph (cluster j vs.
position v, edge cost sum_i m_ij * |pa_i - v|), solved here with
``scipy.optimize.linear_sum_assignment``; a brute-force permutation search
is provided for validation and for the timing comparison the paper reports
(bipartite < 10 ms vs. brute force > 2 s).

The band-crossing count (Figure 16b's metric) is also computed here.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.common.errors import InvalidParameterError

Matrix = Sequence[Sequence[int]]


def _validate(overlap: Matrix, pa: Sequence[int]) -> tuple[int, int]:
    n_old = len(overlap)
    if n_old == 0:
        raise InvalidParameterError("empty overlap matrix")
    n_new = len(overlap[0])
    if any(len(row) != n_new for row in overlap):
        raise InvalidParameterError("ragged overlap matrix")
    if sorted(pa) != list(range(n_old)):
        raise InvalidParameterError(
            "pa must be a permutation of 0..%d" % (n_old - 1)
        )
    return n_old, n_new


def total_distance(
    overlap: Matrix, pa: Sequence[int], pb: Sequence[int]
) -> int:
    """The Definition A.3 objective D = sum m_ij * |pa_i - pb_j|."""
    n_old, n_new = _validate(overlap, pa)
    if sorted(pb) != list(range(n_new)):
        raise InvalidParameterError(
            "pb must be a permutation of 0..%d" % (n_new - 1)
        )
    return sum(
        overlap[i][j] * abs(pa[i] - pb[j])
        for i in range(n_old)
        for j in range(n_new)
    )


def position_cost_matrix(overlap: Matrix, pa: Sequence[int]) -> np.ndarray:
    """cost[j][v]: contribution of placing new cluster j at position v."""
    n_old, n_new = _validate(overlap, pa)
    cost = np.zeros((n_new, n_new), dtype=np.int64)
    for j in range(n_new):
        for v in range(n_new):
            cost[j][v] = sum(
                overlap[i][j] * abs(pa[i] - v) for i in range(n_old)
            )
    return cost


def optimal_ordering(overlap: Matrix, pa: Sequence[int]) -> list[int]:
    """The D-minimizing ordering pb, via min-cost bipartite matching."""
    cost = position_cost_matrix(overlap, pa)
    rows, cols = linear_sum_assignment(cost)
    pb = [0] * len(rows)
    for j, v in zip(rows, cols):
        pb[j] = int(v)
    return pb


def brute_force_ordering(overlap: Matrix, pa: Sequence[int]) -> list[int]:
    """Exhaustive search over all n! orderings (validation / timing only)."""
    n_old, n_new = _validate(overlap, pa)
    if n_new > 10:
        raise InvalidParameterError(
            "brute force over %d! orderings refused (n_new > 10)" % n_new
        )
    best: tuple[int, ...] | None = None
    best_cost = None
    for candidate in permutations(range(n_new)):
        cost = total_distance(overlap, pa, candidate)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best = candidate
    assert best is not None
    return list(best)


def default_ordering(count: int) -> list[int]:
    """The unoptimized ordering: clusters keep their by-value order."""
    return list(range(count))


def count_crossings(
    overlap: Matrix, pa: Sequence[int], pb: Sequence[int]
) -> int:
    """Number of crossing pairs among the non-empty bands (Figure 16b).

    Bands (i, j) and (i', j') cross when their endpoints are oppositely
    ordered on the two sides.  Bands sharing an endpoint cannot cross.
    """
    n_old, n_new = _validate(overlap, pa)
    bands = [
        (pa[i], pb[j])
        for i in range(n_old)
        for j in range(n_new)
        if overlap[i][j] > 0
    ]
    crossings = 0
    for a in range(len(bands)):
        for b in range(a + 1, len(bands)):
            (la, ra), (lb, rb) = bands[a], bands[b]
            if (la - lb) * (ra - rb) < 0:
                crossings += 1
    return crossings
