"""Synthetic datasets standing in for MovieLens 100K and TPC-DS.

See DESIGN.md section 3 for the substitution rationale: the algorithms
consume only the aggregate query output, and these generators reproduce the
schema shape, scale, and planted value structure of the paper's workloads.
"""

from repro.datasets.movielens import (
    EXAMPLE_QUERY,
    GENRES,
    OCCUPATIONS,
    MovieLensConfig,
    SWEEP_ATTRIBUTES,
    build_database,
    build_rating_table,
)
from repro.datasets.tpcds import (
    SCALABILITY_ATTRIBUTES,
    STORE_SALES_COLUMNS,
    TpcdsConfig,
    generate_store_sales,
    tpcds_answer_set,
)
from repro.datasets.loader import (
    PAPER_N_DEFAULT,
    PAPER_N_LARGE,
    PAPER_N_SMALL,
    example_query_answers,
    movielens_answer_set,
    synthetic_answer_set,
)

__all__ = [
    "EXAMPLE_QUERY",
    "GENRES",
    "OCCUPATIONS",
    "MovieLensConfig",
    "SWEEP_ATTRIBUTES",
    "build_database",
    "build_rating_table",
    "SCALABILITY_ATTRIBUTES",
    "STORE_SALES_COLUMNS",
    "TpcdsConfig",
    "generate_store_sales",
    "tpcds_answer_set",
    "PAPER_N_DEFAULT",
    "PAPER_N_LARGE",
    "PAPER_N_SMALL",
    "example_query_answers",
    "movielens_answer_set",
    "synthetic_answer_set",
]
