"""Synthetic MovieLens-100K-like data (the paper's primary dataset).

The paper joins the MovieLens 100K tables (ratings, users, occupations,
movies) into a universal ``RatingTable`` with 33 attributes of three kinds —
binary genre flags, numeric (age), categorical (occupation) — and derives
``agegrp`` (age decade), ``decade`` and ``hdec`` (five-year half-decade of
the movie's release) features (Example 1.1, Section 7).

The real dataset is not distributable inside this offline reproduction, so
this module *generates* an equivalent: same table schemas, same scale
(943 users / 1682 movies / 100k ratings by default), and a planted
preference structure that reproduces the paper's qualitative shape — young
male students and programmers rate older adventure movies highly, while
mid-90s releases rate low for everyone — which is what drives Example 1.1,
the Appendix A.5 comparisons, and the user-study tasks.  Everything is
deterministic given the seed.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.query.relation import Database, Relation

#: Occupations of the MovieLens 100K users file.
OCCUPATIONS = (
    "student", "programmer", "engineer", "educator", "librarian",
    "writer", "executive", "scientist", "technician", "marketing",
    "entertainment", "healthcare", "artist", "lawyer", "salesman",
    "doctor", "homemaker", "retired", "administrator", "none", "other",
)

#: Genre flags of the MovieLens 100K item file (19 genres).
GENRES = (
    "unknown", "action", "adventure", "animation", "children", "comedy",
    "crime", "documentary", "drama", "fantasy", "film_noir", "horror",
    "musical", "mystery", "romance", "scifi", "thriller", "war", "western",
)

_REGIONS = ("north", "south", "east", "west", "midwest")


@dataclass(frozen=True)
class MovieLensConfig:
    """Scale and seed of the generated dataset (defaults match ML-100K)."""

    n_users: int = 943
    n_movies: int = 1682
    n_ratings: int = 100_000
    seed: int = 42


def age_group(age: int) -> str:
    """Age decade label: 13 -> '10s', 27 -> '20s', ... (Example 1.1)."""
    return "%ds" % ((age // 10) * 10)


def half_decade(year: int) -> int:
    """Start year of the five-year window containing *year* (hdec)."""
    return (year // 5) * 5


def decade(year: int) -> int:
    """Start year of the decade containing *year*."""
    return (year // 10) * 10


def generate_users(config: MovieLensConfig) -> Relation:
    """users(user_id, age, gender, occupation, region).

    Ages follow the ML-100K shape (mostly 20s/30s); occupations are skewed
    toward student/programmer/engineer/educator, as in the original file.
    """
    rng = _random.Random(config.seed * 7919 + 1)
    occupation_weights = [30 if o == "student" else 12 if o in
                          ("programmer", "engineer", "educator") else 4
                          for o in OCCUPATIONS]
    rows = []
    for user_id in range(1, config.n_users + 1):
        age = min(73, max(7, int(rng.gauss(28, 10))))
        gender = "M" if rng.random() < 0.71 else "F"
        occupation = rng.choices(OCCUPATIONS, weights=occupation_weights)[0]
        region = rng.choice(_REGIONS)
        rows.append((user_id, age, gender, occupation, region))
    return Relation(
        "users", ("user_id", "age", "gender", "occupation", "region"), rows
    )


def generate_movies(config: MovieLensConfig) -> Relation:
    """movies(movie_id, title, release_year, genres_* x19).

    Release years span 1930-1998 with the ML-100K concentration in the 90s;
    each movie gets 1-3 genres.
    """
    rng = _random.Random(config.seed * 7919 + 2)
    columns = ["movie_id", "title", "release_year"] + [
        "genres_%s" % g for g in GENRES
    ]
    year_bins = [(1930, 1969, 0.08), (1970, 1994, 0.62), (1995, 1998, 0.30)]
    # Popular genres dominate, as in ML-100K; 'adventure' is frequent
    # enough that the Example 1.1 query yields ~50 qualifying groups.
    genre_weights = {
        "drama": 10, "comedy": 9, "action": 7, "adventure": 7, "thriller": 6,
        "romance": 5, "scifi": 4, "crime": 3, "children": 3, "horror": 3,
        "war": 2, "musical": 2, "mystery": 2, "western": 1, "animation": 2,
        "fantasy": 1, "film_noir": 1, "documentary": 1,
    }
    weighted_genres = list(genre_weights)
    weights = [genre_weights[g] for g in weighted_genres]
    rows = []
    for movie_id in range(1, config.n_movies + 1):
        roll = rng.random()
        cumulative = 0.0
        year = 1995
        for low, high, mass in year_bins:
            cumulative += mass
            if roll <= cumulative:
                year = rng.randint(low, high)
                break
        genre_count = rng.choices((1, 2, 3), weights=(4, 4, 2))[0]
        chosen: set[str] = set()
        while len(chosen) < genre_count:
            chosen.add(rng.choices(weighted_genres, weights=weights)[0])
        flags = tuple(1 if g in chosen else 0 for g in GENRES)
        title = "movie_%04d" % movie_id
        rows.append((movie_id, title, year) + flags)
    return Relation("movies", columns, rows)


def _rating_mean(
    age: int, gender: str, occupation: str, year: int, chosen_genres: set[str]
) -> float:
    """The planted preference structure (see module docstring)."""
    mean = 3.1
    hdec = half_decade(year)
    if "adventure" in chosen_genres:
        # Older adventure films are community classics...
        if hdec <= 1985:
            mean += 0.65 - (1985 - hdec) * 0.002
        # ...while the mid-90s crop disappoints everyone.
        if hdec >= 1995:
            mean -= 0.45
        # Young male enthusiasts: students and programmers in their 10s/20s.
        if gender == "M" and age < 30 and occupation in (
            "student", "programmer", "engineer"
        ):
            mean += 0.45
        # But 20s males *in general* are polarized, not uniformly positive:
        # non-technical young men trend below average (this is what makes
        # the (20s, M) pattern non-discriminative, as in Figure 1a).
        if gender == "M" and 20 <= age < 30 and occupation not in (
            "student", "programmer", "engineer"
        ):
            mean -= 0.35
    if "drama" in chosen_genres and occupation in ("educator", "librarian"):
        mean += 0.3
    if "horror" in chosen_genres and age >= 40:
        mean -= 0.4
    if "scifi" in chosen_genres and occupation in ("programmer", "scientist"):
        mean += 0.35
    return mean


def generate_ratings(
    config: MovieLensConfig, users: Relation, movies: Relation
) -> Relation:
    """ratings(user_id, movie_id, rating, rating_year).

    Each rating is drawn around the planted mean with Gaussian noise and
    clamped to the 1-5 star scale.
    """
    rng = _random.Random(config.seed * 7919 + 3)
    user_rows = users.rows
    movie_rows = movies.rows
    genre_offset = 3  # columns before the genre flags in movies
    seen: set[tuple[int, int]] = set()
    rows = []
    while len(rows) < config.n_ratings:
        user = user_rows[rng.randrange(len(user_rows))]
        movie = movie_rows[rng.randrange(len(movie_rows))]
        key = (user[0], movie[0])
        if key in seen:
            continue
        seen.add(key)
        chosen_genres = {
            GENRES[i]
            for i in range(len(GENRES))
            if movie[genre_offset + i] == 1
        }
        mean = _rating_mean(user[1], user[2], user[3], movie[2], chosen_genres)
        stars = int(round(rng.gauss(mean, 0.9)))
        stars = min(5, max(1, stars))
        rating_year = rng.choice((1997, 1998))
        rows.append((user[0], movie[0], stars, rating_year))
    return Relation(
        "ratings", ("user_id", "movie_id", "rating", "rating_year"), rows
    )


def build_rating_table(config: MovieLensConfig | None = None) -> Relation:
    """Materialize the universal RatingTable (33 attributes).

    Joins ratings x users x movies and derives agegrp / decade / hdec, the
    same precomputation step the paper performs before measuring anything.
    """
    config = config or MovieLensConfig()
    users = generate_users(config)
    movies = generate_movies(config)
    ratings = generate_ratings(config, users, movies)
    joined = ratings.join(users, on=[("user_id", "user_id")])
    joined = joined.join(movies, on=[("movie_id", "movie_id")])
    joined = joined.derive("agegrp", lambda r: age_group(r["age"]))
    joined = joined.derive("decade", lambda r: decade(r["release_year"]))
    joined = joined.derive("hdec", lambda r: half_decade(r["release_year"]))
    return Relation("RatingTable", joined.columns, joined.rows)


def build_database(config: MovieLensConfig | None = None) -> Database:
    """The full catalog: base tables plus the materialized RatingTable."""
    config = config or MovieLensConfig()
    db = Database("movielens")
    users = generate_users(config)
    movies = generate_movies(config)
    ratings = generate_ratings(config, users, movies)
    db.add(users)
    db.add(movies)
    db.add(ratings)
    joined = ratings.join(users, on=[("user_id", "user_id")])
    joined = joined.join(movies, on=[("movie_id", "movie_id")])
    joined = joined.derive("agegrp", lambda r: age_group(r["age"]))
    joined = joined.derive("decade", lambda r: decade(r["release_year"]))
    joined = joined.derive("hdec", lambda r: half_decade(r["release_year"]))
    db.add(Relation("RatingTable", joined.columns, joined.rows))
    return db


#: The aggregate query of Example 1.1 (Appendix A.8 template).
EXAMPLE_QUERY = """
SELECT hdec, agegrp, gender, occupation, avg(rating) AS val
FROM RatingTable
WHERE genres_adventure = 1
GROUP BY hdec, agegrp, gender, occupation
HAVING count(*) > 50
ORDER BY val DESC
"""

#: Grouping attributes used for the m-sweep of Figure 6g/6h (m = 4..10).
SWEEP_ATTRIBUTES = (
    "hdec", "agegrp", "gender", "occupation", "decade", "region",
    "genres_adventure", "genres_comedy", "genres_drama", "genres_action",
)
