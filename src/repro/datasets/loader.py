"""Workload helpers: answer sets at controlled sizes for the benchmarks.

The parameter-sweep experiments of Section 7 fix the answer-set size N
(927 / 2087 / 6955 for MovieLens, 47361 for TPC-DS) while varying k, L, D,
or m.  :func:`synthetic_answer_set` generates answer sets with an exact N
and m, calibrated to those workloads; :func:`movielens_answer_set` runs a
real aggregate query over the generated RatingTable for the qualitative
experiments where the actual data pipeline matters.
"""

from __future__ import annotations

import random as _random
from functools import lru_cache

from repro.core.answers import AnswerSet
from repro.datasets.movielens import (
    EXAMPLE_QUERY,
    MovieLensConfig,
    SWEEP_ATTRIBUTES,
    build_rating_table,
)
from repro.query.aggregate import AggregateQuery, run_aggregate
from repro.query.sql import execute_sql

#: Answer-set sizes used by the Section 7.2 experiments.
PAPER_N_SMALL = 927
PAPER_N_DEFAULT = 2087
PAPER_N_LARGE = 6955


def synthetic_answer_set(
    n: int,
    m: int = 8,
    domain_size: int = 12,
    seed: int = 0,
    value_range: tuple[float, float] = (1.0, 5.0),
) -> AnswerSet:
    """An answer set with exactly *n* distinct elements over *m* attributes.

    Values combine per-(attribute, value) planted biases with noise, so that
    high-valued elements share attribute values (summaries exist) while the
    same values also appear among low-valued elements (summaries must be
    discriminative) — the structure Example 1.1 highlights.
    """
    if domain_size ** m < n:
        raise ValueError(
            "domain_size**m = %d cannot host n=%d distinct elements"
            % (domain_size ** m, n)
        )
    rng = _random.Random(seed * 6151 + n + m)
    low, high = value_range
    span = high - low
    biases = [
        {value: rng.gauss(0.0, span / 8.0) for value in range(domain_size)}
        for _ in range(m)
    ]
    seen: set[tuple[int, ...]] = set()
    rows: list[tuple[str, ...]] = []
    values: list[float] = []
    mid = (low + high) / 2.0
    while len(rows) < n:
        element = tuple(rng.randrange(domain_size) for _ in range(m))
        if element in seen:
            continue
        seen.add(element)
        value = mid + sum(biases[i][v] for i, v in enumerate(element))
        value += rng.gauss(0.0, span / 10.0)
        value = min(high, max(low, value))
        rows.append(tuple("a%d_%d" % (i, v) for i, v in enumerate(element)))
        values.append(round(value, 4))
    attributes = ["A%d" % (i + 1) for i in range(m)]
    return AnswerSet.from_rows(rows, values, attributes=attributes)


@lru_cache(maxsize=4)
def _cached_rating_table(seed: int, n_ratings: int):
    return build_rating_table(MovieLensConfig(seed=seed, n_ratings=n_ratings))


def movielens_answer_set(
    m: int = 4,
    having_count_gt: int = 50,
    seed: int = 42,
    n_ratings: int = 100_000,
) -> AnswerSet:
    """Run a real aggregate query over the generated RatingTable.

    *m* selects the first *m* grouping attributes of the Figure 6g/6h sweep
    list; m=4 with the adventure filter is exactly the Example 1.1 query.
    """
    if not 1 <= m <= len(SWEEP_ATTRIBUTES):
        raise ValueError(
            "m=%d out of range [1, %d]" % (m, len(SWEEP_ATTRIBUTES))
        )
    table = _cached_rating_table(seed, n_ratings)
    query = AggregateQuery(
        group_by=SWEEP_ATTRIBUTES[:m],
        aggregate="avg",
        target="rating",
        where=(("genres_adventure", "=", 1),) if m <= 4 else (),
        having_count_gt=having_count_gt,
    )
    return run_aggregate(table, query).to_answer_set()


def example_query_answers(seed: int = 42) -> AnswerSet:
    """The Example 1.1 answer set via the SQL front end."""
    table = _cached_rating_table(seed, 100_000)
    return execute_sql(EXAMPLE_QUERY, table).to_answer_set()
