"""Synthetic TPC-DS-like ``store_sales`` data (the scalability dataset).

The paper's scalability experiment (Section 7.4) materializes the TPC-DS
``store_sales`` table — 23 attributes, 2,880,404 rows — and runs::

    SELECT <grouping attributes>, cast(avg(net_profit) as int) AS val
    FROM store_sales GROUP BY ... HAVING count(*) > 10 ORDER BY val DESC

yielding N = 47,361 answer groups.  The official dsdgen generator is not
available offline, and 2.9M Python tuples are beyond laptop memory budgets,
so this module provides:

* :func:`generate_store_sales` — a schema-faithful row generator at a
  configurable scale (same 23 columns, realistic domains), used by the
  end-to-end example; and
* :func:`tpcds_answer_set` — a direct synthesizer of the *aggregate answer
  set* at the paper's exact N (the summarization algorithms only ever see
  the answer set, so this preserves the measured code paths while skipping
  the row storage the paper's DBMS handled).

Both are deterministic given the seed.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass

from repro.core.answers import AnswerSet
from repro.query.relation import Relation

#: The 23 columns of store_sales (TPC-DS 2.x).
STORE_SALES_COLUMNS = (
    "ss_sold_date_sk", "ss_sold_time_sk", "ss_item_sk", "ss_customer_sk",
    "ss_cdemo_sk", "ss_hdemo_sk", "ss_addr_sk", "ss_store_sk", "ss_promo_sk",
    "ss_ticket_number", "ss_quantity", "ss_wholesale_cost", "ss_list_price",
    "ss_sales_price", "ss_ext_discount_amt", "ss_ext_sales_price",
    "ss_ext_wholesale_cost", "ss_ext_list_price", "ss_ext_tax",
    "ss_coupon_amt", "ss_net_paid", "ss_net_paid_inc_tax", "ss_net_profit",
)

#: Group-by attributes used by the scalability query (low-cardinality keys).
SCALABILITY_ATTRIBUTES = (
    "ss_store_sk", "ss_promo_sk", "ss_quantity", "ss_hdemo_sk",
    "ss_cdemo_sk", "ss_addr_sk",
)


@dataclass(frozen=True)
class TpcdsConfig:
    """Scale knobs for the row generator."""

    n_rows: int = 200_000
    n_items: int = 2000
    n_customers: int = 5000
    n_stores: int = 12
    n_promos: int = 30
    seed: int = 7


def generate_store_sales(config: TpcdsConfig | None = None) -> Relation:
    """Generate a store_sales relation with the full 23-column schema.

    Profit structure: each (store, promo) pair has a planted margin bias,
    quantity scales revenue, and promotions on weak stores lose money —
    giving the avg(net_profit) query a meaningful high/low group structure.
    """
    config = config or TpcdsConfig()
    rng = _random.Random(config.seed * 104729 + 1)
    store_bias = {
        s: rng.uniform(-4.0, 6.0) for s in range(1, config.n_stores + 1)
    }
    promo_bias = {
        p: rng.uniform(-5.0, 3.0) for p in range(1, config.n_promos + 1)
    }
    rows = []
    for ticket in range(1, config.n_rows + 1):
        date_sk = rng.randint(2450800, 2452600)
        time_sk = rng.randint(0, 86399)
        item_sk = rng.randint(1, config.n_items)
        customer_sk = rng.randint(1, config.n_customers)
        cdemo_sk = customer_sk % 50 + 1
        hdemo_sk = customer_sk % 20 + 1
        addr_sk = customer_sk % 25 + 1
        store_sk = rng.randint(1, config.n_stores)
        promo_sk = rng.randint(1, config.n_promos)
        quantity = rng.randint(1, 20)
        wholesale = round(rng.uniform(1.0, 80.0), 2)
        list_price = round(wholesale * rng.uniform(1.1, 2.4), 2)
        sales_price = round(list_price * rng.uniform(0.5, 1.0), 2)
        ext_discount = round((list_price - sales_price) * quantity, 2)
        ext_sales = round(sales_price * quantity, 2)
        ext_wholesale = round(wholesale * quantity, 2)
        ext_list = round(list_price * quantity, 2)
        ext_tax = round(ext_sales * 0.08, 2)
        coupon = round(rng.choice((0.0, 0.0, 0.0, 5.0, 10.0)), 2)
        net_paid = round(ext_sales - coupon, 2)
        net_paid_inc_tax = round(net_paid + ext_tax, 2)
        margin = (
            ext_sales
            - ext_wholesale
            + store_bias[store_sk]
            + promo_bias[promo_sk] * (quantity ** 0.5)
            + rng.gauss(0.0, 8.0)
        )
        net_profit = round(margin, 2)
        rows.append((
            date_sk, time_sk, item_sk, customer_sk, cdemo_sk, hdemo_sk,
            addr_sk, store_sk, promo_sk, ticket, quantity, wholesale,
            list_price, sales_price, ext_discount, ext_sales, ext_wholesale,
            ext_list, ext_tax, coupon, net_paid, net_paid_inc_tax, net_profit,
        ))
    return Relation("store_sales", STORE_SALES_COLUMNS, rows)


def tpcds_answer_set(
    n_groups: int = 47_361,
    m: int = 6,
    seed: int = 7,
) -> AnswerSet:
    """Directly synthesize the scalability experiment's answer set.

    Produces exactly *n_groups* distinct group tuples over *m* categorical
    attributes whose domains mimic the scalability query's key columns, with
    integer avg(net_profit)-like values.  Values carry planted structure
    (per-attribute-value biases plus noise) so summaries are non-trivial.
    """
    rng = _random.Random(seed * 104729 + 2)
    # Domain sizes chosen so the product comfortably exceeds n_groups while
    # individual domains stay realistic for surrogate-key-derived columns.
    base_domains = [12, 30, 20, 20, 50, 25, 15, 10, 8, 6]
    if not 2 <= m <= len(base_domains):
        raise ValueError("m=%d out of range [2, %d]" % (m, len(base_domains)))
    domains = base_domains[:m]
    capacity = 1
    for size in domains:
        capacity *= size
    if n_groups > capacity:
        raise ValueError(
            "n_groups=%d exceeds the attribute-domain capacity %d"
            % (n_groups, capacity)
        )
    biases = [
        {value: rng.uniform(-25.0, 25.0) for value in range(size)}
        for size in domains
    ]
    seen: set[tuple[int, ...]] = set()
    rows: list[tuple[str, ...]] = []
    values: list[float] = []
    while len(rows) < n_groups:
        group = tuple(rng.randrange(size) for size in domains)
        if group in seen:
            continue
        seen.add(group)
        profit = 20.0 + sum(
            biases[attr][value] for attr, value in enumerate(group)
        ) + rng.gauss(0.0, 15.0)
        rows.append(tuple("v%d" % value for value in group))
        values.append(float(int(profit)))
    attributes = SCALABILITY_ATTRIBUTES[:m] if m <= len(
        SCALABILITY_ATTRIBUTES
    ) else tuple("attr_%d" % i for i in range(m))
    if len(attributes) < m:
        attributes = tuple("attr_%d" % i for i in range(m))
    return AnswerSet.from_rows(rows, values, attributes=attributes)
