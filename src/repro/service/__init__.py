"""Service layer: the stable, serializable API over the summarization core.

The paper's system is an interactive *service* (Sections 6-7): a user
submits an aggregate query once, the backend initializes caches, and
successive (k, L, D) tweaks are answered in milliseconds.  This package is
that shape as a library subsystem:

``repro.service.api``
    Typed, schema-versioned request/response dataclasses with
    ``to_dict``/``from_dict`` JSON round-tripping — the wire format every
    front end (CLI ``--json``, ``repro-serve``, examples, benchmarks, a
    future HTTP server) speaks.
``repro.service.engine``
    :class:`Engine`: owns named answer sets plus LRU-bounded, thread-safe
    caches of cluster pools and precomputed solution stores, so concurrent
    sessions share initialization work.
``repro.service.serve``
    The transport-agnostic :class:`Dispatcher` (admin kinds, bounds,
    shutdown control flow) plus the JSON-lines loop over arbitrary text
    streams backing the ``repro-serve`` CLI mode.  The concurrent TCP
    transport lives one layer up, in :mod:`repro.server`.

Quickstart::

    from repro.service import Engine, SummaryRequest

    engine = Engine()
    engine.register_dataset("ratings", answers)
    response = engine.submit(
        SummaryRequest(dataset="ratings", k=4, L=8, D=2))
    print(response.objective, response.cache_hit)
"""

from repro.service.api import (
    SCHEMA_VERSION,
    ClusterDTO,
    ErrorResponse,
    ExpandedElementDTO,
    ExploreRequest,
    GuidanceRequest,
    GuidanceResponse,
    GuidanceSeriesDTO,
    SummaryRequest,
    SummaryResponse,
    parse_request,
    parse_response,
)
from repro.service.engine import CacheStats, Engine, EngineStats
from repro.service.serve import (
    DEFAULT_MAX_LINE_BYTES,
    DispatchOutcome,
    Dispatcher,
    serve,
)

__all__ = [
    "DEFAULT_MAX_LINE_BYTES",
    "SCHEMA_VERSION",
    "CacheStats",
    "ClusterDTO",
    "DispatchOutcome",
    "Dispatcher",
    "Engine",
    "EngineStats",
    "ErrorResponse",
    "ExpandedElementDTO",
    "ExploreRequest",
    "GuidanceRequest",
    "GuidanceResponse",
    "GuidanceSeriesDTO",
    "SummaryRequest",
    "SummaryResponse",
    "parse_request",
    "parse_response",
    "serve",
]
