"""Typed request/response contracts and their JSON wire format.

Every message is a flat JSON object carrying ``schema_version`` and
``kind``; the remaining keys are the dataclass fields.  ``from_dict`` is
strict: wrong schema version, unknown kind, missing required keys, and
unrecognized keys are all :class:`~repro.common.errors.SchemaError`s — a
typo'd request fails loudly at the boundary instead of deep inside an
algorithm.

Requests
--------
``summary``   one algorithm invocation for (k, L, D)      -> ``summary_response``
``explore``   retrieval from the precomputed (k, D) store -> ``summary_response``
``guidance``  the Figure 2 parameter-selection curves     -> ``guidance_response``

Every response reports ``cache_hit`` (did the engine reuse an initialized
pool/store?) plus the ``init_seconds``/``algo_seconds`` phase split the
paper's figures use, so clients can reproduce Figure 7-style accounting
without instrumenting the engine.

The full field-by-field specification, the strictness/versioning policy
(why *adding* fields is breaking but adding keys inside the open
``phase_seconds``/``options`` maps is not), and JSON-lines serve-loop
examples live in ``docs/WIRE_PROTOCOL.md``.
"""

from __future__ import annotations

import json
from dataclasses import MISSING, asdict, dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.common.errors import SchemaError
from repro.core.bitset import DEFAULT_KERNEL, KERNEL_CHOICES

#: Version stamp carried by every wire message; bump on breaking changes.
#: Because parsing is strict (unknown keys rejected), *adding* response
#: fields is breaking too.  v2: summary_response gained ``kernel`` +
#: ``phase_seconds``; explore/guidance requests accept ``kernel``.
SCHEMA_VERSION = 2


def _check_envelope(payload: Mapping[str, Any], kind: str) -> None:
    if not isinstance(payload, Mapping):
        raise SchemaError("wire payload must be a JSON object, got %s"
                          % type(payload).__name__)
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            "unsupported schema_version %r (this build speaks %d)"
            % (version, SCHEMA_VERSION)
        )
    if payload.get("kind") != kind:
        raise SchemaError(
            "expected kind=%r, got %r" % (kind, payload.get("kind"))
        )


def _take_fields(cls, payload: Mapping[str, Any]) -> dict[str, Any]:
    """Extract the dataclass fields of *cls* from *payload*, strictly."""
    spec = [f for f in fields(cls) if f.init]
    names = {f.name for f in spec}
    extra = sorted(set(payload) - names - {"schema_version", "kind"})
    if extra:
        raise SchemaError(
            "%s does not accept key(s) %s; accepted: %s"
            % (payload.get("kind"), extra, sorted(names))
        )
    missing = sorted(
        f.name for f in spec
        if f.name not in payload
        and f.default is MISSING
        and f.default_factory is MISSING
    )
    if missing:
        raise SchemaError(
            "%s is missing required key(s) %s"
            % (payload.get("kind"), missing)
        )
    return {name: payload[name] for name in names if name in payload}


class _WireMessage:
    """Shared to_dict/to_json/from_dict/from_json plumbing."""

    kind: str = ""

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
        }
        payload.update(asdict(self))
        return payload

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, **kwargs)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]):
        _check_envelope(payload, cls.kind)
        return cls(**_take_fields(cls, payload))

    @classmethod
    def from_json(cls, text: str):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise SchemaError("invalid JSON: %s" % error) from None
        return cls.from_dict(payload)


# -- requests ----------------------------------------------------------------


def _require_int(name: str, value: Any, optional: bool = False) -> None:
    if value is None and optional:
        return
    if isinstance(value, bool) or not isinstance(value, int):
        raise SchemaError(
            "%s must be an integer, got %r" % (name, value)
        )


def _require_str(name: str, value: Any) -> None:
    if not isinstance(value, str):
        raise SchemaError("%s must be a string, got %r" % (name, value))


def _require_kernel(value: Any) -> None:
    if value not in KERNEL_CHOICES:
        raise SchemaError(
            "kernel must be one of %r, got %r"
            % (list(KERNEL_CHOICES), value)
        )


def _require_int_pair(name: str, value: Any) -> None:
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise SchemaError(
            "%s must be a [low, high] pair, got %r" % (name, value)
        )
    for item in value:
        _require_int("%s entries" % name, item)


def _require_ints(name: str, value: Any) -> None:
    if not isinstance(value, (list, tuple)):
        raise SchemaError(
            "%s must be an array of integers, got %r" % (name, value)
        )
    for item in value:
        _require_int("%s entries" % name, item)


@dataclass(frozen=True)
class SummaryRequest(_WireMessage):
    """One algorithm invocation for (k, L, D) on a named dataset.

    ``k``/``L`` follow the optional-parameter semantics of Section 4.1:
    ``k=None`` means n (no size limit), ``L=None`` means k.  ``options``
    are algorithm keyword options, validated against the registry's
    declared kwargs before anything runs.  ``include_elements`` asks for
    the second display layer (Figure 1c) inline in the response.
    """

    kind = "summary"

    dataset: str
    k: int | None = None
    L: int | None = None
    D: int = 0
    algorithm: str = "hybrid"
    mapping: str = "eager"
    options: dict[str, Any] = field(default_factory=dict)
    include_elements: bool = False

    def __post_init__(self) -> None:
        _require_str("dataset", self.dataset)
        _require_int("k", self.k, optional=True)
        _require_int("L", self.L, optional=True)
        _require_int("D", self.D)
        _require_str("algorithm", self.algorithm)
        if not isinstance(self.options, dict):
            raise SchemaError(
                "options must be an object, got %r" % (self.options,)
            )


@dataclass(frozen=True)
class ExploreRequest(_WireMessage):
    """Serve (k, D) from the precomputed store for ``(L, k_range, d_values)``.

    The first explore against a given store pays the sweep cost (Section
    6.2); every later one is a retrieval.  Responds with a
    :class:`SummaryResponse` whose ``algorithm`` is ``"precomputed"``.
    """

    kind = "explore"

    dataset: str
    k: int
    L: int
    D: int
    k_range: tuple[int, int] = (1, 1)
    d_values: tuple[int, ...] = (0,)
    mapping: str = "eager"
    kernel: str = DEFAULT_KERNEL
    include_elements: bool = False

    def __post_init__(self) -> None:
        _require_str("dataset", self.dataset)
        for name in ("k", "L", "D"):
            _require_int(name, getattr(self, name))
        _require_int_pair("k_range", self.k_range)
        _require_ints("d_values", self.d_values)
        _require_kernel(self.kernel)
        object.__setattr__(self, "k_range", tuple(self.k_range))
        object.__setattr__(self, "d_values", tuple(self.d_values))


@dataclass(frozen=True)
class GuidanceRequest(_WireMessage):
    """The Figure 2 parameter-selection view for one L."""

    kind = "guidance"

    dataset: str
    L: int
    k_range: tuple[int, int]
    d_values: tuple[int, ...]
    mapping: str = "eager"
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        _require_str("dataset", self.dataset)
        _require_int("L", self.L)
        _require_int_pair("k_range", self.k_range)
        _require_ints("d_values", self.d_values)
        _require_kernel(self.kernel)
        object.__setattr__(self, "k_range", tuple(self.k_range))
        object.__setattr__(self, "d_values", tuple(self.d_values))


# -- responses ---------------------------------------------------------------


@dataclass(frozen=True)
class ExpandedElementDTO:
    """One second-layer row: an original element with rank and value."""

    rank: int
    values: tuple[Any, ...]
    value: float


@dataclass(frozen=True)
class ClusterDTO:
    """One cluster of a solution, decoded for display.

    ``pattern`` holds raw attribute values with ``"*"`` for don't-care
    positions; ``elements`` is only populated when the request asked for
    ``include_elements``.
    """

    pattern: tuple[Any, ...]
    avg: float
    size: int
    elements: tuple[ExpandedElementDTO, ...] = ()


@dataclass(frozen=True)
class SummaryResponse(_WireMessage):
    """Solution plus the paper's timing split and engine cache metadata.

    ``kernel`` names the evaluation substrate that produced the solution
    (``"bitset"`` or ``"python"``; ``"none"`` for algorithms with no
    kernelized path, e.g. lower-bound); ``phase_seconds`` is an *open*
    float map: a finer-grained breakdown of where *this request's* wall
    clock went (e.g. ``pool_build`` vs ``merge_loop`` vs ``serialize``;
    cached phases report 0.0) plus the merge engine's ``argmax_*``
    counters (counts, not seconds: rounds, candidate groups, marginal
    evaluations, refined-bound skips, and the heap-mode 0/1 flag) — so
    kernel, cache, or argmax regressions are all visible directly from
    the wire format.  Adding keys here is explicitly non-breaking; see
    ``docs/WIRE_PROTOCOL.md``.
    """

    kind = "summary_response"

    dataset: str
    k: int
    L: int
    D: int
    algorithm: str
    objective: float
    solution_size: int
    covered_count: int
    clusters: tuple[ClusterDTO, ...]
    cache_hit: bool
    init_seconds: float
    algo_seconds: float
    kernel: str = DEFAULT_KERNEL
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.init_seconds + self.algo_seconds

    def to_dict(self) -> dict[str, Any]:
        payload = super().to_dict()
        payload["total_seconds"] = self.total_seconds
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SummaryResponse":
        payload = dict(payload)
        payload.pop("total_seconds", None)  # derived, not a field
        _check_envelope(payload, cls.kind)
        data = _take_fields(cls, payload)
        if "phase_seconds" in data:
            data["phase_seconds"] = dict(data["phase_seconds"])
        data["clusters"] = tuple(
            ClusterDTO(
                pattern=tuple(c["pattern"]),
                avg=c["avg"],
                size=c["size"],
                elements=tuple(
                    ExpandedElementDTO(
                        rank=e["rank"],
                        values=tuple(e["values"]),
                        value=e["value"],
                    )
                    for e in c.get("elements", ())
                ),
            )
            for c in data.get("clusters", ())
        )
        return cls(**data)


@dataclass(frozen=True)
class GuidanceSeriesDTO:
    """One curve of the guidance view, with the analysis artifacts."""

    D: int
    k_values: tuple[int, ...]
    averages: tuple[float, ...]
    knee_points: tuple[int, ...] = ()
    flat_regions: tuple[tuple[int, int], ...] = ()


@dataclass(frozen=True)
class GuidanceResponse(_WireMessage):
    kind = "guidance_response"

    dataset: str
    L: int
    k_range: tuple[int, int]
    d_values: tuple[int, ...]
    series: tuple[GuidanceSeriesDTO, ...]
    cache_hit: bool
    init_seconds: float
    algo_seconds: float

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "GuidanceResponse":
        _check_envelope(payload, cls.kind)
        data = _take_fields(cls, payload)
        data["k_range"] = tuple(data["k_range"])
        data["d_values"] = tuple(data["d_values"])
        data["series"] = tuple(
            GuidanceSeriesDTO(
                D=s["D"],
                k_values=tuple(s["k_values"]),
                averages=tuple(s["averages"]),
                knee_points=tuple(s.get("knee_points", ())),
                flat_regions=tuple(
                    tuple(r) for r in s.get("flat_regions", ())
                ),
            )
            for s in data.get("series", ())
        )
        return cls(**data)


@dataclass(frozen=True)
class ErrorResponse(_WireMessage):
    """What a failed request gets back instead of a stack trace."""

    kind = "error"

    error_type: str
    message: str


# -- dispatch ----------------------------------------------------------------

_REQUEST_KINDS = {
    cls.kind: cls for cls in (SummaryRequest, ExploreRequest, GuidanceRequest)
}
_RESPONSE_KINDS = {
    cls.kind: cls
    for cls in (SummaryResponse, GuidanceResponse, ErrorResponse)
}


def parse_request(payload: Mapping[str, Any]):
    """Dispatch a wire dict to the matching request dataclass."""
    kind = payload.get("kind") if isinstance(payload, Mapping) else None
    try:
        cls = _REQUEST_KINDS[kind]
    except KeyError:
        raise SchemaError(
            "unknown request kind %r; expected one of %s"
            % (kind, sorted(_REQUEST_KINDS))
        ) from None
    return cls.from_dict(payload)


def parse_response(payload: Mapping[str, Any]):
    """Dispatch a wire dict to the matching response dataclass."""
    kind = payload.get("kind") if isinstance(payload, Mapping) else None
    try:
        cls = _RESPONSE_KINDS[kind]
    except KeyError:
        raise SchemaError(
            "unknown response kind %r; expected one of %s"
            % (kind, sorted(_RESPONSE_KINDS))
        ) from None
    return cls.from_dict(payload)
