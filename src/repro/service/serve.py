"""JSON-lines request/response loop — the transport behind ``repro-serve``.

One request object per input line, one response object per output line,
in order.  Besides the three analytical kinds from :mod:`repro.service.api`
the loop answers a few admin kinds so a client can drive a cold server end
to end:

``{"kind": "ping"}``
    -> ``{"kind": "pong", ...}`` (liveness / version probe).
``{"kind": "load_csv", "path": ..., "name"?: ..., "sql"?: ...}``
    Load a CSV (optionally through the restricted SQL template) and
    register it as a dataset.
``{"kind": "datasets"}`` / ``{"kind": "algorithms"}`` / ``{"kind": "stats"}``
    Introspection: registered datasets, the algorithm registry with
    metadata, engine cache counters.

Malformed lines never kill the loop; they produce ``kind="error"``
responses so a misbehaving client sees its own mistakes inline.
"""

from __future__ import annotations

import json
from typing import Any, Callable, IO

from repro.common.errors import ReproError, SchemaError
from repro.core.registry import algorithm_infos
from repro.service.api import SCHEMA_VERSION, ErrorResponse
from repro.service.engine import Engine


def _error_payload(error: Exception) -> dict[str, Any]:
    return ErrorResponse(
        error_type=type(error).__name__, message=str(error)
    ).to_dict()


def _handle_admin(engine: Engine, payload: dict[str, Any]) -> dict[str, Any] | None:
    """Serve the admin kinds; None means "not an admin request"."""
    kind = payload.get("kind")
    if kind == "ping":
        from repro import __version__

        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "pong",
            "version": __version__,
        }
    if kind == "load_csv":
        from repro.query.csv_io import answer_set_from_relation, read_csv
        from repro.query.sql import execute_sql

        path = payload.get("path")
        if not isinstance(path, str):
            raise SchemaError("load_csv needs a string 'path'")
        name = payload.get("name")
        relation = read_csv(path, name=name)
        if payload.get("sql"):
            answers = execute_sql(payload["sql"], relation).to_answer_set()
        else:
            answers = answer_set_from_relation(relation)
        engine.register_dataset(
            relation.name, answers, replace=bool(payload.get("replace"))
        )
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "dataset_loaded",
            "dataset": relation.name,
            "n": answers.n,
            "m": answers.m,
        }
    if kind == "datasets":
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "datasets",
            "datasets": engine.dataset_names(),
        }
    if kind == "algorithms":
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "algorithms",
            "algorithms": [info.describe() for info in algorithm_infos()],
        }
    if kind == "stats":
        stats = engine.stats()
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "stats",
            "requests": stats.requests,
            "datasets": list(stats.datasets),
            "pools": {
                "hits": stats.pools.hits,
                "misses": stats.pools.misses,
                "evictions": stats.pools.evictions,
                "size": stats.pools.size,
                "hit_rate": stats.pools.hit_rate,
            },
            "stores": {
                "hits": stats.stores.hits,
                "misses": stats.stores.misses,
                "evictions": stats.stores.evictions,
                "size": stats.stores.size,
                "hit_rate": stats.stores.hit_rate,
            },
        }
    return None


def serve_line(engine: Engine, line: str) -> dict[str, Any] | None:
    """Serve one JSON line; None for blank lines (skipped, no response)."""
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as error:
        return _error_payload(SchemaError("invalid JSON: %s" % error))
    if not isinstance(payload, dict):
        return _error_payload(
            SchemaError("each line must be a JSON object")
        )
    try:
        admin = _handle_admin(engine, payload)
    except ReproError as error:
        return _error_payload(error)
    except OSError as error:
        return _error_payload(error)
    if admin is not None:
        return admin
    return engine.submit_dict(payload)


def serve(
    input_stream: IO[str],
    output_stream: IO[str],
    engine: Engine | None = None,
    on_response: Callable[[dict[str, Any]], None] | None = None,
) -> int:
    """Run the loop until EOF; returns the number of responses written."""
    engine = engine if engine is not None else Engine()
    written = 0
    for line in input_stream:
        response = serve_line(engine, line)
        if response is None:
            continue
        output_stream.write(json.dumps(response, sort_keys=True) + "\n")
        output_stream.flush()
        if on_response is not None:
            on_response(response)
        written += 1
    return written
