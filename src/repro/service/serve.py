"""Transport-agnostic JSON-lines dispatch — the core behind ``repro-serve``.

One request object per input line, one response object per output line,
in order.  :class:`Dispatcher` turns a raw line (``str`` or ``bytes``)
into a response payload plus control flow, and is shared by both
transports: the stdio loop (:func:`serve`) and the concurrent TCP server
(:mod:`repro.server.tcp`).  Besides the three analytical kinds from
:mod:`repro.service.api` it answers a few admin kinds so a client can
drive a cold server end to end:

``{"kind": "ping"}``
    -> ``{"kind": "pong", ...}`` (liveness / version probe).
``{"kind": "load_csv", "path": ..., "name"?: ..., "sql"?: ...}``
    Load a CSV (optionally through the restricted SQL template) and
    register it as a dataset.
``{"kind": "append_rows", "dataset": ..., "rows": [[...], ...], "values": [...]}``
    Append rows to a live dataset -> ``{"kind": "rows_appended", ...}``;
    cached pools are maintained incrementally and the dataset version is
    bumped so stale cached state is unreachable.
``{"kind": "datasets"}`` / ``{"kind": "algorithms"}`` / ``{"kind": "stats"}``
    Introspection: registered datasets, the algorithm registry with
    metadata, engine cache counters (plus transport counters and — on the
    TCP server — scheduler/latency metrics).
``{"kind": "shutdown", "scope"?: "session" | "server"}``
    Deterministic termination: the loop (or TCP connection) answers
    ``shutdown_ack`` and ends the session; ``scope="server"`` also stops
    the whole TCP server.

Hostile input never kills the loop: malformed JSON, lines longer than
``max_line_bytes`` (``error_type="LineTooLong"``), and undecodable bytes
all produce ``kind="error"`` responses so a misbehaving client sees its
own mistakes inline.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, IO

from repro.common.budget import Budget
from repro.common.errors import (
    AuthError,
    LineTooLong,
    QuotaExceeded,
    ReproError,
    SchemaError,
    ShuttingDown,
)
from repro.core.registry import algorithm_infos
from repro.obs import Telemetry
from repro.service.api import SCHEMA_VERSION, ErrorResponse
from repro.service.engine import CacheStats, Engine

#: Request kinds that cost real computation — the ones per-user quotas
#: are charged against (admin/introspection kinds stay free).
ANALYTIC_KINDS = frozenset({"summary", "explore", "guidance"})

#: Default bound on one request line.  Counted in bytes of UTF-8; a line
#: beyond it is discarded (never buffered whole) and answered with
#: ``error_type="LineTooLong"``.
DEFAULT_MAX_LINE_BYTES = 1 << 20

#: ``shutdown`` scopes: end just this session, or the whole server.
SESSION_SCOPE = "session"
SERVER_SCOPE = "server"

#: Give up on a text stream after this many *consecutive* undecodable
#: reads — a safety valve so a stream whose decoder cannot make progress
#: does not spin the loop forever.
_MAX_CONSECUTIVE_DECODE_ERRORS = 100


def _error_payload(error: Exception) -> dict[str, Any]:
    return ErrorResponse(
        error_type=type(error).__name__, message=str(error)
    ).to_dict()


def _status_of(response: Any) -> str:
    """A trace's terminal status: ``"ok"`` or the error type."""
    if isinstance(response, dict) and response.get("kind") == "error":
        return str(response.get("error_type") or "error")
    return "ok"


def _cache_stats_dict(stats: CacheStats) -> dict[str, Any]:
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "coalesced": stats.coalesced,
        "evictions": stats.evictions,
        "size": stats.size,
        "hit_rate": stats.hit_rate,
    }


@dataclass
class DispatchOutcome:
    """What one dispatched line amounts to.

    ``response`` is the payload to write back (``None`` for blank lines),
    or a :class:`concurrent.futures.Future` resolving to it when the
    dispatcher's ``submit`` hook defers computation (the TCP scheduler
    path).  ``shutdown`` is ``None`` or the acknowledged scope; the
    transport ends the session (and, for ``"server"``, the server) after
    writing the response.  ``kind`` echoes the request kind when one could
    be parsed (``"invalid"`` otherwise) — transports key latency metrics
    on it.
    """

    response: Any = None
    shutdown: str | None = None
    kind: str | None = None


class Dispatcher:
    """Shared per-line request handling for every transport.

    Parameters
    ----------
    engine:
        The shared :class:`~repro.service.engine.Engine`.
    max_line_bytes:
        Reject (with ``LineTooLong``) any request line longer than this.
    submit:
        Hook for the analytical kinds (summary/explore/guidance).  Defaults
        to ``engine.submit_dict`` (synchronous, in-order — the stdio loop);
        the TCP server passes its sharded scheduler's ``submit``, which
        returns a :class:`~concurrent.futures.Future` the transport awaits.
        Admin kinds are always handled synchronously inside ``dispatch``
        (the TCP server therefore runs the whole dispatch on an executor
        thread — ``load_csv`` does real I/O and parsing).
    extra_stats:
        Optional callable merged into ``stats`` responses under the
        ``"server"`` key (the TCP server's scheduler/latency metrics).
    auth:
        Optional :class:`repro.web.auth.AuthService`.  When set, every
        request except ``ping`` (the liveness probe, mirroring the open
        ``/healthz`` route) must carry a valid ``auth`` envelope field;
        failures become ``error_type="AuthError"`` responses.  Unset —
        the backward-compatible open mode — any ``auth`` field is
        popped and ignored.
    quota:
        Optional :class:`repro.web.quota.QuotaService`.  Charged per
        authenticated user (or the shared anonymous identity on an open
        server) for the analytical kinds only; an empty bucket becomes
        an ``error_type="QuotaExceeded"`` response.
    default_deadline_ms:
        Optional server-side deadline applied to every analytical
        request that does not carry its own ``deadline_ms`` envelope
        field (the ``repro-serve --request-timeout`` knob).  ``None``
        (the default) leaves undeadlined requests unbounded.
    durability:
        Optional :class:`~repro.durability.manager.DurabilityManager`.
        Only read for introspection — its counters ride in ``stats``
        responses under ``"durability"`` (absent on an in-memory
        server, so durability-off wire bytes are unchanged).
    lifecycle:
        Optional :class:`~repro.server.lifecycle.ServerLifecycle`.
        When it reports draining, mutations are rejected like after a
        locally-acked server shutdown (see below).
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When present *and*
        armed, each analytical request gets a
        :class:`~repro.obs.tracing.RequestTrace` born here at the edge
        (the ``request_id`` argument to :meth:`dispatch_payload` — the
        HTTP ``X-Request-Id`` header — overrides the generated id),
        threaded to the ``submit`` hook, finished when the response
        resolves, and recorded in the trace ring buffer served by the
        ``trace`` admin kind.  A request carrying ``trace: true`` in its
        envelope additionally gets the trace tree inlined under an open
        ``"trace"`` key in its response.  The ``trace`` envelope field is
        *always* consumed (armed or not), so wire bytes and single-flight
        keys never depend on the telemetry switch.

    The dispatcher also counts the rejections it served (``oversized`` /
    ``undecodable`` / ``malformed`` hostile input, plus ``auth`` and
    ``quota`` denials, sync-path ``deadline`` expiries, and ``draining``
    mutation rejections); they ride in every ``stats`` response under
    ``"rejected"``.

    Once a ``shutdown`` with ``scope="server"`` has been acked (or the
    attached lifecycle reports draining), ``append_rows`` is refused
    with ``error_type="ShuttingDown"``: the drain path is about to take
    the WAL's final flush+fsync, and a mutation slipping in behind it
    would be acked yet lost on the next boot.
    """

    def __init__(
        self,
        engine: Engine,
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        submit: Callable[..., Any] | None = None,
        extra_stats: Callable[[], dict[str, Any]] | None = None,
        auth=None,
        quota=None,
        default_deadline_ms: float | None = None,
        telemetry: Telemetry | None = None,
        durability=None,
        lifecycle=None,
    ) -> None:
        if max_line_bytes < 2:
            raise ValueError(
                "max_line_bytes must be >= 2, got %d" % max_line_bytes
            )
        self.engine = engine
        self.max_line_bytes = max_line_bytes
        self._submit = submit if submit is not None else engine.submit_dict
        self._extra_stats = extra_stats
        self.auth = auth
        self.quota = quota
        if default_deadline_ms is not None and default_deadline_ms <= 0:
            raise ValueError(
                "default_deadline_ms must be positive, got %r"
                % (default_deadline_ms,)
            )
        self.default_deadline_ms = default_deadline_ms
        self.telemetry = telemetry
        self.durability = durability
        self.lifecycle = lifecycle
        self._counts_lock = threading.Lock()
        self.oversized = 0
        self.undecodable = 0
        self.malformed = 0
        self.auth_rejected = 0
        self.quota_rejected = 0
        self.deadline_exceeded = 0
        self.draining_rejected = 0
        self._draining = False

    # -- hostile-input responses (shared with the TCP framing layer) --------

    def oversized_error(self) -> dict[str, Any]:
        with self._counts_lock:
            self.oversized += 1
        return _error_payload(LineTooLong(
            "request line exceeds max_line_bytes=%d; line discarded"
            % self.max_line_bytes
        ))

    def undecodable_error(self) -> dict[str, Any]:
        with self._counts_lock:
            self.undecodable += 1
        return _error_payload(SchemaError(
            "request line is not valid UTF-8"
        ))

    def _malformed_error(self, error: Exception) -> dict[str, Any]:
        with self._counts_lock:
            self.malformed += 1
        return _error_payload(error)

    # -- dispatch ------------------------------------------------------------

    def dispatch_line(self, line: str | bytes) -> DispatchOutcome:
        """Serve one raw line: decode, bound, parse, route."""
        if isinstance(line, bytes):
            if len(line.rstrip(b"\r\n")) > self.max_line_bytes:
                return DispatchOutcome(self.oversized_error(), kind="invalid")
            try:
                line = line.decode("utf-8")
            except UnicodeDecodeError:
                return DispatchOutcome(
                    self.undecodable_error(), kind="invalid"
                )
        stripped = line.strip()
        if not stripped:
            return DispatchOutcome()
        if len(stripped.encode("utf-8")) > self.max_line_bytes:
            return DispatchOutcome(self.oversized_error(), kind="invalid")
        try:
            payload = json.loads(stripped)
        except json.JSONDecodeError as error:
            return DispatchOutcome(
                self._malformed_error(SchemaError(
                    "invalid JSON: %s" % error
                )),
                kind="invalid",
            )
        if not isinstance(payload, dict):
            return DispatchOutcome(
                self._malformed_error(SchemaError(
                    "each line must be a JSON object"
                )),
                kind="invalid",
            )
        return self.dispatch_payload(payload)

    def dispatch_payload(
        self, payload: dict[str, Any], request_id: str | None = None
    ) -> DispatchOutcome:
        """Serve one parsed request object (admin inline, analytics via
        the ``submit`` hook).

        The ``auth``, ``deadline_ms``, and ``trace`` envelope fields are
        consumed here — popped before the payload reaches strict request
        parsing or the single-flight key, so identical requests from
        different users (or with different deadlines, or asking for
        inline traces) still hash identically.  ``deadline_ms`` (or the
        server default) becomes a :class:`~repro.common.budget.Budget`
        handed to the ``submit`` hook; it applies to the analytical
        kinds only (admin kinds are served inline and ignore it).
        *request_id* is a transport-supplied trace id (the HTTP
        ``X-Request-Id`` header); ignored unless tracing is armed.
        """
        kind = payload.get("kind")
        kind_label = kind if isinstance(kind, str) else "invalid"
        token = payload.pop("auth", None)
        wants_trace = payload.pop("trace", None)
        if wants_trace is not None and not isinstance(wants_trace, bool):
            return DispatchOutcome(
                self._malformed_error(SchemaError(
                    "trace must be a boolean, got %r" % (wants_trace,)
                )),
                kind=kind_label,
            )
        wants_trace = bool(wants_trace)
        deadline_ms = payload.pop("deadline_ms", None)
        if deadline_ms is not None and (
            isinstance(deadline_ms, bool)
            or not isinstance(deadline_ms, (int, float))
            or deadline_ms <= 0
        ):
            return DispatchOutcome(
                self._malformed_error(SchemaError(
                    "deadline_ms must be a positive number of "
                    "milliseconds, got %r" % (deadline_ms,)
                )),
                kind=kind_label,
            )
        user = "anonymous"
        if self.auth is not None and kind != "ping":
            try:
                user = self.auth.authenticate(token)
            except AuthError as error:
                with self._counts_lock:
                    self.auth_rejected += 1
                return DispatchOutcome(_error_payload(error), kind=kind_label)
        if self.quota is not None and kind in ANALYTIC_KINDS:
            try:
                self.quota.charge(user, kind)
            except QuotaExceeded as error:
                with self._counts_lock:
                    self.quota_rejected += 1
                return DispatchOutcome(_error_payload(error), kind=kind_label)
        try:
            admin = self._handle_admin(payload)
        except ReproError as error:
            return DispatchOutcome(_error_payload(error), kind=kind_label)
        except OSError as error:
            return DispatchOutcome(_error_payload(error), kind=kind_label)
        if admin is not None:
            response, scope = admin
            return DispatchOutcome(response, shutdown=scope, kind=kind_label)
        trace = None
        if (
            self.telemetry is not None
            and self.telemetry.tracing
            and kind in ANALYTIC_KINDS
        ):
            trace = self.telemetry.begin_trace(kind_label, user, request_id)
        effective_ms = (
            deadline_ms if deadline_ms is not None
            else self.default_deadline_ms
        )
        submit_kwargs: dict[str, Any] = {}
        if effective_ms is not None:
            submit_kwargs["budget"] = Budget.from_deadline_ms(effective_ms)
        if trace is not None:
            submit_kwargs["trace"] = trace
        response = self._submit(payload, **submit_kwargs)
        if isinstance(response, Future):
            if trace is not None:
                response = self._finalize_future(response, trace, wants_trace)
            return DispatchOutcome(response, kind=kind_label)
        if (
            effective_ms is not None
            and isinstance(response, dict)
            and response.get("error_type") == "DeadlineExceeded"
        ):
            # Sync (stdio) path only; the TCP scheduler counts its own
            # deadline events in its stats.
            with self._counts_lock:
                self.deadline_exceeded += 1
        if trace is not None:
            tree = self.telemetry.finish_trace(trace, _status_of(response))
            if wants_trace and isinstance(response, dict):
                response = dict(response)
                response["trace"] = tree
        return DispatchOutcome(response, kind=kind_label)

    def _finalize_future(
        self, inner: Future, trace, wants_trace: bool
    ) -> Future:
        """Chain a future that finishes *trace* (and injects the inline
        tree when asked) once the scheduler resolves the response."""
        telemetry = self.telemetry
        outer: Future = Future()

        def _done(resolved: Future) -> None:
            try:
                response = resolved.result()
            except BaseException as error:
                telemetry.finish_trace(trace, type(error).__name__)
                outer.set_exception(error)
                return
            tree = telemetry.finish_trace(trace, _status_of(response))
            if wants_trace and isinstance(response, dict):
                # Coalesced followers share the leader's response object;
                # copy before growing it a per-request "trace" key.
                response = dict(response)
                response["trace"] = tree
            outer.set_result(response)

        inner.add_done_callback(_done)
        return outer

    # -- admin kinds ---------------------------------------------------------

    def _handle_admin(
        self, payload: dict[str, Any]
    ) -> tuple[dict[str, Any], str | None] | None:
        """Serve the admin kinds; None means "not an admin request"."""
        kind = payload.get("kind")
        if kind == "ping":
            from repro import __version__

            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "pong",
                "version": __version__,
            }, None
        if kind == "shutdown":
            scope = payload.get("scope", SESSION_SCOPE)
            if scope not in (SESSION_SCOPE, SERVER_SCOPE):
                raise SchemaError(
                    "shutdown scope must be %r or %r, got %r"
                    % (SESSION_SCOPE, SERVER_SCOPE, scope)
                )
            if scope == SERVER_SCOPE:
                # From the moment this ack is built, mutations are done:
                # the transport will drain and take the WAL's final
                # fsync, and an append racing that window would be acked
                # but lost on the next boot.
                self._draining = True
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "shutdown_ack",
                "scope": scope,
            }, scope
        if kind == "load_csv":
            from repro.query.csv_io import answer_set_from_relation, read_csv
            from repro.query.sql import execute_sql

            path = payload.get("path")
            if not isinstance(path, str):
                raise SchemaError("load_csv needs a string 'path'")
            name = payload.get("name")
            relation = read_csv(path, name=name)
            if payload.get("sql"):
                answers = execute_sql(payload["sql"], relation).to_answer_set()
            else:
                answers = answer_set_from_relation(relation)
            self.engine.register_dataset(
                relation.name, answers, replace=bool(payload.get("replace"))
            )
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "dataset_loaded",
                "dataset": relation.name,
                "n": answers.n,
                "m": answers.m,
            }, None
        if kind == "append_rows":
            # Live update stream: append rows to a registered dataset.
            # The engine maintains cached pools incrementally (mask
            # splice, bit-identical to a rebuild) and bumps the dataset
            # version so stale stores are unreachable; the response
            # reports both.  Auth-gated like every non-ping kind when the
            # server is token-secured.
            if self._draining or (
                self.lifecycle is not None and self.lifecycle.is_draining
            ):
                with self._counts_lock:
                    self.draining_rejected += 1
                raise ShuttingDown(
                    "server is draining; append_rows rejected "
                    "(reconnect to the replacement server and retry)"
                )
            dataset = payload.get("dataset")
            if not isinstance(dataset, str):
                raise SchemaError("append_rows needs a string 'dataset'")
            rows = payload.get("rows")
            if (
                not isinstance(rows, list)
                or not rows
                or not all(isinstance(row, list) for row in rows)
            ):
                raise SchemaError(
                    "append_rows needs a non-empty list of row lists "
                    "in 'rows'"
                )
            values = payload.get("values")
            if (
                not isinstance(values, list)
                or len(values) != len(rows)
                or not all(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    for value in values
                )
            ):
                raise SchemaError(
                    "append_rows needs numeric 'values', one per row"
                )
            result = self.engine.append_rows(
                dataset, [tuple(row) for row in rows], values
            )
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "rows_appended",
                "dataset": dataset,
                **result,
            }, None
        if kind == "datasets":
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "datasets",
                "datasets": self.engine.dataset_names(),
            }, None
        if kind == "faults":
            # Remote fault-injection control (chaos tests and
            # bench_chaos.py): {"kind": "faults"} lists the armed rules;
            # "clear": true disarms everything; "arm": "<spec>" arms
            # rules in the REPRO_FAULTS spec syntax, with an optional
            # integer "seed" re-seeding the deterministic RNG first.
            # On a token-secured server this kind requires auth like any
            # other admin kind.
            from repro.common import faults

            if payload.get("clear"):
                faults.clear()
            spec = payload.get("arm")
            if spec is not None:
                if not isinstance(spec, str):
                    raise SchemaError(
                        "faults 'arm' must be a spec string "
                        "(site=behavior[:probability[:param[:times]]])"
                    )
                seed = payload.get("seed")
                if seed is not None and (
                    isinstance(seed, bool) or not isinstance(seed, int)
                ):
                    raise SchemaError(
                        "faults 'seed' must be an integer"
                    )
                faults.arm_from_spec(spec, seed=seed)
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "faults",
                "armed": faults.describe(),
            }, None
        if kind == "algorithms":
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "algorithms",
                "algorithms": [info.describe() for info in algorithm_infos()],
            }, None
        if kind == "trace":
            # The trace ring buffer: N most recent + N slowest finished
            # request traces.  Auth-gated like every non-ping kind when
            # the server is token-secured; present (with armed=false and
            # empty lists) even on an untraced server so clients can
            # probe capability without special-casing errors.
            if self.telemetry is None:
                return {
                    "schema_version": SCHEMA_VERSION,
                    "kind": "trace",
                    "armed": False,
                    "capacity": 0,
                    "recorded": 0,
                    "recent": [],
                    "slowest": [],
                }, None
            return {
                "schema_version": SCHEMA_VERSION,
                "kind": "trace",
                "armed": self.telemetry.tracing,
                **self.telemetry.traces(),
            }, None
        if kind == "stats":
            stats = self.engine.stats()
            with self._counts_lock:
                rejected = {
                    "oversized": self.oversized,
                    "undecodable": self.undecodable,
                    "malformed": self.malformed,
                    "auth": self.auth_rejected,
                    "quota": self.quota_rejected,
                    "deadline": self.deadline_exceeded,
                    "draining": self.draining_rejected,
                }
            response: dict[str, Any] = {
                "schema_version": SCHEMA_VERSION,
                "kind": "stats",
                "requests": stats.requests,
                "datasets": list(stats.datasets),
                "pools": _cache_stats_dict(stats.pools),
                "stores": _cache_stats_dict(stats.stores),
                "rejected": rejected,
            }
            if self.durability is not None:
                # Present only on a durable server: in-memory stats
                # responses keep their pre-durability shape.
                response["durability"] = self.durability.stats()
            if self.lifecycle is not None:
                response["lifecycle"] = self.lifecycle.describe()
            if self._extra_stats is not None:
                response["server"] = self._extra_stats()
            return response, None
        return None


def serve_line(engine: Engine, line: str) -> dict[str, Any] | None:
    """Serve one JSON line; None for blank lines (skipped, no response).

    Compatibility wrapper over :class:`Dispatcher` for callers that do not
    need shutdown control flow or transport counters.
    """
    return Dispatcher(engine).dispatch_line(line).response


def serve(
    input_stream: IO[str],
    output_stream: IO[str],
    engine: Engine | None = None,
    on_response: Callable[[dict[str, Any]], None] | None = None,
    max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
    dispatcher: Dispatcher | None = None,
) -> int:
    """Run the loop until EOF or ``shutdown``; returns responses written.

    EOF is a clean termination: the loop simply returns (a well-behaved
    client closes its end when done).  A ``{"kind": "shutdown"}`` request
    is the explicit equivalent — the loop answers ``shutdown_ack`` and
    returns, so clients that cannot close the stream (or want a positive
    acknowledgement) can still terminate the session deterministically.

    Reads are bounded: lines are pulled in chunks of at most
    ``max_line_bytes`` + 1 characters, so an oversized line is answered
    with ``LineTooLong`` and *discarded as it streams* — never buffered
    whole — matching the TCP transport's framing guarantee.
    """
    if dispatcher is None:
        dispatcher = Dispatcher(
            engine if engine is not None else Engine(),
            max_line_bytes=max_line_bytes,
        )
    # Every character is at least one UTF-8 byte, so a full chunk of
    # budget characters without a newline is already over the byte limit;
    # dispatch_line re-checks exact bytes for shorter lines.
    budget = dispatcher.max_line_bytes + 1
    written = 0
    decode_failures = 0
    discarding = False
    while True:
        try:
            line = input_stream.readline(budget)
        except UnicodeDecodeError:
            decode_failures += 1
            outcome = DispatchOutcome(
                dispatcher.undecodable_error(), kind="invalid"
            )
            if decode_failures >= _MAX_CONSECUTIVE_DECODE_ERRORS:
                outcome.shutdown = SESSION_SCOPE
        else:
            decode_failures = 0
            if not line:
                break  # clean EOF
            if discarding:
                # Tail chunks of a line already answered with LineTooLong.
                if line.endswith("\n"):
                    discarding = False
                continue
            if len(line) >= budget and not line.endswith("\n"):
                discarding = True
                outcome = DispatchOutcome(
                    dispatcher.oversized_error(), kind="invalid"
                )
            else:
                outcome = dispatcher.dispatch_line(line)
        response = outcome.response
        if response is None:
            continue
        if isinstance(response, Future):
            response = response.result()
        output_stream.write(json.dumps(response, sort_keys=True) + "\n")
        output_stream.flush()
        if on_response is not None:
            on_response(response)
        written += 1
        if outcome.shutdown is not None:
            break
    return written
