"""The shared engine: named datasets + LRU caches of initialized state.

Initialization (cluster generation + mapping, Section 6's "Init" phase)
dominates request latency, and the precomputation sweep (Section 6.2)
dominates exploration start-up.  The paper's prototype therefore keeps both
per query on the server; :class:`Engine` is that server-side state as an
object.  Front ends register an :class:`~repro.core.answers.AnswerSet`
under a name once and then submit wire-format requests; concurrent
sessions over the same dataset share pools and stores instead of each
rebuilding them.

Cache keys pin down everything that changes the cached object's content:

* pools are keyed by ``(dataset, version, L, mapping, mask_only,
  mask_repr)`` — the answer set *at a content version* (bumped by
  replace and append, so stale state is unreachable by key), the top-L
  slice the pool generalizes, the coverage-mapping strategy, whether
  frozenset coverage is materialized, and the mask representation
  (``"int"`` for the bitset/python kernels, ``"dense"`` for packed
  uint64-block pools);
* stores are keyed by ``(dataset, version, L, mapping, mask_only,
  k_range, d_values, kernel, argmax)`` — everything the pool key pins
  plus the precompute sweep's parameter grid and the merge-engine
  substrate the sweep ran on.

Appends (:meth:`Engine.append_rows`) do better than invalidation: each
cached pool of the old version is *carried over* — incrementally extended
via :meth:`~repro.core.semilattice.ClusterPool.extended` and re-inserted
under the new version's key — so in-flight sessions stay warm across an
update stream.  Stores are not carried (a precompute sweep's solutions
can change arbitrarily when values enter the top-L) and simply rebuild
on next use.

Two requests that agree on a key therefore share one build; anything that
could change the bytes of the result is part of the key.  Both caches are
LRU-bounded (pools and stores over large L are big) and guarded by a
lock, with per-key build locks so two threads asking for the same cold
pool build it once while builds for *different* keys proceed in parallel.

Usage::

    >>> from repro.core.answers import AnswerSet
    >>> from repro.service import Engine, SummaryRequest
    >>> answers = AnswerSet.from_rows(
    ...     [("a", "x"), ("a", "y"), ("b", "x")], [4.0, 3.0, 1.0])
    >>> engine = Engine(mask_only=True)
    >>> engine.register_dataset("toy", answers)
    >>> cold = engine.submit(SummaryRequest(dataset="toy", k=1, L=2, D=0))
    >>> warm = engine.submit(SummaryRequest(dataset="toy", k=1, L=2, D=0))
    >>> (cold.cache_hit, warm.cache_hit, warm.objective)
    (False, True, 3.5)
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Generic, Hashable, Sequence, TypeVar

from repro.common.budget import Budget, budget_scope, checkpoint
from repro.common.errors import InvalidParameterError, ReproError
from repro.common.faults import fault_point
from repro.common.interning import STAR
from repro.core.answers import AnswerSet
from repro.core.bitset import DENSE_KERNEL, resolve_kernel
from repro.core.problem import ProblemInstance
from repro.core.registry import validate_algorithm_kwargs
from repro.core.semilattice import ClusterPool
from repro.obs.tracing import record_span, span, trace_scope
from repro.core.solution import Solution
from repro.interactive.precompute import SolutionStore
from repro.service.api import (
    ClusterDTO,
    ErrorResponse,
    ExpandedElementDTO,
    ExploreRequest,
    GuidanceRequest,
    GuidanceResponse,
    GuidanceSeriesDTO,
    SummaryRequest,
    SummaryResponse,
    parse_request,
)

T = TypeVar("T")


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters for one engine cache.

    ``coalesced`` is the subset of ``hits`` that were served by *another
    thread's concurrent build* of the same key (single-flight): the caller
    saw the key cold, raced for the per-key build lock, and found the
    finished entry instead of building a duplicate.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    coalesced: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(frozen=True)
class EngineStats:
    """Snapshot of both caches plus the request counter."""

    pools: CacheStats
    stores: CacheStats
    requests: int
    datasets: tuple[str, ...]


class _Entry(Generic[T]):
    __slots__ = ("value", "build_seconds")

    def __init__(self, value: T, build_seconds: float) -> None:
        self.value = value
        self.build_seconds = build_seconds


class _LRUCache(Generic[T]):
    """A small thread-safe LRU with per-key build deduplication.

    ``get_or_build`` returns ``(value, build_seconds, cache_hit)`` where
    *build_seconds* is the wall-clock cost this call actually paid (0.0 on
    a hit — the point of sharing the engine).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise InvalidParameterError(
                "cache capacity must be >= 1, got %d" % capacity
            )
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, _Entry[T]] = OrderedDict()
        self._lock = threading.Lock()
        self._building: dict[Hashable, threading.Lock] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.coalesced = 0

    def _lookup(self, key: Hashable) -> _Entry[T] | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def get_or_build(
        self, key: Hashable, build: Callable[[], T]
    ) -> tuple[T, float, bool]:
        with self._lock:
            entry = self._lookup(key)
            if entry is not None:
                self.hits += 1
                return entry.value, 0.0, True
            build_lock = self._building.setdefault(key, threading.Lock())
        with build_lock:
            try:
                # Double-check: another thread may have built while we waited.
                with self._lock:
                    entry = self._lookup(key)
                    if entry is not None:
                        # The first check (under the same lock entries are
                        # inserted under) saw no entry, so anything here
                        # now was built by a concurrent thread we raced —
                        # a coalesced wait by construction, even if we
                        # created the build lock ourselves and lost the
                        # acquire race.
                        self.hits += 1
                        self.coalesced += 1
                        return entry.value, 0.0, True
                start = time.perf_counter()
                value = build()
                elapsed = time.perf_counter() - start
                with self._lock:
                    self.misses += 1
                    self._entries[key] = _Entry(value, elapsed)
                    self._entries.move_to_end(key)
                    while len(self._entries) > self.capacity:
                        self._entries.popitem(last=False)
                        self.evictions += 1
                return value, elapsed, False
            finally:
                # Drop the build lock entry even when build() raises, or
                # failing keys would accumulate locks forever.
                with self._lock:
                    self._building.pop(key, None)

    def snapshot_items(self) -> list[tuple[Hashable, T]]:
        """A point-in-time ``(key, value)`` list (incremental maintenance
        iterates cached pools through this; the cache stays locked only
        for the copy)."""
        with self._lock:
            return [
                (key, entry.value) for key, entry in self._entries.items()
            ]

    def put(self, key: Hashable, value: T, build_seconds: float = 0.0) -> None:
        """Insert *value* under *key* directly (no build function).

        Used by append maintenance to seed the next dataset version's
        entries from incrementally-extended state; normal request traffic
        goes through :meth:`get_or_build`.
        """
        with self._lock:
            self._entries[key] = _Entry(value, build_seconds)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                evictions=self.evictions,
                size=len(self._entries),
                capacity=self.capacity,
                coalesced=self.coalesced,
            )


class Engine:
    """Serves wire-format requests over named datasets with shared caches.

    Parameters
    ----------
    max_pools:
        LRU bound on cached :class:`ClusterPool`s, keyed by
        ``(dataset, version, L, mapping, mask_only, mask_repr)``.
    max_stores:
        LRU bound on cached :class:`SolutionStore`s, keyed by
        ``(dataset, version, L, mapping, mask_only, k_range, d_values,
        kernel, argmax)``.
    mask_only:
        Build every pool in the low-memory mask-only mode (see
        :class:`~repro.core.semilattice.ClusterPool`); summaries are
        identical either way, so this is a deployment knob, not a wire
        parameter.
    durability:
        Optional :class:`~repro.durability.manager.DurabilityManager`.
        When set, ``register_dataset`` snapshots the dataset and
        ``append_rows`` write-ahead-logs every batch *before* publishing
        it — a WAL failure aborts the append, so an acked batch is
        always on disk.  ``None`` (the default) keeps the engine purely
        in-memory with zero behavioral drift.
    """

    def __init__(
        self,
        max_pools: int = 64,
        max_stores: int = 16,
        mask_only: bool = False,
        durability=None,
    ) -> None:
        self.mask_only = bool(mask_only)
        self.durability = durability
        self._datasets: dict[str, AnswerSet] = {}
        self._versions: dict[str, int] = {}
        self._datasets_lock = threading.Lock()
        # Appends are serialized per engine: each one builds the next
        # dataset version and carries cached pools over to it, which must
        # not interleave with another append's carry-over.
        self._append_lock = threading.Lock()
        self._pools: _LRUCache[ClusterPool] = _LRUCache(max_pools)
        self._stores: _LRUCache[SolutionStore] = _LRUCache(max_stores)
        self._requests = 0
        self._requests_lock = threading.Lock()

    # -- datasets ------------------------------------------------------------

    def register_dataset(
        self, name: str, answers: AnswerSet, replace: bool = False
    ) -> None:
        """Make *answers* addressable by requests as *name*.

        Re-registering with ``replace=True`` bumps the dataset's version,
        so every cached pool/store built against the old content is keyed
        away from new requests (and ages out of the LRUs) instead of being
        served stale.
        """
        with self._datasets_lock:
            if name in self._datasets:
                if not replace:
                    raise InvalidParameterError(
                        "dataset %r is already registered; pass "
                        "replace=True to overwrite" % name
                    )
                self._versions[name] += 1
            else:
                self._versions[name] = 0
            self._datasets[name] = answers
        if self.durability is not None:
            # Outside the lock: the snapshot write is disk I/O.  A racing
            # reader sees the dataset before its snapshot lands — same
            # window a crash-before-snapshot leaves, and registration is
            # what re-fills it.
            self.durability.record_register(name, answers)

    def dataset(self, name: str) -> AnswerSet:
        return self._dataset_state(name)[0]

    def dataset_version(self, name: str) -> int:
        """The dataset's content version (bumped by replace and append)."""
        return self._dataset_state(name)[1]

    def _dataset_state(self, name: str) -> tuple[AnswerSet, int]:
        """The dataset and its version, read atomically — cache keys must
        pair the version with the exact content it describes."""
        with self._datasets_lock:
            try:
                return self._datasets[name], self._versions[name]
            except KeyError:
                raise InvalidParameterError(
                    "unknown dataset %r; registered: %s"
                    % (name, sorted(self._datasets))
                ) from None

    def dataset_names(self) -> list[str]:
        with self._datasets_lock:
            return sorted(self._datasets)

    def append_rows(
        self,
        name: str,
        rows: Sequence[Sequence[Any]],
        values: Sequence[float],
    ) -> dict[str, Any]:
        """Append *rows* to dataset *name* with incremental maintenance.

        Builds the extended :class:`AnswerSet` (codes and ranks re-derive
        deterministically), carries every cached pool of the old version
        over to the new one via
        :meth:`~repro.core.semilattice.ClusterPool.extended` (bit-identical
        to a rebuild, property-tested), bumps the dataset version so
        stores and any pool this pass missed are unreachable by key, and
        only then publishes the new answer set.  Requests racing the
        append keep resolving the old ``(content, version)`` pair until
        the atomic publish, so they never see a half-updated dataset.
        """
        with self._append_lock:
            old_answers, old_version = self._dataset_state(name)
            new_answers, delta = old_answers.extended(rows, values)
            if self.durability is not None:
                # WAL-before-publish: the batch has passed validation
                # (extended() raised on anything malformed), so log it
                # now.  If the log write fails, this raises and nothing
                # below publishes — the client's error means "not
                # appended", on disk and in memory alike.
                self.durability.record_append(name, rows, values)
            version = old_version + 1
            maintained = 0
            for key, pool in self._pools.snapshot_items():
                k_dataset, k_version = key[0], key[1]
                if k_dataset != name or k_version != old_version:
                    continue
                self._pools.put(
                    (k_dataset, version) + key[2:],
                    pool.extended(new_answers, delta),
                )
                maintained += 1
            with self._datasets_lock:
                self._datasets[name] = new_answers
                self._versions[name] = version
            if self.durability is not None:
                self.durability.maybe_compact(name, new_answers)
        return {
            "appended": len(delta),
            "n": new_answers.n,
            "version": version,
            "pools_maintained": maintained,
        }

    # -- cached initialization ------------------------------------------------

    def checkout_pool(
        self,
        dataset: str,
        L: int,
        mapping: str = "eager",
        mask_only: bool | None = None,
        kernel: str | None = None,
    ) -> tuple[ClusterPool, float, bool]:
        """The cluster pool for (dataset, L) — ``(pool, init_seconds, hit)``.

        *mask_only* defaults to the engine-wide setting; passing an
        explicit value checks out (and caches) a pool in that mode.
        *kernel* selects the pool's mask representation: the bitset and
        python kernels share int-bitmask pools, while ``"dense"`` (or
        ``"auto"`` resolving to it at this dataset's size) checks out a
        packed-block pool.  The representation is part of the cache key,
        so kernels never alias each other's pools.
        """
        answers, version = self._dataset_state(dataset)
        masked = self.mask_only if mask_only is None else bool(mask_only)
        resolved = resolve_kernel(kernel, n=answers.n)
        dense = resolved == DENSE_KERNEL
        return self._pools.get_or_build(
            (dataset, version, L, mapping, masked,
             "dense" if dense else "int"),
            lambda: ClusterPool(
                answers, L, strategy=mapping, mask_only=masked,
                kernel=DENSE_KERNEL if dense else None,
            ),
        )

    def checkout_store(
        self,
        dataset: str,
        L: int,
        k_range: tuple[int, int],
        d_values: Sequence[int],
        mapping: str = "eager",
        kernel: str | None = None,
        argmax: str | None = None,
    ) -> tuple[SolutionStore, float, bool]:
        """The precomputed store for (dataset, L, k_range, d_values).

        ``init_seconds`` covers whatever this call actually built: pool
        construction (if cold) plus the precomputation sweep (if cold).
        ``argmax`` selects the sweep's greedy argmax (``None`` = auto:
        the lazy heap whenever sound); it is part of the cache key so
        ablation runs never alias production stores.
        """
        k_range = tuple(k_range)
        d_key = tuple(sorted(set(d_values)))
        answers, version = self._dataset_state(dataset)
        kernel = resolve_kernel(kernel, n=answers.n)
        argmax_key = "auto" if argmax is None else argmax
        masked = self.mask_only
        pool, pool_seconds, _pool_hit = self.checkout_pool(
            dataset, L, mapping, kernel=kernel
        )
        store, store_seconds, store_hit = self._stores.get_or_build(
            (dataset, version, L, mapping, masked, k_range, d_key, kernel,
             argmax_key),
            lambda: SolutionStore(
                pool, k_range, d_key, kernel=kernel, argmax=argmax
            ),
        )
        return store, pool_seconds + store_seconds, store_hit

    # -- request dispatch -----------------------------------------------------

    def submit(
        self, request: SummaryRequest | ExploreRequest | GuidanceRequest
    ):
        """Serve one typed request; returns the matching typed response."""
        fault_point("engine.compute")
        # Shed before computing: a request whose budget expired on the
        # way here (queue wait, parse) never starts the solve.
        checkpoint()
        with self._requests_lock:
            self._requests += 1
        if isinstance(request, SummaryRequest):
            return self._submit_summary(request)
        if isinstance(request, ExploreRequest):
            return self._submit_explore(request)
        if isinstance(request, GuidanceRequest):
            return self._submit_guidance(request)
        raise InvalidParameterError(
            "unsupported request type %s" % type(request).__name__
        )

    def submit_dict(
        self,
        payload: dict[str, Any],
        budget: Budget | None = None,
        trace=None,
    ) -> dict[str, Any]:
        """Wire-in/wire-out: parse, serve, serialize; errors become
        ``kind="error"`` payloads instead of exceptions.

        *budget* (optional) is installed as the thread's current budget
        for the duration of the request, so kernel checkpoints can
        abandon expired work (:class:`DeadlineExceeded` serializes like
        any other typed error).  *trace* (optional, a
        :class:`~repro.obs.tracing.RequestTrace`) is installed the same
        way so the handlers' spans land on it.  Callers that already
        scoped either around this call (the scheduler worker) simply
        pass None — the ``engine.request`` span still lands on the
        thread's current trace.
        """
        try:
            with trace_scope(trace), budget_scope(budget):
                with span("engine.request"):
                    return self.submit(parse_request(payload)).to_dict()
        except (ReproError, TypeError, ValueError) as error:
            return ErrorResponse(
                error_type=type(error).__name__, message=str(error)
            ).to_dict()

    # -- handlers -------------------------------------------------------------

    def _submit_summary(self, request: SummaryRequest) -> SummaryResponse:
        answers = self.dataset(request.dataset)
        info = validate_algorithm_kwargs(request.algorithm, request.options)
        # Algorithms without a kernelized path (e.g. lower-bound) report
        # "none" rather than pretending a kernel ran.  "auto" resolves
        # here (against this dataset's n) so the checked-out pool, the
        # merge engine, and the reported kernel all agree.
        kernel = (
            resolve_kernel(request.options.get("kernel"), n=answers.n)
            if "kernel" in info.kwargs
            else "none"
        )
        instance = ProblemInstance(
            answers,
            k=request.k,
            L=request.L,
            D=request.D,
            mapping=request.mapping,
            mask_only=self.mask_only,
        )
        pool, init_seconds, cache_hit = self.checkout_pool(
            request.dataset,
            instance.L,
            request.mapping,
            kernel=None if kernel == "none" else kernel,
        )
        record_span("engine.pool_build", init_seconds, cache_hit=cache_hit)
        instance.adopt_pool(pool)
        start = time.perf_counter()
        solution = instance.solve(request.algorithm, **request.options)
        algo_seconds = time.perf_counter() - start
        record_span(
            "engine.solve",
            algo_seconds,
            algorithm=request.algorithm,
            kernel=kernel,
            # The merge engine's argmax counters (heap-vs-scan pruning
            # evidence) ride as span attributes, same numbers as the
            # phase_seconds map below.
            **{name: float(value) for name, value in
               (solution.stats or {}).items()},
        )
        phases = {"pool_build": init_seconds, "merge_loop": algo_seconds}
        # Fold the merge engine's argmax counters (heap-vs-scan pruning
        # evidence) into the phase map: counts, not seconds, but the same
        # open float dict — no schema change.
        if solution.stats:
            phases.update(
                (name, float(value))
                for name, value in solution.stats.items()
            )
        return self._summary_response(
            request.dataset,
            answers,
            solution,
            k=instance.k,
            L=instance.L,
            D=instance.D,
            algorithm=request.algorithm,
            cache_hit=cache_hit,
            init_seconds=init_seconds,
            algo_seconds=algo_seconds,
            include_elements=request.include_elements,
            kernel=kernel,
            phases=phases,
        )

    def _submit_explore(self, request: ExploreRequest) -> SummaryResponse:
        answers = self.dataset(request.dataset)
        store, init_seconds, cache_hit = self.checkout_store(
            request.dataset,
            request.L,
            request.k_range,
            request.d_values,
            request.mapping,
            kernel=request.kernel,
        )
        record_span("engine.store_build", init_seconds, cache_hit=cache_hit)
        start = time.perf_counter()
        solution = store.retrieve(request.k, request.D)
        algo_seconds = time.perf_counter() - start
        record_span("engine.retrieve", algo_seconds)
        return self._summary_response(
            request.dataset,
            answers,
            solution,
            k=request.k,
            L=request.L,
            D=request.D,
            algorithm="precomputed",
            cache_hit=cache_hit,
            init_seconds=init_seconds,
            algo_seconds=algo_seconds,
            include_elements=request.include_elements,
            kernel=store.kernel,
            # Per-request wall clock only: store_build is what *this* call
            # paid (0.0 on a store-cache hit); the build's internal
            # shared-phase/sweep split lives in store.timings.
            phases={
                "store_build": init_seconds,
                "retrieve": algo_seconds,
            },
        )

    def _submit_guidance(self, request: GuidanceRequest) -> GuidanceResponse:
        from repro.interactive.guidance import build_guidance_view

        store, init_seconds, cache_hit = self.checkout_store(
            request.dataset,
            request.L,
            request.k_range,
            request.d_values,
            request.mapping,
            kernel=request.kernel,
        )
        record_span("engine.store_build", init_seconds, cache_hit=cache_hit)
        start = time.perf_counter()
        view = build_guidance_view(store)
        series = tuple(
            GuidanceSeriesDTO(
                D=curve.D,
                k_values=curve.k_values,
                averages=curve.averages,
                knee_points=tuple(view.knee_points(curve.D)),
                flat_regions=tuple(view.flat_regions(curve.D)),
            )
            for curve in view.series
        )
        return GuidanceResponse(
            dataset=request.dataset,
            L=request.L,
            k_range=tuple(request.k_range),
            d_values=store.d_values,
            series=series,
            cache_hit=cache_hit,
            init_seconds=init_seconds,
            algo_seconds=time.perf_counter() - start,
        )

    # -- serialization helpers ------------------------------------------------

    def _summary_response(
        self,
        dataset: str,
        answers: AnswerSet,
        solution: Solution,
        *,
        k: int,
        L: int,
        D: int,
        algorithm: str,
        cache_hit: bool,
        init_seconds: float,
        algo_seconds: float,
        include_elements: bool,
        kernel: str,
        phases: dict[str, float] | None = None,
    ) -> SummaryResponse:
        serialize_start = time.perf_counter()
        clusters = tuple(
            self._cluster_dto(answers, cluster, include_elements)
            for cluster in solution.clusters
        )
        phase_seconds = dict(phases or {})
        phase_seconds["serialize"] = time.perf_counter() - serialize_start
        record_span("engine.serialize", phase_seconds["serialize"])
        return SummaryResponse(
            dataset=dataset,
            k=k,
            L=L,
            D=D,
            algorithm=algorithm,
            objective=solution.avg,
            solution_size=solution.size,
            covered_count=len(solution.covered),
            clusters=clusters,
            cache_hit=cache_hit,
            init_seconds=init_seconds,
            algo_seconds=algo_seconds,
            kernel=kernel,
            phase_seconds=phase_seconds,
        )

    def _cluster_dto(
        self, answers: AnswerSet, cluster, include_elements: bool
    ) -> ClusterDTO:
        pattern = (
            answers.decode(cluster.pattern)
            if answers.codec is not None
            else tuple("*" if v == STAR else v for v in cluster.pattern)
        )
        elements: tuple[ExpandedElementDTO, ...] = ()
        if include_elements:
            elements = tuple(
                ExpandedElementDTO(
                    rank=index + 1,
                    values=(
                        answers.decode(answers.elements[index])
                        if answers.codec is not None
                        else tuple(answers.elements[index])
                    ),
                    value=answers.values[index],
                )
                for index in sorted(cluster.covered)
            )
        return ClusterDTO(
            pattern=tuple(pattern),
            avg=cluster.avg,
            size=cluster.size,
            elements=elements,
        )

    # -- introspection --------------------------------------------------------

    def stats(self) -> EngineStats:
        return EngineStats(
            pools=self._pools.stats(),
            stores=self._stores.stats(),
            requests=self._requests,
            datasets=tuple(self.dataset_names()),
        )

    def clear_caches(self) -> None:
        """Drop all cached pools and stores (datasets stay registered)."""
        self._pools.clear()
        self._stores.clear()
