"""Pluggable algorithm registry with per-algorithm metadata.

The hard-coded ``ALGORITHMS`` dict the library started with could only map a
name to a runner.  The service layer (:mod:`repro.service`) needs more: it
validates request kwargs before running anything, reports exactness and
complexity in the guidance view, and lets extensions (hierarchy variants,
baseline adapters, experimental kernels) plug in without editing core
modules.  This module provides that: a process-wide registry populated by
the :func:`register_algorithm` decorator, carrying an
:class:`AlgorithmInfo` record per algorithm.

Registering is declarative::

    @register_algorithm(
        "my-greedy", cost="greedy", complexity="O(k L^2)",
        kwargs=("use_delta",), summary="my greedy variant",
    )
    def _run_my_greedy(instance, **kwargs):
        ...

``repro.core.problem`` registers the paper's nine algorithms on import; the
legacy ``ALGORITHMS`` mapping is kept there as a deprecated read-only view
of this registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

from repro.common.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.problem import ProblemInstance
    from repro.core.solution import Solution

#: Exactness classes an algorithm may declare.
COST_CLASSES = ("exact", "greedy", "heuristic", "bound")


@dataclass(frozen=True)
class AlgorithmInfo:
    """Metadata the registry keeps for one algorithm.

    ``runner`` takes a :class:`~repro.core.problem.ProblemInstance` plus the
    algorithm's keyword options and returns a
    :class:`~repro.core.solution.Solution`.  ``kwargs`` is the exhaustive
    tuple of keyword option names the runner accepts — the service layer
    rejects requests carrying anything else *before* any work happens.
    """

    name: str
    runner: Callable[..., "Solution"] = field(repr=False)
    cost: str = "greedy"
    complexity: str = ""
    kwargs: tuple[str, ...] = ()
    summary: str = ""

    def describe(self) -> dict[str, object]:
        """JSON-friendly metadata (everything but the runner)."""
        return {
            "name": self.name,
            "cost": self.cost,
            "complexity": self.complexity,
            "kwargs": list(self.kwargs),
            "summary": self.summary,
        }


_REGISTRY: dict[str, AlgorithmInfo] = {}


def register_algorithm(
    name: str,
    *,
    cost: str = "greedy",
    complexity: str = "",
    kwargs: tuple[str, ...] | Sequence[str] = (),
    summary: str = "",
    replace: bool = False,
):
    """Class the decorated runner under *name* in the global registry.

    Raises :class:`InvalidParameterError` on duplicate names (unless
    *replace* is true) and on unknown *cost* classes, so registration
    mistakes surface at import time, not at request time.
    """
    if cost not in COST_CLASSES:
        raise InvalidParameterError(
            "cost=%r not in %s" % (cost, list(COST_CLASSES))
        )

    def decorator(runner: Callable[..., "Solution"]):
        if not replace and name in _REGISTRY:
            raise InvalidParameterError(
                "algorithm %r is already registered; pass replace=True to "
                "override" % name
            )
        _REGISTRY[name] = AlgorithmInfo(
            name=name,
            runner=runner,
            cost=cost,
            complexity=complexity,
            kwargs=tuple(kwargs),
            summary=summary,
        )
        return runner

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove *name* from the registry (no-op if absent).

    Exists for tests and short-lived experimental plugins; the nine paper
    algorithms are re-registered only on interpreter restart.
    """
    _REGISTRY.pop(name, None)


def get_algorithm(name: str) -> AlgorithmInfo:
    """The :class:`AlgorithmInfo` for *name*, or a helpful error."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            "unknown algorithm %r; expected one of %s"
            % (name, algorithm_names())
        ) from None


def algorithm_names() -> list[str]:
    """Sorted names of every registered algorithm."""
    return sorted(_REGISTRY)


def algorithm_infos() -> list[AlgorithmInfo]:
    """All registry records, sorted by name."""
    return [_REGISTRY[name] for name in algorithm_names()]


def validate_algorithm_kwargs(name: str, options: Mapping[str, object]) -> AlgorithmInfo:
    """Check *options* against the algorithm's declared kwargs.

    Returns the :class:`AlgorithmInfo` so callers can go straight to the
    runner.  Unknown option names raise :class:`InvalidParameterError`
    listing what the algorithm does accept — the error a typo'd JSON
    request gets back instead of a Python ``TypeError`` mid-run.
    """
    info = get_algorithm(name)
    unknown = sorted(set(options) - set(info.kwargs))
    if unknown:
        raise InvalidParameterError(
            "algorithm %r got unsupported option(s) %s; supported: %s"
            % (name, unknown, sorted(info.kwargs) or "none")
        )
    return info


class AlgorithmsView(Mapping):
    """Read-only mapping view of the registry: name -> runner.

    Backs the deprecated module-level ``ALGORITHMS`` in
    :mod:`repro.core.problem`.  Iteration/lookup emit a
    ``DeprecationWarning`` pointing at the registry API.
    """

    def _warn(self) -> None:
        import warnings

        warnings.warn(
            "repro.core.problem.ALGORITHMS is deprecated; replace "
            "ALGORITHMS[name](instance, ...) with "
            "repro.core.registry.get_algorithm(name).runner(instance, ...) "
            "(list names via algorithm_names(), register new ones with "
            "@register_algorithm); see docs/ARCHITECTURE.md"
            "#algorithm-registry",
            DeprecationWarning,
            stacklevel=3,
        )

    def __getitem__(self, name: str) -> Callable[..., "Solution"]:
        self._warn()
        return get_algorithm(name).runner

    def __iter__(self) -> Iterator[str]:
        self._warn()
        return iter(algorithm_names())

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __contains__(self, name: object) -> bool:
        self._warn()
        return name in _REGISTRY

    def __repr__(self) -> str:
        return "AlgorithmsView(%s)" % algorithm_names()
