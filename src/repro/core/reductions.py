"""The NP-hardness reduction of Theorem A.2, as executable code.

The paper proves that deciding whether a *non-trivial* feasible solution
exists (k < L regime) is NP-hard by reduction from vertex cover on
tripartite graphs: given a tripartite graph G with parts (X, Y, Z), build a
relation with three attributes where each edge becomes one tuple —

* an X-Y edge (x, y) becomes ``(x, y, Z_xy)`` with a fresh, unique value
  ``Z_xy`` in the third attribute;
* Y-Z and X-Z edges symmetrically, with fresh values in the first or
  second attribute —

all with equal weight, k = M (the cover budget), L = |E|.  Then G has a
vertex cover of size <= M iff the instance has a non-trivial feasible
solution of at most M clusters: the clusters ``(x, *, *)``, ``(*, y, *)``,
``(*, *, z)`` correspond exactly to vertices, and the fresh values force
any other cluster shape to be replaceable by a vertex cluster.

Having the construction as code lets the test suite *verify the reduction
empirically* (vertex cover found by exhaustive search == non-trivial
feasibility found by our brute force) on small graphs, and documents the
hardness result far more concretely than prose.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Iterable

import networkx as nx

from repro.common.errors import InvalidParameterError
from repro.core.answers import AnswerSet

Edge = tuple[Hashable, Hashable]


@dataclass(frozen=True)
class TripartiteInstance:
    """A tripartite graph with named parts (inputs of the reduction)."""

    x_part: tuple[Hashable, ...]
    y_part: tuple[Hashable, ...]
    z_part: tuple[Hashable, ...]
    edges: tuple[Edge, ...]

    def __post_init__(self) -> None:
        x, y, z = set(self.x_part), set(self.y_part), set(self.z_part)
        if x & y or x & z or y & z:
            raise InvalidParameterError("parts must be disjoint")
        for a, b in self.edges:
            part_a = "x" if a in x else "y" if a in y else "z" if a in z else None
            part_b = "x" if b in x else "y" if b in y else "z" if b in z else None
            if part_a is None or part_b is None or part_a == part_b:
                raise InvalidParameterError(
                    "edge %r is not between two distinct parts" % ((a, b),)
                )

    def graph(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(self.x_part, part="x")
        g.add_nodes_from(self.y_part, part="y")
        g.add_nodes_from(self.z_part, part="z")
        g.add_edges_from(self.edges)
        return g

    def vertices(self) -> tuple[Hashable, ...]:
        return self.x_part + self.y_part + self.z_part


def minimum_vertex_cover(instance: TripartiteInstance) -> set[Hashable]:
    """Exhaustive minimum vertex cover (exponential; test-sized graphs)."""
    vertices = instance.vertices()
    if len(vertices) > 16:
        raise InvalidParameterError(
            "exhaustive vertex cover refused for %d vertices" % len(vertices)
        )
    for size in range(0, len(vertices) + 1):
        for subset in combinations(vertices, size):
            chosen = set(subset)
            if all(a in chosen or b in chosen for a, b in instance.edges):
                return chosen
        # fall through: try the next size
    return set(vertices)


def reduction_answer_set(instance: TripartiteInstance) -> AnswerSet:
    """Build the Theorem A.2 relation for *instance*.

    Attributes (A_X, A_Y, A_Z); one tuple per edge with a fresh unique
    filler in the attribute of the part the edge does not touch; all
    values 1.0 (uniform weights, as the theorem requires).
    """
    if not instance.edges:
        raise InvalidParameterError("the reduction needs at least one edge")
    x, y, z = (
        set(instance.x_part), set(instance.y_part), set(instance.z_part)
    )
    rows: list[tuple[Hashable, Hashable, Hashable]] = []
    fresh = 0
    for a, b in instance.edges:
        fresh += 1
        filler = "fresh_%d" % fresh
        if a in x and b in y:
            rows.append((a, b, filler))
        elif a in y and b in x:
            rows.append((b, a, filler))
        elif a in y and b in z:
            rows.append((filler, a, b))
        elif a in z and b in y:
            rows.append((filler, b, a))
        elif a in x and b in z:
            rows.append((a, filler, b))
        else:  # a in z and b in x
            rows.append((b, filler, a))
    values = [1.0] * len(rows)
    return AnswerSet.from_rows(rows, values, attributes=("A_X", "A_Y", "A_Z"))


def has_nontrivial_feasible_solution(
    answers: AnswerSet, k: int
) -> bool:
    """Decision problem of Theorem A.2: is there a feasible solution of at
    most k clusters, none of which is the all-star cluster, covering all
    elements (L = n, D = 0)?

    Solved by exhaustive search over vertex-shaped and raw pool clusters —
    exactly what the (if) direction of the proof reasons about.
    """
    from repro.core.cluster import comparable
    from repro.core.semilattice import ClusterPool

    n = answers.n
    pool = ClusterPool(answers, L=n)
    root = tuple([-1] * answers.m)
    candidates = [p for p in pool.patterns() if p != root]
    by_element: dict[int, list[tuple[int, ...]]] = {}
    for pattern in candidates:
        for index in pool.coverage(pattern):
            by_element.setdefault(index, []).append(pattern)

    def search(chosen: list[tuple[int, ...]], covered: set[int]) -> bool:
        if len(covered) == n:
            return True
        if len(chosen) >= k:
            return False
        target = min(i for i in range(n) if i not in covered)
        for pattern in by_element.get(target, ()):
            if any(comparable(pattern, other) for other in chosen):
                continue
            fresh = pool.coverage(pattern) - covered
            chosen.append(pattern)
            covered |= fresh
            if search(chosen, covered):
                return True
            chosen.pop()
            covered -= fresh
        return False

    return search([], set())


def verify_reduction(instance: TripartiteInstance) -> dict[str, object]:
    """Run both sides of the Theorem A.2 equivalence and report.

    Returns the minimum vertex cover size and, for k around that size,
    whether a non-trivial feasible solution exists — which must flip from
    False to True exactly at the cover size.
    """
    cover = minimum_vertex_cover(instance)
    answers = reduction_answer_set(instance)
    at_cover = has_nontrivial_feasible_solution(answers, len(cover))
    below_cover = (
        has_nontrivial_feasible_solution(answers, len(cover) - 1)
        if len(cover) > 0
        else False
    )
    return {
        "cover_size": len(cover),
        "cover": cover,
        "feasible_at_cover_size": at_cover,
        "feasible_below_cover_size": below_cover,
    }


def random_tripartite(
    part_size: int, edge_probability: float, seed: int
) -> TripartiteInstance:
    """A random tripartite instance for property tests."""
    import random as _random

    rng = _random.Random(seed)
    x = tuple("x%d" % i for i in range(part_size))
    y = tuple("y%d" % i for i in range(part_size))
    z = tuple("z%d" % i for i in range(part_size))
    edges: list[Edge] = []
    for side_a, side_b in ((x, y), (y, z), (x, z)):
        for a in side_a:
            for b in side_b:
                if rng.random() < edge_probability:
                    edges.append((a, b))
    if not edges:
        edges.append((x[0], y[0]))
    return TripartiteInstance(x, y, z, tuple(edges))
