"""Dense packed-array coverage kernel: fixed-width uint64 block masks.

The bitset kernel (:mod:`repro.core.bitset`) made marginal *counts* one
machine-word operation, but its value *sums* still walk the mask's bytes in
an interpreted loop — the cost the ROADMAP flags as the bottleneck once the
answer set grows to n >= 10^5..10^6.  This module provides the third
kernel, ``"dense"``: the element universe is packed into fixed-width
64-bit blocks, and the four coverage primitives — AND, AND-NOT, popcount,
and masked value sum — run *block-level*:

* with **numpy** importable, masks are contiguous ``uint64`` arrays and
  the primitives are vectorized (``bitwise_and``/``bitwise_count`` — or a
  byte popcount LUT on older numpy — and boolean-indexed value sums over
  the contiguous float64 view of the answer set's value table);
* without numpy, the **pure-stdlib fallback** keeps the packed-block
  storage (materializable as ``array('Q')`` via :meth:`BitBlocks.blocks`)
  but routes the primitives through Python's arbitrary-precision ``int``
  view of the same bytes — itself a packed word array operated on at C
  speed — so the fallback is never slower than the bitset kernel beyond
  thin wrapper overhead.

Value tables live on the :class:`~repro.core.answers.AnswerSet` as one
contiguous ``array('d')`` row (:class:`ValueTable`); the numpy path views
that buffer zero-copy.

**Summation order is load-bearing.**  Every value-sum primitive adds in
ascending element-index order, exactly like the bitset kernel:

* the vectorized path selects values by boolean indexing (which preserves
  ascending order) and reduces them with ``np.add.accumulate`` — the
  ufunc *accumulate* is sequential by definition (``r[i] = r[i-1] + a[i]``),
  unlike ``np.sum``'s pairwise tree, so the floats are bit-identical to
  the scalar loop;
* the sparse path iterates set bits block by block, low bit first.

Ascending sequential summation is what makes subset sums float-monotone
for non-negative values — the soundness precondition of the lazy
upper-bound heap argmax (:mod:`repro.core.merge`) — and what makes the
``dense`` kernel bit-identical to ``bitset``/``python`` whenever sums are
exact (property-tested on dyadic-rational values).

Backend selection is process-wide: numpy is used when importable unless
the ``REPRO_DISABLE_NUMPY`` environment variable is set (the CI no-numpy
leg) or :class:`numpy_disabled` is active (tests and the benchmark's
fallback leg).  The flag is consulted at *mask construction* time; a
built mask carries its backend for its lifetime, so a pool and the masks
derived from it always agree.

>>> from repro.core.dense import ValueTable, blocks_of
>>> mask = blocks_of([0, 2, 5], nbits=8)
>>> mask.bit_count(), list(mask.indices())
(3, [0, 2, 5])
>>> mask.value_sum(ValueTable([1.0, 9.0, 2.0, 9.0, 9.0, 3.0, 9.0, 9.0]))
6.0
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Iterator, Sequence

from repro.core.bitset import (
    bitset_of,
    iter_bits,
    mask_value_sum,
    splice_mask,
)

#: Environment variable that disables numpy even when it is importable —
#: the switch behind the CI no-numpy matrix leg and the benchmark's
#: array-fallback measurements.
DISABLE_NUMPY_ENV = "REPRO_DISABLE_NUMPY"

try:
    if os.environ.get(DISABLE_NUMPY_ENV, "").strip() not in ("", "0"):
        raise ImportError("numpy disabled via %s" % DISABLE_NUMPY_ENV)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: True when the numpy backend could ever be used in this process.
HAVE_NUMPY = _np is not None

#: Runtime switch (see :func:`numpy_enabled` / :class:`numpy_disabled`).
_numpy_active = HAVE_NUMPY

if HAVE_NUMPY:
    #: Per-byte popcounts; the LUT path for numpy < 2.0 (no bitwise_count).
    _POPCOUNT8 = _np.array(
        [bin(value).count("1") for value in range(256)], dtype=_np.uint16
    )
    _HAVE_BITWISE_COUNT = hasattr(_np, "bitwise_count")
else:
    _POPCOUNT8 = None
    _HAVE_BITWISE_COUNT = False

#: Value sums over masks with at most this many non-zero blocks take the
#: scalar per-bit path (cheaper than a full unpackbits over the universe).
_SPARSE_BLOCK_LIMIT = 48

#: Cache of all-ones ints per universe size (the fallback's ~ operand).
_ONES_CACHE: dict[int, int] = {}


def numpy_enabled() -> bool:
    """True when new dense masks will use the vectorized numpy backend."""
    return _numpy_active and HAVE_NUMPY


class numpy_disabled:
    """Context manager forcing the stdlib fallback for masks built inside.

    Used by the kernel-equivalence tests and by ``run_bench.py`` to
    measure the array-fallback leg in a process that *does* have numpy.
    Masks built before entry keep their backend; only construction is
    affected, so build everything under test inside the context.
    """

    def __enter__(self) -> "numpy_disabled":
        global _numpy_active
        self._previous = _numpy_active
        _numpy_active = False
        return self

    def __exit__(self, *exc_info) -> None:
        global _numpy_active
        _numpy_active = self._previous


def _ones(nbits: int) -> int:
    """The all-ones int over *nbits* (cached; the fallback invert mask)."""
    mask = _ONES_CACHE.get(nbits)
    if mask is None:
        mask = (1 << nbits) - 1
        if len(_ONES_CACHE) > 16:  # a handful of live universe sizes
            _ONES_CACHE.clear()
        _ONES_CACHE[nbits] = mask
    return mask


class ValueTable:
    """The answer set's values as one contiguous ``array('d')`` row.

    ``values`` keeps the original boxed-float list (fastest for scalar
    indexing in the sparse/fallback paths); ``packed`` is the contiguous
    C-double row; ``np_view`` is the zero-copy float64 numpy view of
    ``packed`` when numpy is importable (built lazily so a numpy-less
    process never touches it).
    """

    __slots__ = ("values", "packed", "_np_view")

    def __init__(self, values: Sequence[float]) -> None:
        self.values = values if isinstance(values, list) else list(values)
        self.packed = array("d", self.values)
        self._np_view = None

    @property
    def np_view(self):
        """Zero-copy float64 view of :attr:`packed` (numpy path only)."""
        if self._np_view is None:
            if _np is None:  # pragma: no cover - numpy-less guard
                raise RuntimeError(
                    "ValueTable.np_view requires numpy; install the "
                    "repro[numpy] extra"
                )
            self._np_view = _np.frombuffer(self.packed, dtype=_np.float64)
        return self._np_view

    def __len__(self) -> int:
        return len(self.packed)

    def __repr__(self) -> str:
        return "ValueTable(n=%d)" % len(self.packed)


class BitBlocks:
    """An immutable element-set mask packed into fixed-width uint64 blocks.

    Supports the operator surface the merge engine's mask-kernel branch
    uses on int masks — ``&``, ``|``, ``~``, truthiness, ``bit_count()`` —
    so the same greedy code runs unchanged on either representation.
    Instances are immutable: operators return new objects, which is what
    keeps the engine's covered-union history log safe to share.

    Exactly one backend is populated per instance: ``_arr`` (a
    ``numpy.uint64`` array) on the vectorized backend, ``_int`` (the
    packed little-endian integer view of the same blocks) on the stdlib
    fallback.  ``_count`` lazily caches the popcount.
    """

    __slots__ = ("nbits", "_arr", "_int", "_count")

    def __init__(self) -> None:  # use the factory classmethods
        raise TypeError(
            "construct BitBlocks via blocks_of()/zero_blocks(), not directly"
        )

    # -- construction --------------------------------------------------------

    @classmethod
    def _from_array(cls, arr, nbits: int) -> "BitBlocks":
        self = object.__new__(cls)
        self.nbits = nbits
        self._arr = arr
        self._int = None
        self._count = None
        return self

    @classmethod
    def _from_int(cls, value: int, nbits: int) -> "BitBlocks":
        self = object.__new__(cls)
        self.nbits = nbits
        self._arr = None
        self._int = value
        self._count = None
        return self

    # -- backend views -------------------------------------------------------

    @property
    def nblocks(self) -> int:
        """Number of 64-bit blocks covering the universe."""
        return (self.nbits + 63) >> 6

    def _as_int(self) -> int:
        """The packed little-endian integer view (cached on demand)."""
        value = self._int
        if value is None:
            value = int.from_bytes(self._arr.tobytes(), "little")
            self._int = value
        return value

    def blocks(self) -> array:
        """The mask as a stdlib ``array('Q')`` of little-endian blocks."""
        if self._arr is not None:
            return array("Q", self._arr.tobytes())
        return array(
            "Q", self._int.to_bytes(self.nblocks * 8, "little")
        )

    # -- the block-level primitives ------------------------------------------

    def __and__(self, other: "BitBlocks") -> "BitBlocks":
        if self._arr is not None and other._arr is not None:
            return BitBlocks._from_array(self._arr & other._arr, self.nbits)
        # Fallback fast path: read the cached ints directly; _as_int()
        # only on a (rare) mixed-backend operand.
        a = self._int
        b = other._int
        if a is None:
            a = self._as_int()
        if b is None:
            b = other._as_int()
        return BitBlocks._from_int(a & b, self.nbits)

    def __or__(self, other: "BitBlocks") -> "BitBlocks":
        if self._arr is not None and other._arr is not None:
            return BitBlocks._from_array(self._arr | other._arr, self.nbits)
        a = self._int
        b = other._int
        if a is None:
            a = self._as_int()
        if b is None:
            b = other._as_int()
        return BitBlocks._from_int(a | b, self.nbits)

    def __xor__(self, other: "BitBlocks") -> "BitBlocks":
        if self._arr is not None and other._arr is not None:
            return BitBlocks._from_array(self._arr ^ other._arr, self.nbits)
        a = self._int
        b = other._int
        if a is None:
            a = self._as_int()
        if b is None:
            b = other._as_int()
        return BitBlocks._from_int(a ^ b, self.nbits)

    def __invert__(self) -> "BitBlocks":
        """Complement within the universe (tail bits stay clear)."""
        if self._arr is not None:
            inverted = _np.bitwise_not(self._arr)
            tail = self.nbits & 63
            if tail:
                inverted[-1] &= _np.uint64((1 << tail) - 1)
            return BitBlocks._from_array(inverted, self.nbits)
        return BitBlocks._from_int(
            _ones(self.nbits) & ~self._int, self.nbits
        )

    def __bool__(self) -> bool:
        if self._count is not None:
            return self._count > 0
        if self._arr is not None:
            return bool(self._arr.any())
        return self._int != 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitBlocks):
            return NotImplemented
        if self.nbits != other.nbits:
            return False
        return self._as_int() == other._as_int()

    __hash__ = None  # mutable-adjacent semantics: masks are not dict keys

    def bit_count(self) -> int:
        """Popcount over all blocks (cached)."""
        count = self._count
        if count is None:
            if self._arr is None:
                count = self._int.bit_count()
            elif _HAVE_BITWISE_COUNT:
                count = int(_np.bitwise_count(self._arr).sum())
            else:  # pragma: no cover - numpy < 2.0 only
                count = int(_POPCOUNT8[self._arr.view(_np.uint8)].sum())
            self._count = count
        return count

    def test(self, index: int) -> bool:
        """Membership of element *index* (one block load + shift)."""
        if self._arr is not None:
            return bool((int(self._arr[index >> 6]) >> (index & 63)) & 1)
        return bool((self._int >> index) & 1)

    def indices(self) -> Iterator[int]:
        """Set-bit indices in ascending order."""
        if self._arr is not None:
            flat = _np.flatnonzero(
                _np.unpackbits(
                    self._arr.view(_np.uint8),
                    count=self.nbits,
                    bitorder="little",
                )
            )
            return iter(flat.tolist())
        return iter_bits(self._int)

    def lowest_bit(self) -> int:
        """Index of the lowest set bit (-1 when empty)."""
        if self._arr is not None:
            nonzero = _np.flatnonzero(self._arr)
            if nonzero.size == 0:
                return -1
            block_index = int(nonzero[0])
            block = int(self._arr[block_index])
            return (block_index << 6) + ((block & -block).bit_length() - 1)
        if not self._int:
            return -1
        return (self._int & -self._int).bit_length() - 1

    def value_sum(self, table: ValueTable) -> float:
        """Sum ``table[i]`` over set bits, in ascending index order.

        The vectorized path unpacks the mask to a boolean row, selects
        (order-preserving) from the contiguous float64 view, and reduces
        with the *sequential* ``np.add.accumulate``; sparse masks (few
        non-zero blocks) iterate bits scalar-side instead.  Both paths
        produce the exact floats of :func:`repro.core.bitset.mask_value_sum`.
        """
        if self._arr is None:
            return mask_value_sum(table.values, self._int)
        arr = self._arr
        nonzero = _np.flatnonzero(arr)
        if nonzero.size == 0:
            return 0.0
        if nonzero.size <= _SPARSE_BLOCK_LIMIT:
            values = table.values
            total = 0.0
            for block_index in nonzero.tolist():
                block = int(arr[block_index])
                base = block_index << 6
                while block:
                    low = block & -block
                    total += values[base + (low.bit_length() - 1)]
                    block ^= low
            return total
        selected = table.np_view[
            _np.unpackbits(
                arr.view(_np.uint8), count=self.nbits, bitorder="little"
            ).view(_np.bool_)
        ]
        # accumulate (not sum): sequential ascending-order adds, float-
        # identical to the scalar kernels; np.sum's pairwise tree is not.
        return float(_np.add.accumulate(selected)[-1])

    def __repr__(self) -> str:
        backend = "numpy" if self._arr is not None else "array"
        return "BitBlocks(nbits=%d, count=%d, backend=%s)" % (
            self.nbits, self.bit_count(), backend
        )


def zero_blocks(nbits: int) -> BitBlocks:
    """The empty mask over a universe of *nbits* elements."""
    if numpy_enabled():
        return BitBlocks._from_array(
            _np.zeros((nbits + 63) >> 6, dtype=_np.uint64), nbits
        )
    return BitBlocks._from_int(0, nbits)


def blocks_of(indices: Iterable[int], nbits: int) -> BitBlocks:
    """Pack *indices* into a :class:`BitBlocks` mask over *nbits* elements.

    The numpy path scatters into a byte-per-bit row and ``packbits`` it —
    O(n) vectorized regardless of how many indices there are — which is
    what makes dense pools cheap to build at n = 10^6; the fallback
    reuses :func:`repro.core.bitset.bitset_of`.
    """
    if numpy_enabled():
        nblocks = (nbits + 63) >> 6
        flags = _np.zeros(nblocks << 6, dtype=_np.uint8)
        if not isinstance(indices, (list, tuple)):
            indices = list(indices)
        if indices:
            flags[_np.array(indices, dtype=_np.int64)] = 1
        return BitBlocks._from_array(
            _np.packbits(flags, bitorder="little").view(_np.uint64),
            nbits,
        )
    return BitBlocks._from_int(bitset_of(indices), nbits)


def first_n_blocks(count: int, nbits: int) -> BitBlocks:
    """The mask of elements ``0..count-1`` (the brute-force top-L mask)."""
    if numpy_enabled():
        return blocks_of(range(count), nbits)
    return BitBlocks._from_int((1 << count) - 1, nbits)


def mask_indices(mask) -> Iterator[int]:
    """Ascending set-bit indices of either mask representation.

    Accepts an int (bitset kernel) or a :class:`BitBlocks` (dense kernel);
    the pool's mask-only mode derives frozenset coverage through this.
    """
    if isinstance(mask, int):
        return iter_bits(mask)
    return mask.indices()


class MaskExtension:
    """Relocates dense masks into a grown universe after an append.

    Constructed once per append from the *delta* of
    :meth:`repro.core.answers.AnswerSet.extended` — the final-coordinate
    positions the appended elements occupy — it maps any mask over the old
    ``old_nbits``-element universe to the new ``new_nbits`` one: existing
    bits shift to their new ranks, the reserved positions start clear, and
    the *added* bits a pattern newly covers are set.  The numpy path
    scatters the unpacked old row through a precomputed index map (one
    vectorized pass per mask); the fallback splices the packed int view
    (:func:`repro.core.bitset.splice_mask`).  Both produce the exact bits
    a from-scratch rebuild would.
    """

    __slots__ = ("positions", "old_nbits", "new_nbits", "_old_to_new")

    def __init__(
        self, positions: Sequence[int], old_nbits: int, new_nbits: int
    ) -> None:
        self.positions = sorted(positions)
        if len(self.positions) != new_nbits - old_nbits:
            raise ValueError(
                "%d insert positions cannot grow %d bits to %d"
                % (len(self.positions), old_nbits, new_nbits)
            )
        self.old_nbits = old_nbits
        self.new_nbits = new_nbits
        self._old_to_new = None

    def _index_map(self):
        """New index of each old element (numpy path; built once)."""
        mapping = self._old_to_new
        if mapping is None:
            keep = _np.ones(self.new_nbits, dtype=bool)
            keep[_np.array(self.positions, dtype=_np.int64)] = False
            mapping = _np.flatnonzero(keep)
            self._old_to_new = mapping
        return mapping

    def extend(
        self, mask: BitBlocks, added: Sequence[int] = ()
    ) -> BitBlocks:
        """*mask* in the new universe, with the *added* bits also set."""
        if mask.nbits != self.old_nbits:
            raise ValueError(
                "mask has %d bits, extension expects %d"
                % (mask.nbits, self.old_nbits)
            )
        if mask._arr is not None and numpy_enabled():
            old_bits = _np.unpackbits(
                mask._arr.view(_np.uint8),
                count=self.old_nbits,
                bitorder="little",
            )
            nblocks = (self.new_nbits + 63) >> 6
            new_bits = _np.zeros(nblocks << 6, dtype=_np.uint8)
            new_bits[self._index_map()] = old_bits
            if len(added):
                new_bits[_np.array(added, dtype=_np.int64)] = 1
            return BitBlocks._from_array(
                _np.packbits(new_bits, bitorder="little").view(_np.uint64),
                self.new_nbits,
            )
        value = splice_mask(mask._as_int(), self.positions)
        for index in added:
            value |= 1 << index
        return BitBlocks._from_int(value, self.new_nbits)


class _DenseMaskOps:
    """Cold-path mask helpers the merge engine dispatches per kernel."""

    __slots__ = ()

    @staticmethod
    def empty(nbits: int) -> BitBlocks:
        return zero_blocks(nbits)

    @staticmethod
    def test(mask: BitBlocks, index: int) -> bool:
        return mask.test(index)

    @staticmethod
    def indices(mask: BitBlocks) -> Iterator[int]:
        return mask.indices()


#: The dense kernel's engine-facing mask helpers (cold paths only; hot
#: paths use the BitBlocks operators directly).
DENSE_MASK_OPS = _DenseMaskOps()
