"""The merge engine shared by Bottom-Up, Hybrid, and the precomputation.

The only mutation the greedy algorithms of Section 5 perform is the
``Merge(O, C1, C2)`` operation: replace C1 and C2 (and any other cluster
now covered) by their least common ancestor.  This module centralizes that
operation together with the machinery to *evaluate* candidate merges — i.e.
compute ``avg(O union LCA(C1, C2))`` — efficiently.

Evaluation is the hot path, and two layers of optimization live here:

* **Delta judgment** (Section 6.3, Algorithm 2): per candidate cluster
  ``c``, cache the marginal benefit ``(delta_sum, delta_cnt)`` of the
  elements in ``cov(c) \\ T_i`` (where ``T_i`` is the currently covered
  set) and refresh it from the per-round difference ``T_i \\ T_{i-1}``
  instead of recomputing from scratch.  Controlled by ``use_delta``; the
  naive recompute path is kept for the Figure 8b ablation.

* **The bitset kernel + incremental pair cache** (``kernel="bitset"``, the
  default): covered sets are int bitmasks (:mod:`repro.core.bitset`), so
  marginal counts are one ``bit_count()`` and marginal sums iterate only
  set bits; and the engine maintains a persistent *pair table* — for every
  unordered pair of solution clusters, its distance and its LCA cluster —
  updated in O(|O|) per merge instead of being re-derived for all
  O(|O|^2) pairs in every greedy round.  ``kernel="python"`` preserves the
  original pure-Python set implementation as the ablation baseline.  The
  two kernels run the same greedy logic with the same tie-break keys and
  produce identical solutions whenever value sums are exact (integer or
  dyadic-rational values — property-tested); on arbitrary floats they
  accumulate sums in different orders, so a mathematically exact tie can,
  in principle, break differently at the last ulp.

Note: Algorithm 2 in the paper transposes the assignments of ``delta_sum``
and ``delta_cnt`` (lines 6-7 and 10-11); we implement the evidently
intended semantics (sum of values vs. element count).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.answers import AnswerSet
from repro.core.bitset import (
    BITSET_KERNEL,
    iter_bits,
    resolve_kernel,
)
from repro.core.cluster import (
    Cluster,
    Pattern,
    distance,
    lca,
    lca_and_distance,
    strictly_covers,
)
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution


class _DeltaState:
    """Per-candidate cached marginal benefit, stamped with the merge round."""

    __slots__ = ("stamp", "delta_sum", "delta_cnt")

    def __init__(self, stamp: int, delta_sum: float, delta_cnt: int) -> None:
        self.stamp = stamp
        self.delta_sum = delta_sum
        self.delta_cnt = delta_cnt


#: One row of the persistent pair table: ``(first, second, distance,
#: lca_cluster)`` with ``first.pattern < second.pattern`` — mirroring the
#: order in which the naive path enumerates pairs, so tie-breaking keys are
#: identical across kernels.  Rows are plain tuples (cheapest to build and
#: index) and immutable once built: distance and LCA depend only on the two
#: patterns, never on the covered state, which is what makes the table safe
#: to keep across rounds and to share (shallow-copied) with clones.
_PairRow = tuple[Cluster, Cluster, int, Cluster]

#: Pairs grouped by their LCA pattern: ``(distance, lca_cluster, rows)``
#: where ``rows`` maps pair keys to their table rows.  Every pair in a
#: group shares one distance (``distance(p1, p2) == level(lca(p1, p2))``:
#: the LCA stars exactly the disagreeing positions) and one post-merge
#: objective, so the per-round argmax scans *groups*, evaluating each LCA
#: once, instead of scanning all O(|O|^2) pairs.
_LcaGroup = tuple[int, Cluster, dict[tuple[Pattern, Pattern], _PairRow]]


class MergeEngine:
    """Mutable greedy-merging state over a set of clusters.

    Maintains the current solution O, its covered-element union ``T`` with
    cached sum/count, the delta-judgment cache, and (bitset kernel) the
    incremental pair table.  All candidate-selection ties are broken
    lexicographically on cluster patterns so runs are deterministic.
    """

    def __init__(
        self,
        pool: ClusterPool,
        clusters: Iterable[Cluster],
        use_delta: bool = True,
        kernel: str | None = None,
    ) -> None:
        self.pool = pool
        self.answers: AnswerSet = pool.answers
        self.use_delta = use_delta
        self.kernel = resolve_kernel(kernel)
        self._bitset = self.kernel == BITSET_KERNEL
        self._solution: dict[Pattern, Cluster] = {}
        self.rounds: int = 0
        self._delta_cache: dict[Pattern, _DeltaState] = {}
        self._covered_sum: float = 0.0
        if self._bitset:
            self._pairs: dict[tuple[Pattern, Pattern], _PairRow] | None = {}
            self._by_lca: dict[Pattern, _LcaGroup] | None = {}
            self._covered: set[int] | None = None
            self._covered_mask = 0
            self._last_diff: list[int] = []
            self._last_diff_mask = 0
            for cluster in clusters:
                if cluster.pattern in self._solution:
                    continue
                self._register_pairs(cluster)
                self._solution[cluster.pattern] = cluster
                fresh = cluster.mask & ~self._covered_mask
                if fresh:
                    self._covered_mask |= fresh
                    self._covered_sum += self.answers.mask_value_sum(fresh)
        else:
            self._pairs = None
            self._by_lca = None
            self._covered = set()
            self._covered_mask = 0
            self._last_diff = []
            self._last_diff_mask = 0
            values = self.answers.values
            for cluster in clusters:
                if cluster.pattern in self._solution:
                    continue
                self._solution[cluster.pattern] = cluster
                for index in cluster.covered:
                    if index not in self._covered:
                        self._covered.add(index)
                        self._covered_sum += values[index]

    # -- read access ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._solution)

    @property
    def covered_count(self) -> int:
        if self._bitset:
            return self._covered_mask.bit_count()
        return len(self._covered)

    def is_covered(self, index: int) -> bool:
        """True if element *index* is covered by the current solution."""
        if self._bitset:
            return bool((self._covered_mask >> index) & 1)
        return index in self._covered

    def is_fully_covered(self, cluster: Cluster) -> bool:
        """True if every element of cov(*cluster*) is already covered."""
        if self._bitset:
            return not (cluster.mask & ~self._covered_mask)
        return all(index in self._covered for index in cluster.covered)

    def covered_indices(self) -> frozenset[int]:
        """The covered union T as a frozenset of element indices."""
        if self._bitset:
            return frozenset(iter_bits(self._covered_mask))
        return frozenset(self._covered)

    def clone(self) -> "MergeEngine":
        """An independent copy of the current state.

        The incremental precomputation of Section 6.2 runs the shared
        Fixed-Order phase once and then forks one engine per D value; this
        is the fork.  The delta cache is not carried over (its states are
        mutated in place and must not be shared); it rebuilds lazily.  The
        pair table *is* carried over (rows are immutable), copied shallowly.
        """
        twin = MergeEngine.__new__(MergeEngine)
        twin.pool = self.pool
        twin.answers = self.answers
        twin.use_delta = self.use_delta
        twin.kernel = self.kernel
        twin._bitset = self._bitset
        twin._solution = dict(self._solution)
        twin._covered = set(self._covered) if self._covered is not None else None
        twin._covered_sum = self._covered_sum
        twin._covered_mask = self._covered_mask
        twin.rounds = self.rounds
        twin._last_diff = list(self._last_diff)
        twin._last_diff_mask = self._last_diff_mask
        twin._delta_cache = {}
        twin._pairs = dict(self._pairs) if self._pairs is not None else None
        twin._by_lca = (
            {
                pattern: (group[0], group[1], dict(group[2]))
                for pattern, group in self._by_lca.items()
            }
            if self._by_lca is not None
            else None
        )
        return twin

    def clusters(self) -> list[Cluster]:
        """Current clusters in deterministic (pattern-sorted) order."""
        return [self._solution[p] for p in sorted(self._solution)]

    def avg(self) -> float:
        """Current objective avg(O)."""
        count = self.covered_count
        if not count:
            raise ValueError("engine holds no covered elements")
        return self._covered_sum / count

    def snapshot(self) -> Solution:
        """Freeze the current state into a :class:`Solution`."""
        ordered = sorted(
            self._solution.values(), key=lambda c: (-c.avg, c.pattern)
        )
        return Solution(
            tuple(ordered), self.covered_indices(), self._covered_sum
        )

    # -- candidate evaluation --------------------------------------------------

    def _marginal(self, candidate: Cluster) -> tuple[float, int]:
        """(sum, count) of cov(candidate) \\ T, via delta judgment or naively."""
        if self._bitset:
            return self._marginal_bitset(candidate)
        values = self.answers.values
        if not self.use_delta:
            delta_sum = 0.0
            delta_cnt = 0
            for index in candidate.covered:
                if index not in self._covered:
                    delta_sum += values[index]
                    delta_cnt += 1
            return delta_sum, delta_cnt
        state = self._delta_cache.get(candidate.pattern)
        if state is not None and state.stamp == self.rounds:
            return state.delta_sum, state.delta_cnt
        if state is not None and state.stamp == self.rounds - 1:
            # Refresh from the last difference list T_j \ T_{j-1}: any of
            # those newly covered elements that the candidate also covers no
            # longer counts as marginal.
            covered_by_candidate = candidate.covered
            for index in self._last_diff:
                if index in covered_by_candidate:
                    state.delta_sum -= values[index]
                    state.delta_cnt -= 1
            state.stamp = self.rounds
            return state.delta_sum, state.delta_cnt
        # Stale or unseen: full recomputation of cov(candidate) \ T.
        delta_sum = 0.0
        delta_cnt = 0
        for index in candidate.covered:
            if index not in self._covered:
                delta_sum += values[index]
                delta_cnt += 1
        self._delta_cache[candidate.pattern] = _DeltaState(
            self.rounds, delta_sum, delta_cnt
        )
        return delta_sum, delta_cnt

    def _marginal_bitset(self, candidate: Cluster) -> tuple[float, int]:
        """Bitset-kernel marginal: one AND-NOT plus popcount, value sums
        over set bits only; delta refreshes touch just the last diff mask."""
        answers = self.answers
        if not self.use_delta:
            diff = candidate.mask & ~self._covered_mask
            return answers.mask_value_sum(diff), diff.bit_count()
        rounds = self.rounds
        state = self._delta_cache.get(candidate.pattern)
        if state is not None:
            if state.stamp == rounds:
                return state.delta_sum, state.delta_cnt
            if state.stamp == rounds - 1:
                newly = self._last_diff_mask & candidate.mask
                if newly:
                    state.delta_sum -= answers.mask_value_sum(newly)
                    state.delta_cnt -= newly.bit_count()
                state.stamp = rounds
                return state.delta_sum, state.delta_cnt
        diff = candidate.mask & ~self._covered_mask
        delta_cnt = diff.bit_count()
        # Sum over whichever of cov(c) \ T and cov(c) & T has fewer bits;
        # the candidate's total value_sum makes the complement route O(1)
        # extra work.
        inter_cnt = candidate.mask.bit_count() - delta_cnt
        if inter_cnt < delta_cnt:
            delta_sum = candidate.value_sum - answers.mask_value_sum(
                candidate.mask & self._covered_mask
            )
        else:
            delta_sum = answers.mask_value_sum(diff)
        self._delta_cache[candidate.pattern] = _DeltaState(
            rounds, delta_sum, delta_cnt
        )
        return delta_sum, delta_cnt

    def evaluate_candidate(self, candidate: Cluster) -> float:
        """avg(O union candidate): the objective if *candidate* joined O."""
        delta_sum, delta_cnt = self._marginal(candidate)
        return (self._covered_sum + delta_sum) / (
            self.covered_count + delta_cnt
        )

    def evaluate_pair(self, c1: Cluster, c2: Cluster) -> tuple[float, Cluster]:
        """Objective after merging (c1, c2), and the LCA cluster itself."""
        merged = self._merged_cluster(c1, c2)
        return self.evaluate_candidate(merged), merged

    def _merged_cluster(self, c1: Cluster, c2: Cluster) -> Cluster:
        """The LCA cluster of a pair, via the pair table when possible."""
        if self._pairs is not None:
            key = (
                (c1.pattern, c2.pattern)
                if c1.pattern < c2.pattern
                else (c2.pattern, c1.pattern)
            )
            row = self._pairs.get(key)
            if row is not None:
                return row[3]
        return self.pool.cluster(lca(c1.pattern, c2.pattern))

    # -- pair enumeration ------------------------------------------------------

    def all_pairs(self) -> list[tuple[Cluster, Cluster]]:
        """All unordered cluster pairs, deterministically ordered."""
        ordered = self.clusters()
        return [
            (ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        ]

    def violating_pairs(self, D: int) -> list[tuple[Cluster, Cluster]]:
        """Pairs at distance < D (the phase-1 candidates of Algorithm 1)."""
        if self._pairs is not None:
            return [
                (row[0], row[1])
                for key in sorted(self._pairs)
                for row in (self._pairs[key],)
                if row[2] < D
            ]
        return [
            (c1, c2)
            for c1, c2 in self.all_pairs()
            if distance(c1.pattern, c2.pattern) < D
        ]

    def iter_pairs(
        self, max_distance: int | None = None
    ) -> Iterator[tuple[Cluster, Cluster, Cluster]]:
        """Yield ``(c1, c2, lca_cluster)`` for every unordered pair.

        Custom greedy criteria (e.g. the pairwise-average variant, the
        Min-Size objective) iterate this instead of rebuilding pair lists
        and re-deriving LCAs per round; with the bitset kernel everything
        comes straight from the pair table.
        """
        if self._pairs is not None:
            for row in self._pairs.values():
                if max_distance is None or row[2] < max_distance:
                    yield row[0], row[1], row[3]
            return
        for c1, c2 in self.all_pairs():
            if (
                max_distance is None
                or distance(c1.pattern, c2.pattern) < max_distance
            ):
                yield c1, c2, self.pool.cluster(lca(c1.pattern, c2.pattern))

    # -- the greedy step ---------------------------------------------------------

    def best_pair(
        self, pairs: Sequence[tuple[Cluster, Cluster]]
    ) -> tuple[Cluster, Cluster]:
        """UpdateSolution's argmax: the pair maximizing the merged objective.

        Ties are broken by the smallest (LCA pattern, pair patterns) so the
        greedy run is reproducible.
        """
        if not pairs:
            raise ValueError("best_pair() on an empty pair list")
        best = None
        best_key = None
        for c1, c2 in pairs:
            new_avg, merged = self.evaluate_pair(c1, c2)
            key = (-new_avg, merged.pattern, c1.pattern, c2.pattern)
            if best_key is None or key < best_key:
                best_key = key
                best = (c1, c2)
        assert best is not None
        return best

    def best_violating_pair(
        self, D: int
    ) -> tuple[Cluster, Cluster] | None:
        """The best pair at distance < D, or None when no pair violates D.

        With the bitset kernel this scans the persistent pair table (no
        list materialization, no distance or LCA recomputation); the python
        kernel falls back to the naive enumeration.  Both pick by the exact
        same key as :meth:`best_pair`.
        """
        if self._pairs is not None:
            return self._scan_best(D)
        pairs = self.violating_pairs(D)
        if not pairs:
            return None
        return self.best_pair(pairs)

    def best_any_pair(self) -> tuple[Cluster, Cluster] | None:
        """The best pair over all pairs, or None when |O| < 2."""
        if self._pairs is not None:
            return self._scan_best(None)
        pairs = self.all_pairs()
        if not pairs:
            return None
        return self.best_pair(pairs)

    def _scan_best(
        self, max_distance: int | None
    ) -> tuple[Cluster, Cluster] | None:
        """Argmax over the pair table with the canonical tie-break key.

        Equivalent to :meth:`best_pair` over the same pairs — maximize the
        merged objective, break ties by the smallest (LCA pattern, first
        pattern, second pattern) — but it scans the LCA *groups*: all pairs
        in a group share their distance and their post-merge objective, so
        each group costs one (delta-cached) marginal evaluation and the
        winning pair is the lexicographically smallest key inside the
        winning group.  Per round this is O(#distinct LCAs) instead of
        O(|O|^2) evaluations.
        """
        by_lca = self._by_lca
        assert by_lca is not None
        covered_sum = self._covered_sum
        covered_cnt = self._covered_mask.bit_count()
        marginal = self._marginal_bitset
        best_group = None
        best_pattern = None
        best_avg = float("-inf")
        for pattern, group in by_lca.items():
            if max_distance is not None and group[0] >= max_distance:
                continue
            delta_sum, delta_cnt = marginal(group[1])
            new_avg = (covered_sum + delta_sum) / (covered_cnt + delta_cnt)
            if new_avg < best_avg:
                continue
            if new_avg > best_avg or pattern < best_pattern:
                best_avg = new_avg
                best_pattern = pattern
                best_group = group
        if best_group is None:
            return None
        row = best_group[2][min(best_group[2])]
        return row[0], row[1]

    # -- pair table maintenance ------------------------------------------------

    def _register_pairs(self, cluster: Cluster) -> None:
        """Add table rows pairing *cluster* with every current member."""
        pairs = self._pairs
        by_lca = self._by_lca
        assert pairs is not None and by_lca is not None
        pool_cluster = self.pool.cluster
        pattern = cluster.pattern
        for other in self._solution.values():
            if other.pattern < pattern:
                first, second = other, cluster
            else:
                first, second = cluster, other
            joined, dist = lca_and_distance(first.pattern, second.pattern)
            key = (first.pattern, second.pattern)
            group = by_lca.get(joined)
            if group is None:
                merged = pool_cluster(joined)
                row = (first, second, dist, merged)
                by_lca[joined] = (dist, merged, {key: row})
            else:
                row = (first, second, dist, group[1])
                group[2][key] = row
            pairs[key] = row

    def _replace_clusters(
        self, removed: list[Pattern], merged: Cluster
    ) -> None:
        """Drop *removed* from the solution (and pair table), insert
        *merged*: the O(|O|) per-merge structural update."""
        solution = self._solution
        for pattern in removed:
            del solution[pattern]
        pairs = self._pairs
        if pairs is not None:
            by_lca = self._by_lca
            assert by_lca is not None

            def drop(key: tuple[Pattern, Pattern]) -> None:
                row = pairs.pop(key, None)
                if row is None:
                    return
                joined = row[3].pattern
                group = by_lca[joined]
                del group[2][key]
                if not group[2]:
                    del by_lca[joined]

            for pattern in removed:
                for other in solution:
                    drop(
                        (pattern, other)
                        if pattern < other
                        else (other, pattern)
                    )
            for i, pattern in enumerate(removed):
                for other in removed[i + 1:]:
                    drop(
                        (pattern, other)
                        if pattern < other
                        else (other, pattern)
                    )
        if merged.pattern not in solution:
            if pairs is not None:
                self._register_pairs(merged)
            solution[merged.pattern] = merged

    def _absorb_coverage(self, merged: Cluster) -> None:
        """Fold cov(*merged*) into T, recording the per-round difference."""
        if self._bitset:
            fresh = merged.mask & ~self._covered_mask
            if fresh:
                self._covered_mask |= fresh
                self._covered_sum += self.answers.mask_value_sum(fresh)
            self._last_diff_mask = fresh
        else:
            values = self.answers.values
            diff = [i for i in merged.covered if i not in self._covered]
            for index in diff:
                self._covered.add(index)
                self._covered_sum += values[index]
            self._last_diff = diff

    def merge(self, c1: Cluster, c2: Cluster) -> Cluster:
        """Apply Merge(O, c1, c2): replace by the LCA, drop covered clusters.

        Returns the new cluster.  Updates the covered union, the round
        counter, the difference list/mask that delta judgment consumes, and
        (bitset kernel) the pair table.
        """
        if c1.pattern not in self._solution or c2.pattern not in self._solution:
            raise ValueError("merge() on clusters not in the current solution")
        merged = self._merged_cluster(c1, c2)
        self._absorb_coverage(merged)
        removed = [
            pattern
            for pattern in self._solution
            if strictly_covers(merged.pattern, pattern)
        ]
        for pattern in (c1.pattern, c2.pattern):
            if pattern != merged.pattern and pattern not in removed:
                removed.append(pattern)
        self._replace_clusters(removed, merged)
        self.rounds += 1
        return merged

    def add(self, cluster: Cluster) -> None:
        """Insert a cluster (used by Fixed-Order when a top element fits).

        The caller is responsible for constraint checks; this just keeps the
        covered union, the delta bookkeeping, and the pair table consistent.
        """
        if cluster.pattern in self._solution:
            return
        self._absorb_coverage(cluster)
        if self._pairs is not None:
            self._register_pairs(cluster)
        self._solution[cluster.pattern] = cluster
        self.rounds += 1

    def merge_into(self, existing: Cluster, incoming: Cluster) -> Cluster:
        """Merge an *incoming* cluster (not yet in O) with an existing one.

        Fixed-Order's variant of Merge: the incoming singleton is combined
        with a chosen member of O; the LCA replaces the member and swallows
        any newly covered clusters.
        """
        if existing.pattern not in self._solution:
            raise ValueError("merge_into() target not in the current solution")
        merged = self.pool.cluster(lca(existing.pattern, incoming.pattern))
        self._absorb_coverage(merged)
        removed = [
            pattern
            for pattern in self._solution
            if strictly_covers(merged.pattern, pattern)
        ]
        if (
            existing.pattern != merged.pattern
            and existing.pattern not in removed
        ):
            removed.append(existing.pattern)
        self._replace_clusters(removed, merged)
        self.rounds += 1
        return merged

    def min_pairwise_distance(self) -> int:
        """Minimum pairwise distance in O (m+1 when |O| < 2)."""
        if len(self._solution) < 2:
            return self.answers.m + 1
        if self._pairs is not None:
            return min(row[2] for row in self._pairs.values())
        return min(
            distance(c1.pattern, c2.pattern)
            for c1, c2 in self.all_pairs()
        )
