"""The merge engine shared by Bottom-Up, Hybrid, and the precomputation.

The only mutation the greedy algorithms of Section 5 perform is the
``Merge(O, C1, C2)`` operation: replace C1 and C2 (and any other cluster
now covered) by their least common ancestor.  This module centralizes that
operation together with the machinery to *evaluate* candidate merges — i.e.
compute ``avg(O union LCA(C1, C2))`` — efficiently.

Evaluation is the hot path, and the paper's **delta judgment** optimization
(Section 6.3, Algorithm 2) caches, per candidate cluster ``c``, the marginal
benefit ``(delta_sum, delta_cnt)`` of the elements in ``cov(c) \\ T_i``
(where ``T_i`` is the currently covered set), refreshing it from the
per-round difference list ``T_i \\ T_{i-1}`` instead of recomputing from
scratch.  The naive recompute path is kept for the Figure 8b ablation
(``use_delta=False``).

Note: Algorithm 2 in the paper transposes the assignments of ``delta_sum``
and ``delta_cnt`` (lines 6-7 and 10-11); we implement the evidently
intended semantics (sum of values vs. element count).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.answers import AnswerSet
from repro.core.cluster import Cluster, Pattern, distance, lca, strictly_covers
from repro.core.semilattice import ClusterPool
from repro.core.solution import Solution


class _DeltaState:
    """Per-candidate cached marginal benefit, stamped with the merge round."""

    __slots__ = ("stamp", "delta_sum", "delta_cnt")

    def __init__(self, stamp: int, delta_sum: float, delta_cnt: int) -> None:
        self.stamp = stamp
        self.delta_sum = delta_sum
        self.delta_cnt = delta_cnt


class MergeEngine:
    """Mutable greedy-merging state over a set of clusters.

    Maintains the current solution O, its covered-element union ``T`` with
    cached sum/count, and the delta-judgment cache.  All candidate-selection
    ties are broken lexicographically on cluster patterns so runs are
    deterministic.
    """

    def __init__(
        self,
        pool: ClusterPool,
        clusters: Iterable[Cluster],
        use_delta: bool = True,
    ) -> None:
        self.pool = pool
        self.answers: AnswerSet = pool.answers
        self.use_delta = use_delta
        self._solution: dict[Pattern, Cluster] = {}
        self._covered: set[int] = set()
        self._covered_sum: float = 0.0
        self.rounds: int = 0
        self._last_diff: list[int] = []
        self._delta_cache: dict[Pattern, _DeltaState] = {}
        values = self.answers.values
        for cluster in clusters:
            if cluster.pattern in self._solution:
                continue
            self._solution[cluster.pattern] = cluster
            for index in cluster.covered:
                if index not in self._covered:
                    self._covered.add(index)
                    self._covered_sum += values[index]

    # -- read access ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._solution)

    @property
    def covered_count(self) -> int:
        return len(self._covered)

    def is_covered(self, index: int) -> bool:
        """True if element *index* is covered by the current solution."""
        return index in self._covered

    def clone(self) -> "MergeEngine":
        """An independent copy of the current state.

        The incremental precomputation of Section 6.2 runs the shared
        Fixed-Order phase once and then forks one engine per D value; this
        is the fork.  The delta cache is not carried over (its states are
        mutated in place and must not be shared); it rebuilds lazily.
        """
        twin = MergeEngine.__new__(MergeEngine)
        twin.pool = self.pool
        twin.answers = self.answers
        twin.use_delta = self.use_delta
        twin._solution = dict(self._solution)
        twin._covered = set(self._covered)
        twin._covered_sum = self._covered_sum
        twin.rounds = self.rounds
        twin._last_diff = list(self._last_diff)
        twin._delta_cache = {}
        return twin

    def clusters(self) -> list[Cluster]:
        """Current clusters in deterministic (pattern-sorted) order."""
        return [self._solution[p] for p in sorted(self._solution)]

    def avg(self) -> float:
        """Current objective avg(O)."""
        if not self._covered:
            raise ValueError("engine holds no covered elements")
        return self._covered_sum / len(self._covered)

    def snapshot(self) -> Solution:
        """Freeze the current state into a :class:`Solution`."""
        ordered = sorted(
            self._solution.values(), key=lambda c: (-c.avg, c.pattern)
        )
        return Solution(
            tuple(ordered), frozenset(self._covered), self._covered_sum
        )

    # -- candidate evaluation --------------------------------------------------

    def _marginal(self, candidate: Cluster) -> tuple[float, int]:
        """(sum, count) of cov(candidate) \\ T, via delta judgment or naively."""
        values = self.answers.values
        if not self.use_delta:
            delta_sum = 0.0
            delta_cnt = 0
            for index in candidate.covered:
                if index not in self._covered:
                    delta_sum += values[index]
                    delta_cnt += 1
            return delta_sum, delta_cnt
        state = self._delta_cache.get(candidate.pattern)
        if state is not None and state.stamp == self.rounds:
            return state.delta_sum, state.delta_cnt
        if state is not None and state.stamp == self.rounds - 1:
            # Refresh from the last difference list T_j \ T_{j-1}: any of
            # those newly covered elements that the candidate also covers no
            # longer counts as marginal.
            covered_by_candidate = candidate.covered
            for index in self._last_diff:
                if index in covered_by_candidate:
                    state.delta_sum -= values[index]
                    state.delta_cnt -= 1
            state.stamp = self.rounds
            return state.delta_sum, state.delta_cnt
        # Stale or unseen: full recomputation of cov(candidate) \ T.
        delta_sum = 0.0
        delta_cnt = 0
        for index in candidate.covered:
            if index not in self._covered:
                delta_sum += values[index]
                delta_cnt += 1
        self._delta_cache[candidate.pattern] = _DeltaState(
            self.rounds, delta_sum, delta_cnt
        )
        return delta_sum, delta_cnt

    def evaluate_candidate(self, candidate: Cluster) -> float:
        """avg(O union candidate): the objective if *candidate* joined O."""
        delta_sum, delta_cnt = self._marginal(candidate)
        return (self._covered_sum + delta_sum) / (
            len(self._covered) + delta_cnt
        )

    def evaluate_pair(self, c1: Cluster, c2: Cluster) -> tuple[float, Cluster]:
        """Objective after merging (c1, c2), and the LCA cluster itself."""
        merged = self.pool.cluster(lca(c1.pattern, c2.pattern))
        return self.evaluate_candidate(merged), merged

    # -- pair enumeration ------------------------------------------------------

    def all_pairs(self) -> list[tuple[Cluster, Cluster]]:
        """All unordered cluster pairs, deterministically ordered."""
        ordered = self.clusters()
        return [
            (ordered[i], ordered[j])
            for i in range(len(ordered))
            for j in range(i + 1, len(ordered))
        ]

    def violating_pairs(self, D: int) -> list[tuple[Cluster, Cluster]]:
        """Pairs at distance < D (the phase-1 candidates of Algorithm 1)."""
        return [
            (c1, c2)
            for c1, c2 in self.all_pairs()
            if distance(c1.pattern, c2.pattern) < D
        ]

    # -- the greedy step ---------------------------------------------------------

    def best_pair(
        self, pairs: Sequence[tuple[Cluster, Cluster]]
    ) -> tuple[Cluster, Cluster]:
        """UpdateSolution's argmax: the pair maximizing the merged objective.

        Ties are broken by the smallest (LCA pattern, pair patterns) so the
        greedy run is reproducible.
        """
        if not pairs:
            raise ValueError("best_pair() on an empty pair list")
        best = None
        best_key = None
        for c1, c2 in pairs:
            new_avg, merged = self.evaluate_pair(c1, c2)
            key = (-new_avg, merged.pattern, c1.pattern, c2.pattern)
            if best_key is None or key < best_key:
                best_key = key
                best = (c1, c2)
        assert best is not None
        return best

    def merge(self, c1: Cluster, c2: Cluster) -> Cluster:
        """Apply Merge(O, c1, c2): replace by the LCA, drop covered clusters.

        Returns the new cluster.  Updates the covered union, the round
        counter, and the difference list that delta judgment consumes.
        """
        if c1.pattern not in self._solution or c2.pattern not in self._solution:
            raise ValueError("merge() on clusters not in the current solution")
        merged = self.pool.cluster(lca(c1.pattern, c2.pattern))
        values = self.answers.values
        diff = [i for i in merged.covered if i not in self._covered]
        for index in diff:
            self._covered.add(index)
            self._covered_sum += values[index]
        doomed = [
            pattern
            for pattern in self._solution
            if strictly_covers(merged.pattern, pattern)
        ]
        for pattern in doomed:
            del self._solution[pattern]
        self._solution.pop(c1.pattern, None)
        self._solution.pop(c2.pattern, None)
        self._solution[merged.pattern] = merged
        self.rounds += 1
        self._last_diff = diff
        return merged

    def add(self, cluster: Cluster) -> None:
        """Insert a cluster (used by Fixed-Order when a top element fits).

        The caller is responsible for constraint checks; this just keeps the
        covered union and the delta bookkeeping consistent.
        """
        if cluster.pattern in self._solution:
            return
        values = self.answers.values
        diff = [i for i in cluster.covered if i not in self._covered]
        for index in diff:
            self._covered.add(index)
            self._covered_sum += values[index]
        self._solution[cluster.pattern] = cluster
        self.rounds += 1
        self._last_diff = diff

    def merge_into(self, existing: Cluster, incoming: Cluster) -> Cluster:
        """Merge an *incoming* cluster (not yet in O) with an existing one.

        Fixed-Order's variant of Merge: the incoming singleton is combined
        with a chosen member of O; the LCA replaces the member and swallows
        any newly covered clusters.
        """
        if existing.pattern not in self._solution:
            raise ValueError("merge_into() target not in the current solution")
        merged = self.pool.cluster(lca(existing.pattern, incoming.pattern))
        values = self.answers.values
        diff = [i for i in merged.covered if i not in self._covered]
        for index in diff:
            self._covered.add(index)
            self._covered_sum += values[index]
        doomed = [
            pattern
            for pattern in self._solution
            if strictly_covers(merged.pattern, pattern)
        ]
        for pattern in doomed:
            del self._solution[pattern]
        self._solution.pop(existing.pattern, None)
        self._solution[merged.pattern] = merged
        self.rounds += 1
        self._last_diff = diff
        return merged

    def min_pairwise_distance(self) -> int:
        """Minimum pairwise distance in O (m+1 when |O| < 2)."""
        ordered = self.clusters()
        if len(ordered) < 2:
            return self.answers.m + 1
        return min(
            distance(c1.pattern, c2.pattern)
            for c1, c2 in self.all_pairs()
        )
